//! The discrete-event simulation engine.
//!
//! Deterministic: events are ordered by `(time, sequence number)`, and
//! all randomness flows from the seed given to [`Sim::new`].

use crate::fault::{FaultAction, FaultPlan, FaultStats, LinkFaults};
use crate::link::{Link, LinkId, LinkSpec, NodeId, Queued};
use crate::node::{App, ArrivalMeta, HookVerdict, Node, PacketHook};
use crate::packet::Packet;
use crate::rng::SplitMix64;
use crate::stats::SeriesStore;
use crate::time::SimTime;
use bytes::Bytes;
use planp_telemetry::{
    BrownoutController, Category, DispatchOutcome, DropReason, FlightEvent, FlightKind,
    HealthMonitor, Histogram, MetricsSnapshot, ShardedCounterSet, Telemetry, TraceEvent,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;
use std::time::Duration;

/// A pending event.
#[derive(Debug)]
struct Ev {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

#[derive(Debug)]
enum EvKind {
    Arrive {
        node: NodeId,
        pkt: Packet,
        via: Option<LinkId>,
        overheard: bool,
    },
    TxDone {
        link: LinkId,
    },
    Timer {
        node: NodeId,
        app: usize,
        key: u64,
    },
    HookTimer {
        node: NodeId,
        key: u64,
    },
    CpuDone {
        node: NodeId,
        epoch: u64,
    },
    Fault {
        action: FaultAction,
    },
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulator: nodes, links, the event queue, and measurement series.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Ev>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    addr_map: HashMap<u32, NodeId>,
    /// Named measurement series recorded during the run.
    pub series: SeriesStore,
    started: bool,
    seed: u64,
    /// Total packets dropped at link queues (convenience aggregate).
    pub total_link_drops: u64,
    /// Total packets dropped at nodes (convenience aggregate covering
    /// `dropped` + `cpu_drops` + `shed` across every node).
    pub total_node_drops: u64,
    /// Structured event log and metrics registry. Trace categories are
    /// off by default; enable with `telemetry.trace.configure(..)`.
    pub telemetry: Telemetry,
    /// Last assigned packet id (ids start at 1; 0 = unassigned).
    next_pkt_id: u64,
    /// Events popped from the queue so far.
    events_processed: u64,
    /// Per-link queue-depth samples (indexed like `links`), taken at
    /// every enqueue. Kept out of the registry so the hot path never
    /// formats a metric name.
    link_qdepth: Vec<Histogram>,
    /// Dedicated randomness stream for fault injection, so configuring
    /// faults never perturbs node or workload randomness.
    fault_rng: SplitMix64,
    /// Active partition: group id per node (`None` = unrestricted).
    /// Empty when no partition is in force.
    partition: Vec<Option<u32>>,
    /// True once any fault has been configured; clean runs skip the
    /// per-copy fault pipeline (and its rng) entirely.
    faults_enabled: bool,
    /// Aggregate fault-injection counters.
    pub fault_stats: FaultStats,
    /// Hop latency (link enqueue → transmit complete) in nanoseconds,
    /// across every link. Kept out of the registry so the hot path
    /// never formats a metric name; exported as `sim.hop_latency_ns`.
    hop_latency: Histogram,
    /// Live SLO monitor, evaluated at its sim-time boundaries inside
    /// `run_until` / `run_to_idle`. `None` (the default) costs one
    /// branch per event.
    pub monitor: Option<HealthMonitor>,
    /// Deterministic brownout controller, fed one observation per
    /// monitor evaluation window; level transitions are emitted as
    /// `TraceEvent::Brownout` and mirrored into `telemetry.overload`.
    pub brownout: Option<BrownoutController>,
    /// Set once the first SLO breach has frozen the monitor's
    /// `dump_on_breach` flight windows — only the first breach dumps,
    /// keeping post-mortem reports bounded under sustained outages.
    breach_dumped: bool,
    /// Above this many nodes `metrics_snapshot` folds per-node and
    /// per-link counters into aggregate `nodes.*` / `links.*` totals
    /// instead of one key per node, keeping snapshots O(1) at 100k+
    /// nodes.
    compact_metrics_threshold: usize,
}

impl Sim {
    /// A fresh simulator with the given randomness seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            addr_map: HashMap::new(),
            series: SeriesStore::default(),
            started: false,
            seed,
            total_link_drops: 0,
            total_node_drops: 0,
            telemetry: Telemetry::default(),
            next_pkt_id: 0,
            events_processed: 0,
            link_qdepth: Vec::new(),
            fault_rng: SplitMix64::new(seed ^ 0xFA01_7000_0000_0000),
            partition: Vec::new(),
            faults_enabled: false,
            fault_stats: FaultStats::default(),
            hop_latency: Histogram::new(),
            monitor: None,
            brownout: None,
            breach_dumped: false,
            compact_metrics_threshold: 512,
        }
    }

    /// Sets the node count above which [`Sim::metrics_snapshot`]
    /// switches to the compact aggregate layout (default 512).
    pub fn set_compact_metrics_threshold(&mut self, n: usize) {
        self.compact_metrics_threshold = n;
    }

    /// The engine-wide hop-latency histogram (link enqueue → transmit
    /// complete, nanoseconds).
    pub fn hop_latency(&self) -> &Histogram {
        &self.hop_latency
    }

    /// Assigns the packet a fresh id on its first entry into a send
    /// path; clones made later (forwarding, multicast fan-out) keep it.
    /// The first stamp is also the span open: a packet with no lineage
    /// roots a fresh trace here, one re-emitted by an ASP carries the
    /// lineage the PLAN-P layer filled in.
    fn stamp(&mut self, node: NodeId, pkt: &mut Packet) {
        if pkt.id != 0 {
            return;
        }
        self.next_pkt_id += 1;
        pkt.id = self.next_pkt_id;
        if pkt.lineage.trace == 0 {
            // Root of a fresh trace: the head-sampling decision is made
            // exactly once, here, and inherited by every descendant
            // packet — a kept trace keeps its complete span tree.
            pkt.lineage.trace = pkt.id;
            pkt.lineage.sampled = self.telemetry.trace.keep_trace(pkt.lineage.trace);
        }
        if self
            .telemetry
            .trace
            .wants_pkt(Category::SPAN, pkt.lineage.sampled)
        {
            self.telemetry.trace.push(TraceEvent::SpanStart {
                t_ns: self.now.as_nanos(),
                node: node.0 as u32,
                pkt: pkt.id,
                trace: pkt.lineage.trace,
                parent: pkt.lineage.parent,
                origin: pkt.lineage.origin,
                chan: pkt.lineage.chan.clone(),
            });
        }
    }

    #[inline]
    fn trace_node_drop(&mut self, node: NodeId, pkt: u64, sampled: bool, reason: DropReason) {
        // The flight recorder is always on: a drop lands in the node's
        // post-mortem ring even when tracing is off or sampled out.
        self.telemetry.flight.record(
            node.0 as u32,
            FlightEvent {
                t_ns: self.now.as_nanos(),
                kind: FlightKind::Drop,
                pkt,
                detail: reason.index(),
            },
        );
        if self.telemetry.trace.wants_pkt(Category::DROP, sampled) {
            self.telemetry.trace.push(TraceEvent::NodeDrop {
                t_ns: self.now.as_nanos(),
                node: node.0 as u32,
                pkt,
                reason,
            });
        }
    }

    /// Counts and traces one node-level drop: routes the count to the
    /// reason's bucket (`cpu_drops` for CPU-queue overflow, `shed` for
    /// deliberate shedding and deadline expiry, `dropped` otherwise),
    /// bumps the `sim.node_drops_total` aggregate, and records the
    /// flight/trace events. Every node-level drop site goes through
    /// here so the drop-accounting identity holds by construction.
    pub(crate) fn drop_at_node(&mut self, node: NodeId, pkt: u64, sampled: bool, reason: DropReason) {
        let n = &mut self.nodes[node.0];
        match reason {
            DropReason::CpuOverflow => n.cpu_drops += 1,
            DropReason::Shed | DropReason::DeadlineExpired => n.shed += 1,
            _ => n.dropped += 1,
        }
        self.total_node_drops += 1;
        self.trace_node_drop(node, pkt, sampled, reason);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    // ---- topology construction -----------------------------------------

    /// Adds a host (non-forwarding node).
    pub fn add_host(&mut self, name: &str, addr: u32) -> NodeId {
        self.add_node_inner(name, addr, false)
    }

    /// Adds a router (forwarding node).
    pub fn add_router(&mut self, name: &str, addr: u32) -> NodeId {
        self.add_node_inner(name, addr, true)
    }

    fn add_node_inner(&mut self, name: &str, addr: u32, forwarding: bool) -> NodeId {
        assert!(
            !self.addr_map.contains_key(&addr),
            "duplicate node address {}",
            crate::packet::addr_to_string(addr)
        );
        let id = NodeId(self.nodes.len());
        let seed = self.seed ^ (0xA5A5_0000_0000_0000 | id.0 as u64);
        self.nodes
            .push(Node::new(name.to_string(), addr, forwarding, seed));
        self.telemetry.nodes.push(name.to_string());
        self.addr_map.insert(addr, id);
        id
    }

    /// Connects two or more nodes with a link; more than two nodes makes
    /// a shared broadcast segment.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two nodes are given.
    pub fn add_link(&mut self, spec: LinkSpec, nodes: &[NodeId]) -> LinkId {
        assert!(nodes.len() >= 2, "a link needs at least two endpoints");
        let id = LinkId(self.links.len());
        self.links.push(Link::new(spec, nodes.to_vec()));
        self.link_qdepth.push(Histogram::new());
        for &n in nodes {
            self.nodes[n.0].ifaces.push(id);
        }
        id
    }

    /// Computes shortest-path unicast routes between every pair of nodes
    /// (hop-count BFS over the node/link graph). Call after the topology
    /// is complete.
    pub fn compute_routes(&mut self) {
        let n = self.nodes.len();
        // Adjacency: node → (link, neighbor).
        let mut adj: Vec<Vec<(LinkId, NodeId)>> = vec![Vec::new(); n];
        for (li, link) in self.links.iter().enumerate() {
            for &a in &link.nodes {
                for &b in &link.nodes {
                    if a != b {
                        adj[a.0].push((LinkId(li), b));
                    }
                }
            }
        }
        for src in 0..n {
            // BFS from src recording the first hop toward each node.
            let mut first_hop: Vec<Option<(LinkId, NodeId)>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut q = std::collections::VecDeque::new();
            visited[src] = true;
            q.push_back(src);
            while let Some(u) = q.pop_front() {
                for &(l, v) in &adj[u] {
                    if !visited[v.0] {
                        visited[v.0] = true;
                        first_hop[v.0] = if u == src { Some((l, v)) } else { first_hop[u] };
                        q.push_back(v.0);
                    }
                }
            }
            for (dst, hop) in first_hop.iter().enumerate() {
                if dst != src {
                    if let Some(hop) = hop {
                        let dst_addr = self.nodes[dst].addr;
                        self.nodes[src].routes.insert(dst_addr, *hop);
                    }
                }
            }
        }
    }

    /// Adds an explicit route: at `node`, packets for `dst_addr` go
    /// toward the directly connected `toward` node.
    ///
    /// # Panics
    ///
    /// Panics if the nodes do not share a link.
    pub fn add_route(&mut self, node: NodeId, dst_addr: u32, toward: NodeId) {
        let link = self
            .common_link(node, toward)
            .expect("add_route: nodes are not directly connected");
        self.nodes[node.0].routes.insert(dst_addr, (link, toward));
    }

    /// Routes `alias` exactly like traffic toward `target`'s address, at
    /// every node except `target` itself. Used for virtual-server
    /// addresses that a gateway rewrites (section 3.2).
    pub fn alias_route_all(&mut self, alias: u32, target: NodeId) {
        let target_addr = self.nodes[target.0].addr;
        for i in 0..self.nodes.len() {
            if i != target.0 {
                if let Some(&hop) = self.nodes[i].routes.get(&target_addr) {
                    self.nodes[i].routes.insert(alias, hop);
                }
            }
        }
    }

    /// Subscribes a node to a multicast group.
    pub fn subscribe(&mut self, node: NodeId, group: u32) {
        self.nodes[node.0].subscriptions.insert(group);
    }

    /// Adds a multicast route: at `node`, packets for `group` are
    /// forwarded on `link`.
    pub fn add_mcast_route(&mut self, node: NodeId, group: u32, link: LinkId) {
        self.nodes[node.0]
            .mcast_routes
            .entry(group)
            .or_default()
            .push(link);
    }

    /// Installs an application on a node; returns its index. An app
    /// added after the simulation has started is started immediately.
    pub fn add_app(&mut self, node: NodeId, app: Box<dyn App>) -> usize {
        let idx = self.nodes[node.0].apps.len();
        self.nodes[node.0].apps.push(Some(app));
        if self.started {
            if let Some(mut a) = self.nodes[node.0].apps[idx].take() {
                let mut api = NodeApi {
                    sim: self,
                    node,
                    app: Some(idx),
                };
                a.on_start(&mut api);
                self.nodes[node.0].apps[idx] = Some(a);
            }
        }
        idx
    }

    /// Installs (or replaces) the node's packet hook — the PLAN-P layer
    /// or a native baseline.
    pub fn install_hook(&mut self, node: NodeId, hook: Box<dyn PacketHook>) {
        self.nodes[node.0].hook = Some(hook);
    }

    /// Gives the node a CPU model: every non-overheard arriving packet
    /// queues for `per_packet` of processing before the node handles it.
    pub fn set_cpu(&mut self, node: NodeId, cpu: crate::node::CpuModel) {
        self.nodes[node.0].cpu = Some(cpu);
    }

    /// Fails or revives a node. A failed node drops every arriving
    /// packet and its applications' timers do not fire (fault
    /// injection; crash-stop semantics).
    pub fn set_down(&mut self, node: NodeId, down: bool) {
        self.nodes[node.0].down = down;
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Immutable access to a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// All links, in id order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// The node owning `addr`, if any.
    pub fn node_by_addr(&self, addr: u32) -> Option<NodeId> {
        self.addr_map.get(&addr).copied()
    }

    // ---- event engine ----------------------------------------------------

    fn push_event(&mut self, at: SimTime, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Ev { at, seq, kind });
    }

    /// Runs until simulated time `t` (events at exactly `t` included).
    pub fn run_until(&mut self, t: SimTime) {
        self.ensure_started();
        while let Some(ev) = self.queue.peek() {
            if ev.at > t {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.at;
            self.process(ev.kind);
            self.monitor_tick();
        }
        self.now = self.now.max(t);
        self.monitor_tick();
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Drains every remaining event (use with care — load generators that
    /// re-arm forever will never drain).
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        self.ensure_started();
        let mut n = 0;
        while n < max_events {
            let Some(ev) = self.queue.pop() else { break };
            self.now = ev.at;
            self.process(ev.kind);
            self.monitor_tick();
            n += 1;
        }
        n
    }

    /// Evaluates the health monitor at every boundary `now` has
    /// reached: emits `health` trace events for judged windows and, on
    /// the first breach, freezes the flight-recorder windows of the
    /// monitor's `dump_on_breach` nodes.
    fn monitor_tick(&mut self) {
        let due = self
            .monitor
            .as_ref()
            .is_some_and(|m| m.due(self.now.as_nanos()));
        if !due {
            return;
        }
        let Some(mut mon) = self.monitor.take() else {
            return;
        };
        while mon.due(self.now.as_nanos()) {
            let snap = self.metrics_snapshot();
            let mut qdepth = Histogram::new();
            for h in &self.link_qdepth {
                qdepth.merge(h);
            }
            let samples = mon.evaluate(
                &snap,
                &[
                    ("sim.hop_latency_ns", &self.hop_latency),
                    ("sim.queue_depth", &qdepth),
                ],
            );
            let mut breach: Option<String> = None;
            for s in &samples {
                if s.skipped {
                    continue;
                }
                if self.telemetry.trace.wants(Category::HEALTH) {
                    self.telemetry.trace.push(TraceEvent::Health {
                        t_ns: s.t_ns,
                        rule: Rc::from(s.rule.as_str()),
                        ok: s.ok,
                        value: s.value,
                        threshold: s.threshold,
                    });
                }
                if !s.ok && breach.is_none() {
                    breach = Some(s.rule.clone());
                }
            }
            let t = samples.first().map_or(self.now.as_nanos(), |s| s.t_ns);
            // The brownout controller sees one observation per window:
            // the first breached rule, or a clean bill of health.
            if let Some(mut bc) = self.brownout.take() {
                if let Some((from, to, rule)) = bc.observe_window(t, breach.as_deref()) {
                    self.telemetry.overload.brownout_level = to;
                    if self.telemetry.trace.wants(Category::HEALTH) {
                        self.telemetry.trace.push(TraceEvent::Brownout {
                            t_ns: t,
                            from_level: from,
                            to_level: to,
                            rule: Rc::from(rule.as_str()),
                        });
                    }
                }
                self.brownout = Some(bc);
            }
            if let Some(cause) = breach {
                if !self.breach_dumped && !mon.dump_on_breach.is_empty() {
                    self.breach_dumped = true;
                    let state = self.telemetry.overload.summary();
                    for &n in &mon.dump_on_breach {
                        self.telemetry.flight.dump_with_state(n, t, &cause, &state);
                    }
                }
            }
        }
        self.monitor = Some(mon);
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for node in 0..self.nodes.len() {
            for app in 0..self.nodes[node].apps.len() {
                if let Some(mut a) = self.nodes[node].apps[app].take() {
                    let mut api = NodeApi {
                        sim: self,
                        node: NodeId(node),
                        app: Some(app),
                    };
                    a.on_start(&mut api);
                    self.nodes[node].apps[app] = Some(a);
                }
            }
        }
    }

    fn process(&mut self, kind: EvKind) {
        self.events_processed += 1;
        match kind {
            EvKind::Arrive {
                node,
                pkt,
                via,
                overheard,
            } => self.arrive(node, pkt, via, overheard),
            EvKind::CpuDone { node, epoch } => self.cpu_done(node, epoch),
            EvKind::TxDone { link } => self.tx_done(link),
            EvKind::Fault { action } => self.apply_fault_action(action),
            EvKind::HookTimer { node, key } => {
                if self.nodes[node.0].down {
                    return;
                }
                if let Some(mut hook) = self.nodes[node.0].hook.take() {
                    let mut api = NodeApi {
                        sim: self,
                        node,
                        app: None,
                    };
                    hook.on_timer(&mut api, key);
                    self.nodes[node.0].hook = Some(hook);
                }
            }
            EvKind::Timer { node, app, key } => {
                if self.nodes[node.0].down {
                    return;
                }
                if self.telemetry.trace.wants(Category::TIMER) {
                    self.telemetry.trace.push(TraceEvent::TimerFire {
                        t_ns: self.now.as_nanos(),
                        node: node.0 as u32,
                        app: app as u32,
                        key,
                    });
                }
                if let Some(mut a) = self.nodes[node.0].apps[app].take() {
                    let mut api = NodeApi {
                        sim: self,
                        node,
                        app: Some(app),
                    };
                    a.on_timer(&mut api, key);
                    self.nodes[node.0].apps[app] = Some(a);
                }
            }
        }
    }

    fn arrive(&mut self, node: NodeId, pkt: Packet, via: Option<LinkId>, overheard: bool) {
        if self.nodes[node.0].down {
            self.drop_at_node(node, pkt.id, pkt.lineage.sampled, DropReason::NodeDown);
            return;
        }
        // Deadline propagation: an already-expired packet is dropped at
        // ingress — before it costs CPU-queue slots or further hops.
        if !overheard
            && pkt.lineage.deadline_ns != 0
            && self.now.as_nanos() > pkt.lineage.deadline_ns
        {
            self.drop_at_node(node, pkt.id, pkt.lineage.sampled, DropReason::DeadlineExpired);
            return;
        }
        // CPU model: non-overheard packets queue for processing time.
        // Overheard traffic is filtered in the NIC and costs nothing.
        if let Some(cpu) = self.nodes[node.0].cpu {
            if !overheard {
                let n = &mut self.nodes[node.0];
                if n.cpu_queue.len() >= cpu.queue_cap {
                    let (pkt_id, sampled) = (pkt.id, pkt.lineage.sampled);
                    self.drop_at_node(node, pkt_id, sampled, DropReason::CpuOverflow);
                    return;
                }
                n.cpu_queue.push_back((pkt, via, overheard));
                if !n.cpu_busy {
                    n.cpu_busy = true;
                    let epoch = n.cpu_epoch;
                    self.push_event(self.now + cpu.per_packet, EvKind::CpuDone { node, epoch });
                }
                return;
            }
        }
        self.process_arrival(node, pkt, via, overheard);
    }

    fn cpu_done(&mut self, node: NodeId, epoch: u64) {
        // A crash bumps the epoch; completions scheduled before it must
        // not touch work queued after the restart.
        if epoch != self.nodes[node.0].cpu_epoch {
            return;
        }
        let Some((pkt, via, overheard)) = self.nodes[node.0].cpu_queue.pop_front() else {
            self.nodes[node.0].cpu_busy = false;
            return;
        };
        if self.nodes[node.0].cpu_queue.is_empty() {
            self.nodes[node.0].cpu_busy = false;
        } else {
            let cpu = self.nodes[node.0].cpu.expect("cpu_done without cpu");
            self.push_event(self.now + cpu.per_packet, EvKind::CpuDone { node, epoch });
        }
        self.process_arrival(node, pkt, via, overheard);
    }

    fn process_arrival(&mut self, node: NodeId, pkt: Packet, via: Option<LinkId>, overheard: bool) {
        // 1. The extensible layer sees everything first.
        let pkt = if let Some(mut hook) = self.nodes[node.0].hook.take() {
            let meta = ArrivalMeta { via, overheard };
            let mut api = NodeApi {
                sim: self,
                node,
                app: None,
            };
            let verdict = hook.on_packet(&mut api, pkt, &meta);
            self.nodes[node.0].hook = Some(hook);
            match verdict {
                HookVerdict::Handled => return,
                HookVerdict::Pass(p) => p,
            }
        } else {
            pkt
        };

        // 2. Overheard traffic is only for hooks.
        if overheard {
            return;
        }

        // 3. Standard IP processing.
        if pkt.ip.is_multicast() {
            let group = pkt.ip.dst;
            if self.nodes[node.0].subscriptions.contains(&group) {
                self.deliver_local(node, pkt.clone());
            }
            if self.nodes[node.0].forwarding {
                let mut fwd = pkt;
                if fwd.ip.ttl <= 1 {
                    self.drop_at_node(node, fwd.id, fwd.lineage.sampled, DropReason::TtlExpired);
                    return;
                }
                fwd.ip.ttl -= 1;
                let links = self.nodes[node.0]
                    .mcast_routes
                    .get(&group)
                    .cloned()
                    .unwrap_or_default();
                for l in links {
                    if Some(l) != via {
                        self.trace_forward(node, &fwd, l);
                        self.enqueue_on_link(l, node, None, fwd.clone());
                    }
                }
            }
            return;
        }

        if pkt.ip.dst == self.nodes[node.0].addr {
            self.deliver_local(node, pkt);
        } else if self.nodes[node.0].forwarding {
            let mut fwd = pkt;
            if fwd.ip.ttl <= 1 {
                self.drop_at_node(node, fwd.id, fwd.lineage.sampled, DropReason::TtlExpired);
                return;
            }
            fwd.ip.ttl -= 1;
            match self.nodes[node.0].routes.get(&fwd.ip.dst).copied() {
                Some((link, next_hop)) => {
                    self.trace_forward(node, &fwd, link);
                    self.enqueue_on_link(link, node, Some(next_hop), fwd)
                }
                None => {
                    self.drop_at_node(node, fwd.id, fwd.lineage.sampled, DropReason::NoRoute);
                }
            }
        } else {
            self.drop_at_node(node, pkt.id, pkt.lineage.sampled, DropReason::NotAddressed);
        }
    }

    pub(crate) fn deliver_local(&mut self, node: NodeId, mut pkt: Packet) {
        self.stamp(node, &mut pkt);
        self.nodes[node.0].delivered += 1;
        for app in 0..self.nodes[node.0].apps.len() {
            if let Some(mut a) = self.nodes[node.0].apps[app].take() {
                self.telemetry.flight.record(
                    node.0 as u32,
                    FlightEvent {
                        t_ns: self.now.as_nanos(),
                        kind: FlightKind::Deliver,
                        pkt: pkt.id,
                        detail: app as u32,
                    },
                );
                if self
                    .telemetry
                    .trace
                    .wants_pkt(Category::DELIVER, pkt.lineage.sampled)
                {
                    self.telemetry.trace.push(TraceEvent::Deliver {
                        t_ns: self.now.as_nanos(),
                        node: node.0 as u32,
                        pkt: pkt.id,
                        app: app as u32,
                    });
                }
                let mut api = NodeApi {
                    sim: self,
                    node,
                    app: Some(app),
                };
                a.on_packet(&mut api, pkt.clone());
                self.nodes[node.0].apps[app] = Some(a);
            }
        }
    }

    #[inline]
    fn trace_forward(&mut self, node: NodeId, pkt: &Packet, link: LinkId) {
        if self
            .telemetry
            .trace
            .wants_pkt(Category::HOP, pkt.lineage.sampled)
        {
            self.telemetry.trace.push(TraceEvent::Forward {
                t_ns: self.now.as_nanos(),
                node: node.0 as u32,
                pkt: pkt.id,
                link: link.0 as u32,
                ttl: pkt.ip.ttl,
            });
        }
    }

    /// Sends `pkt` from `node`, routing by destination address.
    pub(crate) fn dispatch_send(&mut self, node: NodeId, mut pkt: Packet) {
        self.stamp(node, &mut pkt);
        if pkt.ip.ttl == 0 {
            self.drop_at_node(node, pkt.id, pkt.lineage.sampled, DropReason::TtlExpired);
            return;
        }
        if pkt.ip.is_multicast() {
            let links = self.nodes[node.0]
                .mcast_routes
                .get(&pkt.ip.dst)
                .cloned()
                .unwrap_or_default();
            if links.is_empty() {
                self.drop_at_node(node, pkt.id, pkt.lineage.sampled, DropReason::NoRoute);
            }
            for l in links {
                self.enqueue_on_link(l, node, None, pkt.clone());
            }
            return;
        }
        if pkt.ip.dst == self.nodes[node.0].addr {
            // Self-send: loop back locally.
            self.push_event(
                self.now,
                EvKind::Arrive {
                    node,
                    pkt,
                    via: None,
                    overheard: false,
                },
            );
            return;
        }
        match self.nodes[node.0].routes.get(&pkt.ip.dst).copied() {
            Some((link, next_hop)) => self.enqueue_on_link(link, node, Some(next_hop), pkt),
            None => {
                self.drop_at_node(node, pkt.id, pkt.lineage.sampled, DropReason::NoRoute);
            }
        }
    }

    pub(crate) fn send_to_neighbor(&mut self, node: NodeId, neighbor_addr: u32, mut pkt: Packet) {
        self.stamp(node, &mut pkt);
        let Some(&neighbor) = self.addr_map.get(&neighbor_addr) else {
            self.drop_at_node(node, pkt.id, pkt.lineage.sampled, DropReason::NoRoute);
            return;
        };
        match self.common_link(node, neighbor) {
            Some(link) => self.enqueue_on_link(link, node, Some(neighbor), pkt),
            None => {
                self.drop_at_node(node, pkt.id, pkt.lineage.sampled, DropReason::NoRoute);
            }
        }
    }

    fn common_link(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.nodes[a.0]
            .ifaces
            .iter()
            .copied()
            .find(|l| self.links[l.0].nodes.contains(&b))
    }

    fn enqueue_on_link(
        &mut self,
        link_id: LinkId,
        from: NodeId,
        next_hop: Option<NodeId>,
        pkt: Packet,
    ) {
        let bytes = pkt.wire_size() as u32;
        let pid = pkt.id;
        let sampled = pkt.lineage.sampled;
        if self.links[link_id.0].fault_down {
            self.links[link_id.0].fault_drops += 1;
            self.total_link_drops += 1;
            self.fault_stats.link_down_drops += 1;
            self.trace_node_drop(from, pid, sampled, DropReason::LinkFaultDown);
            self.trace_fault("link_down_drop", Some(from), Some(link_id), pid);
            return;
        }
        let q = Queued {
            pkt,
            from,
            next_hop,
            enq_ns: self.now.as_nanos(),
        };
        let now = self.now;
        let link = &mut self.links[link_id.0];
        let mut link_dropped = false;
        if link.transmitting.is_none() {
            let dur = link.tx_time(q.pkt.wire_size());
            link.transmitting = Some(q);
            self.push_event(now + dur, EvKind::TxDone { link: link_id });
        } else if link.queue.len() < link.spec.queue_pkts {
            link.queue.push_back(q);
        } else {
            link.drops += 1;
            self.total_link_drops += 1;
            link_dropped = true;
        }
        let qlen = self.links[link_id.0].queue_len() as u64;
        self.link_qdepth[link_id.0].observe(qlen);
        if link_dropped {
            if self.telemetry.trace.wants_pkt(Category::DROP, sampled) {
                self.telemetry.trace.push(TraceEvent::LinkDrop {
                    t_ns: now.as_nanos(),
                    link: link_id.0 as u32,
                    from: from.0 as u32,
                    pkt: pid,
                });
            }
        } else if self.telemetry.trace.wants_pkt(Category::LINK, sampled) {
            self.telemetry.trace.push(TraceEvent::LinkEnqueue {
                t_ns: now.as_nanos(),
                link: link_id.0 as u32,
                from: from.0 as u32,
                pkt: pid,
                bytes,
                qlen: qlen as u32,
            });
        }
    }

    fn tx_done(&mut self, link_id: LinkId) {
        let now = self.now;
        let link = &mut self.links[link_id.0];
        let q = link
            .transmitting
            .take()
            .expect("TxDone without transmission");
        link.account(now, q.pkt.wire_size());
        self.hop_latency
            .observe(now.as_nanos().saturating_sub(q.enq_ns));
        let link = &mut self.links[link_id.0];
        let delay = link.spec.delay;
        let receivers: Vec<(NodeId, bool)> = match q.next_hop {
            Some(nh) => {
                if link.is_segment() {
                    link.nodes
                        .iter()
                        .copied()
                        .filter(|&n| n != q.from)
                        .map(|n| (n, n != nh))
                        .collect()
                } else {
                    vec![(nh, false)]
                }
            }
            // Broadcast (multicast on a segment): all other nodes receive
            // it for real; subscription filtering happens at arrival.
            None => link
                .nodes
                .iter()
                .copied()
                .filter(|&n| n != q.from)
                .map(|n| (n, false))
                .collect(),
        };
        // Start the next queued transmission.
        if let Some(next) = link.queue.pop_front() {
            let dur = link.tx_time(next.pkt.wire_size());
            link.transmitting = Some(next);
            self.push_event(now + dur, EvKind::TxDone { link: link_id });
        }
        if self
            .telemetry
            .trace
            .wants_pkt(Category::LINK, q.pkt.lineage.sampled)
        {
            self.telemetry.trace.push(TraceEvent::LinkTx {
                t_ns: now.as_nanos(),
                link: link_id.0 as u32,
                from: q.from.0 as u32,
                pkt: q.pkt.id,
                bytes: q.pkt.wire_size() as u32,
            });
        }
        let faults = self.links[link_id.0].faults;
        for (n, overheard) in receivers {
            let mut pkt = q.pkt.clone();
            let mut extra = Duration::ZERO;
            let mut dup = false;
            // Receiver-side fault pipeline, fixed order: partition →
            // loss → corruption → duplication → jitter. Skipped entirely
            // (no rng draws) until faults are configured.
            if self.faults_enabled {
                if self.partition_blocks(q.from, n) {
                    self.fault_stats.partition_drops += 1;
                    self.fault_copy_drop(
                        link_id,
                        n,
                        pkt.id,
                        pkt.lineage.sampled,
                        DropReason::Partitioned,
                        "partition",
                    );
                    continue;
                }
                if !faults.is_clean() {
                    if faults.loss > 0.0 && self.fault_rng.next_f64() < faults.loss {
                        self.fault_stats.loss_drops += 1;
                        self.fault_copy_drop(
                            link_id,
                            n,
                            pkt.id,
                            pkt.lineage.sampled,
                            DropReason::FaultLoss,
                            "loss",
                        );
                        continue;
                    }
                    if faults.corrupt > 0.0
                        && self.fault_rng.next_f64() < faults.corrupt
                        && !pkt.payload.is_empty()
                    {
                        let mut bytes = pkt.payload.to_vec();
                        let i = self.fault_rng.next_below(bytes.len() as u64) as usize;
                        bytes[i] ^= 0xFF;
                        pkt.payload = Bytes::from(bytes);
                        self.fault_stats.corrupted += 1;
                        self.trace_fault("corrupt", Some(n), Some(link_id), pkt.id);
                    }
                    if faults.duplicate > 0.0 && self.fault_rng.next_f64() < faults.duplicate {
                        dup = true;
                        self.fault_stats.duplicated += 1;
                        self.trace_fault("duplicate", Some(n), Some(link_id), pkt.id);
                    }
                    if faults.jitter_ms > 0.0 {
                        let ms = self.fault_rng.next_exp(faults.jitter_ms);
                        extra = Duration::from_nanos((ms * 1e6) as u64);
                        self.fault_stats.jittered += 1;
                    }
                }
            }
            if dup {
                self.push_event(
                    now + delay + extra,
                    EvKind::Arrive {
                        node: n,
                        pkt: pkt.clone(),
                        via: Some(link_id),
                        overheard,
                    },
                );
            }
            self.push_event(
                now + delay + extra,
                EvKind::Arrive {
                    node: n,
                    pkt,
                    via: Some(link_id),
                    overheard,
                },
            );
        }
    }

    // ---- fault injection -------------------------------------------------

    /// Schedules every action in `plan` as ordinary simulation events.
    /// Call any time (typically before the run); actions fire at their
    /// scheduled times in plan order.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        self.faults_enabled = true;
        for ev in plan.events {
            self.push_event(ev.at, EvKind::Fault { action: ev.action });
        }
    }

    fn apply_fault_action(&mut self, action: FaultAction) {
        match action {
            FaultAction::SetLinkFaults { link, faults } => self.set_link_faults(link, faults),
            FaultAction::LinkDown { link } => self.set_link_down(link, true),
            FaultAction::LinkUp { link } => self.set_link_down(link, false),
            FaultAction::Partition { groups } => self.set_partition(&groups),
            FaultAction::HealPartition => self.clear_partition(),
            FaultAction::CrashNode { node } => self.crash_node(node),
            FaultAction::RestartNode { node } => self.restart_node(node),
        }
    }

    /// Replaces `link`'s continuous impairments (loss, corruption,
    /// duplication, jitter), effective immediately.
    pub fn set_link_faults(&mut self, link: LinkId, faults: LinkFaults) {
        self.faults_enabled = true;
        self.links[link.0].faults = faults;
    }

    /// Flaps the link down (packets offered to it are dropped at
    /// enqueue; in-flight transmissions complete) or back up.
    pub fn set_link_down(&mut self, link: LinkId, down: bool) {
        self.faults_enabled = true;
        self.links[link.0].fault_down = down;
        let kind = if down { "link_down" } else { "link_up" };
        self.trace_fault(kind, None, Some(link), 0);
    }

    /// Partitions the network: packet copies between nodes in different
    /// groups are dropped in flight. Nodes not listed in any group keep
    /// talking to everyone. Replaces any previous partition.
    pub fn set_partition(&mut self, groups: &[Vec<NodeId>]) {
        self.faults_enabled = true;
        self.partition = vec![None; self.nodes.len()];
        for (g, members) in groups.iter().enumerate() {
            for &n in members {
                self.partition[n.0] = Some(g as u32);
            }
        }
        self.trace_fault("partition", None, None, 0);
    }

    /// Heals any active partition.
    pub fn clear_partition(&mut self) {
        self.partition.clear();
        self.trace_fault("heal", None, None, 0);
    }

    fn partition_blocks(&self, a: NodeId, b: NodeId) -> bool {
        match (
            self.partition.get(a.0).copied().flatten(),
            self.partition.get(b.0).copied().flatten(),
        ) {
            (Some(x), Some(y)) => x != y,
            _ => false,
        }
    }

    /// Crashes the node: it stops receiving, pending CPU work is lost,
    /// and its packet hook — the installed protocol with all its state —
    /// is discarded. Applications survive (they model the host's
    /// software stack above the network layer) but their timers are
    /// swallowed while the node is down.
    pub fn crash_node(&mut self, node: NodeId) {
        let n = &mut self.nodes[node.0];
        n.down = true;
        n.crashes += 1;
        n.cpu_epoch += 1;
        if n.hook.take().is_some() {
            n.state_lost += 1;
        }
        let lost = n.cpu_queue.len() as u64;
        n.cpu_queue.clear();
        n.cpu_busy = false;
        n.dropped += lost;
        self.total_node_drops += lost;
        self.fault_stats.crashes += 1;
        self.trace_fault("crash", Some(node), None, 0);
        // Freeze the node's post-mortem window — stamped with the
        // overload posture so the post-mortem shows what degradation
        // stage the cluster was in when the node died.
        let state = self.telemetry.overload.summary();
        self.telemetry
            .flight
            .dump_with_state(node.0 as u32, self.now.as_nanos(), "crash", &state);
    }

    /// Restarts a crashed node and gives every application an
    /// [`App::on_restart`] callback to re-arm timers and start protocol
    /// recovery. The packet hook stays lost until something reinstalls
    /// it (e.g. in-band redeployment).
    pub fn restart_node(&mut self, node: NodeId) {
        self.nodes[node.0].down = false;
        self.fault_stats.restarts += 1;
        self.trace_fault("restart", Some(node), None, 0);
        for app in 0..self.nodes[node.0].apps.len() {
            if let Some(mut a) = self.nodes[node.0].apps[app].take() {
                let mut api = NodeApi {
                    sim: self,
                    node,
                    app: Some(app),
                };
                a.on_restart(&mut api);
                self.nodes[node.0].apps[app] = Some(a);
            }
        }
    }

    /// Accounts one fault-induced in-flight copy loss: per-link
    /// `fault_drops` (never `drops`), the engine-wide total, and both a
    /// drop and a fault trace event at the would-be receiver.
    fn fault_copy_drop(
        &mut self,
        link: LinkId,
        to: NodeId,
        pkt: u64,
        sampled: bool,
        reason: DropReason,
        kind: &'static str,
    ) {
        self.links[link.0].fault_drops += 1;
        self.total_link_drops += 1;
        self.trace_node_drop(to, pkt, sampled, reason);
        self.trace_fault(kind, Some(to), Some(link), pkt);
    }

    fn trace_fault(
        &mut self,
        kind: &'static str,
        node: Option<NodeId>,
        link: Option<LinkId>,
        pkt: u64,
    ) {
        if let Some(n) = node {
            // Always-on flight recording; drop kinds skip the extra
            // entry because trace_node_drop already recorded the drop.
            let fk = match kind {
                "crash" => Some(FlightKind::Crash),
                "restart" => Some(FlightKind::Restart),
                "partition" | "loss" | "link_down_drop" => None,
                _ => Some(FlightKind::Fault),
            };
            if let Some(fk) = fk {
                self.telemetry.flight.record(
                    n.0 as u32,
                    FlightEvent {
                        t_ns: self.now.as_nanos(),
                        kind: fk,
                        pkt,
                        detail: 0,
                    },
                );
            }
        }
        if self.telemetry.trace.wants(Category::FAULT) {
            self.telemetry.trace.push(TraceEvent::Fault {
                t_ns: self.now.as_nanos(),
                kind: Rc::from(kind),
                node: node.map(|n| n.0 as u32),
                link: link.map(|l| l.0 as u32),
                pkt,
            });
        }
    }

    // ---- telemetry -------------------------------------------------------

    /// A deterministic snapshot of every metric the simulator tracks:
    /// per-node delivery/drop counters, per-link transmit/drop counters
    /// and queue-depth histograms, engine totals, and everything
    /// applications or hooks recorded in `telemetry.metrics`.
    ///
    /// Key layout (all counters unless noted):
    ///
    /// - `node.<name>.delivered` / `.dropped` / `.cpu_drops`
    /// - `node.<name>.crashes` / `.state_lost` / `.shed` — when nonzero
    /// - `link<i>.tx_packets` / `.tx_bytes` / `.drops`
    /// - `link<i>.fault_drops` — when nonzero
    /// - `link<i>.queue_depth` — histogram of queue length at enqueue
    /// - `sim.link_drops_total`, `sim.node_drops_total`,
    ///   `sim.events_processed`, `sim.packets`
    /// - `sim.trace_recorded`, `sim.trace_evicted`
    /// - `sim.fault_*` — the [`FaultStats`] counters, once any fault has
    ///   been configured (so clean runs keep their key set)
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.telemetry.metrics.snapshot();
        if self.nodes.len() > self.compact_metrics_threshold {
            self.compact_counters(&mut snap);
        } else {
            for node in &self.nodes {
                snap.set_counter(format!("node.{}.delivered", node.name), node.delivered);
                snap.set_counter(format!("node.{}.dropped", node.name), node.dropped);
                snap.set_counter(format!("node.{}.cpu_drops", node.name), node.cpu_drops);
                if node.crashes > 0 {
                    snap.set_counter(format!("node.{}.crashes", node.name), node.crashes);
                }
                if node.state_lost > 0 {
                    snap.set_counter(format!("node.{}.state_lost", node.name), node.state_lost);
                }
                if node.shed > 0 {
                    snap.set_counter(format!("node.{}.shed", node.name), node.shed);
                }
            }
            for (i, link) in self.links.iter().enumerate() {
                snap.set_counter(format!("link{i}.tx_packets"), link.tx_packets);
                snap.set_counter(format!("link{i}.tx_bytes"), link.tx_bytes);
                snap.set_counter(format!("link{i}.drops"), link.drops);
                if link.fault_drops > 0 {
                    snap.set_counter(format!("link{i}.fault_drops"), link.fault_drops);
                }
                let h = &self.link_qdepth[i];
                if h.count() > 0 {
                    snap.set_histogram(format!("link{i}.queue_depth"), h);
                }
            }
        }
        snap.set_counter("sim.link_drops_total", self.total_link_drops);
        snap.set_counter("sim.node_drops_total", self.total_node_drops);
        snap.set_counter("sim.events_processed", self.events_processed);
        snap.set_counter("sim.packets", self.next_pkt_id);
        snap.set_counter("sim.trace_recorded", self.telemetry.trace.recorded());
        snap.set_counter("sim.trace_evicted", self.telemetry.trace.evicted());
        if self.hop_latency.count() > 0 {
            snap.set_histogram("sim.hop_latency_ns", &self.hop_latency);
        }
        let oh = self.telemetry.trace.overhead();
        if oh.sample_n > 1 || oh.sampled_out > 0 || oh.rate_limited > 0 || oh.downgrades > 0 {
            snap.set_counter("sim.trace_sampled_out", oh.sampled_out);
            snap.set_counter("sim.trace_rate_limited", oh.rate_limited);
            snap.set_counter("sim.trace_downgrades", u64::from(oh.downgrades));
            snap.set_counter("sim.trace_sample_n", u64::from(oh.sample_n));
            snap.set_counter("sim.trace_est_bytes", oh.est_bytes);
        }
        if self.faults_enabled {
            let f = &self.fault_stats;
            snap.set_counter("sim.fault_loss_drops", f.loss_drops);
            snap.set_counter("sim.fault_corrupted", f.corrupted);
            snap.set_counter("sim.fault_duplicated", f.duplicated);
            snap.set_counter("sim.fault_jittered", f.jittered);
            snap.set_counter("sim.fault_link_down_drops", f.link_down_drops);
            snap.set_counter("sim.fault_partition_drops", f.partition_drops);
            snap.set_counter("sim.fault_crashes", f.crashes);
            snap.set_counter("sim.fault_restarts", f.restarts);
        }
        snap
    }

    /// The compact snapshot layout used past the node-count threshold:
    /// per-node and per-link counters fold — via a deterministic
    /// sharded merge — into `nodes.*` / `links.*` aggregates, so a
    /// 100k-node snapshot stays a handful of keys instead of 500k.
    fn compact_counters(&self, snap: &mut MetricsSnapshot) {
        const NODE_KEYS: [&str; 6] = [
            "delivered",
            "dropped",
            "cpu_drops",
            "crashes",
            "state_lost",
            "shed",
        ];
        let mut nodes = ShardedCounterSet::new(16, NODE_KEYS.len());
        for (i, node) in self.nodes.iter().enumerate() {
            nodes.add(i, 0, node.delivered);
            nodes.add(i, 1, node.dropped);
            nodes.add(i, 2, node.cpu_drops);
            nodes.add(i, 3, node.crashes);
            nodes.add(i, 4, node.state_lost);
            nodes.add(i, 5, node.shed);
        }
        snap.set_counter("nodes.count", self.nodes.len() as u64);
        for (k, v) in NODE_KEYS.iter().zip(nodes.merged()) {
            // Rare-event totals keep the sparse convention: present
            // only when nonzero, like their per-node counterparts.
            if v > 0 || matches!(*k, "delivered" | "dropped" | "cpu_drops") {
                snap.set_counter(format!("nodes.{k}"), v);
            }
        }
        const LINK_KEYS: [&str; 4] = ["tx_packets", "tx_bytes", "drops", "fault_drops"];
        let mut links = ShardedCounterSet::new(16, LINK_KEYS.len());
        let mut qdepth = Histogram::new();
        for (i, link) in self.links.iter().enumerate() {
            links.add(i, 0, link.tx_packets);
            links.add(i, 1, link.tx_bytes);
            links.add(i, 2, link.drops);
            links.add(i, 3, link.fault_drops);
            qdepth.merge(&self.link_qdepth[i]);
        }
        snap.set_counter("links.count", self.links.len() as u64);
        for (k, v) in LINK_KEYS.iter().zip(links.merged()) {
            if v > 0 || *k != "fault_drops" {
                snap.set_counter(format!("links.{k}"), v);
            }
        }
        if qdepth.count() > 0 {
            snap.set_histogram("links.queue_depth", &qdepth);
        }
    }
}

/// The API a node's applications and hooks use to act on the world.
///
/// Created by the simulator for the duration of one callback.
pub struct NodeApi<'a> {
    pub(crate) sim: &'a mut Sim,
    pub(crate) node: NodeId,
    pub(crate) app: Option<usize>,
}

impl NodeApi<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now
    }

    /// This node's address.
    pub fn addr(&self) -> u32 {
        self.sim.nodes[self.node.0].addr
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// This node's name.
    pub fn node_name(&self) -> &str {
        &self.sim.nodes[self.node.0].name
    }

    /// The simulator's telemetry (event log and metrics registry), for
    /// hooks and applications that record their own counters or events.
    pub fn telemetry(&mut self) -> &mut Telemetry {
        &mut self.sim.telemetry
    }

    /// Emits a [`TraceEvent::Dispatch`] for this node (cheap no-op when
    /// the `dispatch` category is disabled).
    pub fn trace_dispatch(
        &mut self,
        pkt: &Packet,
        chan: Option<Rc<str>>,
        outcome: DispatchOutcome,
    ) {
        if self
            .sim
            .telemetry
            .trace
            .wants_pkt(Category::DISPATCH, pkt.lineage.sampled)
        {
            let ev = TraceEvent::Dispatch {
                t_ns: self.sim.now.as_nanos(),
                node: self.node.0 as u32,
                pkt: pkt.id,
                chan,
                outcome,
            };
            self.sim.telemetry.trace.push(ev);
        }
    }

    /// Emits a [`TraceEvent::Exception`] for this node (cheap no-op when
    /// the `exception` category is disabled).
    pub fn trace_exception(&mut self, pkt: &Packet, chan: Rc<str>, exn: Rc<str>) {
        self.sim.telemetry.flight.record(
            self.node.0 as u32,
            FlightEvent {
                t_ns: self.sim.now.as_nanos(),
                kind: FlightKind::Exception,
                pkt: pkt.id,
                detail: 0,
            },
        );
        if self
            .sim
            .telemetry
            .trace
            .wants_pkt(Category::EXCEPTION, pkt.lineage.sampled)
        {
            let ev = TraceEvent::Exception {
                t_ns: self.sim.now.as_nanos(),
                node: self.node.0 as u32,
                pkt: pkt.id,
                chan,
                exn,
            };
            self.sim.telemetry.trace.push(ev);
        }
    }

    /// Emits a [`TraceEvent::VmRun`] attributing `steps` VM steps to
    /// the channel run dispatched on `pkt` (cheap no-op when the `vm`
    /// category is disabled).
    pub fn trace_vm_run(&mut self, pkt: &Packet, chan: Rc<str>, steps: u64) {
        if self
            .sim
            .telemetry
            .trace
            .wants_pkt(Category::VM, pkt.lineage.sampled)
        {
            let ev = TraceEvent::VmRun {
                t_ns: self.sim.now.as_nanos(),
                node: self.node.0 as u32,
                pkt: pkt.id,
                chan,
                steps,
            };
            self.sim.telemetry.trace.push(ev);
        }
    }

    /// Sends a packet, routed by its destination address.
    pub fn send(&mut self, pkt: Packet) {
        self.sim.dispatch_send(self.node, pkt);
    }

    /// Sends a packet directly to a neighboring node (shared link),
    /// regardless of the packet's IP destination.
    pub fn send_to_neighbor(&mut self, neighbor_addr: u32, pkt: Packet) {
        self.sim.send_to_neighbor(self.node, neighbor_addr, pkt);
    }

    /// Delivers a packet to this node's local applications.
    pub fn deliver_local(&mut self, pkt: Packet) {
        self.sim.deliver_local(self.node, pkt);
    }

    /// Arms a timer for the calling application.
    ///
    /// # Panics
    ///
    /// Panics when called from a packet hook (hooks are packet-driven).
    pub fn set_timer(&mut self, delay: Duration, key: u64) {
        let app = self.app.expect("set_timer requires an application context");
        let at = self.sim.now + delay;
        self.sim.push_event(
            at,
            EvKind::Timer {
                node: self.node,
                app,
                key,
            },
        );
    }

    /// Arms a timer for this node's packet hook;
    /// [`PacketHook::on_timer`] fires with `key`. Unlike
    /// [`set_timer`](Self::set_timer) this works from hook context —
    /// it is how an installed protocol schedules retransmissions.
    pub fn set_hook_timer(&mut self, delay: Duration, key: u64) {
        let at = self.sim.now + delay;
        self.sim.push_event(
            at,
            EvKind::HookTimer {
                node: self.node,
                key,
            },
        );
    }

    /// Assigns the packet a telemetry identity (rooting a span) as if
    /// it had entered a send path here. For synthetic packets the
    /// PLAN-P layer fabricates, such as timer dispatches.
    pub fn stamp(&mut self, pkt: &mut Packet) {
        self.sim.stamp(self.node, pkt);
    }

    /// Deterministic per-node randomness.
    pub fn rand_u64(&mut self) -> u64 {
        self.sim.nodes[self.node.0].rng.next_u64()
    }

    /// Uniform integer in `0..bound`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.sim.nodes[self.node.0].rng.next_below(bound)
    }

    /// Subscribes this node to a multicast group.
    pub fn subscribe(&mut self, group: u32) {
        self.sim.nodes[self.node.0].subscriptions.insert(group);
    }

    /// Measured throughput (kb/s) of the outgoing link toward `dst` —
    /// everything on that medium, including competing traffic.
    pub fn measured_kbps_toward(&mut self, dst: u32) -> i64 {
        let now = self.sim.now;
        match self.route_link(dst) {
            Some(l) => self.sim.links[l.0].measured_kbps(now),
            None => 0,
        }
    }

    /// Capacity (kb/s) of the outgoing link toward `dst`.
    pub fn capacity_kbps_toward(&mut self, dst: u32) -> i64 {
        match self.route_link(dst) {
            Some(l) => self.sim.links[l.0].spec.kbps as i64,
            None => 0,
        }
    }

    /// Queue length of the outgoing link toward `dst`.
    pub fn queue_len_toward(&mut self, dst: u32) -> i64 {
        match self.route_link(dst) {
            Some(l) => self.sim.links[l.0].queue_len() as i64,
            None => 0,
        }
    }

    fn route_link(&self, dst: u32) -> Option<LinkId> {
        let node = &self.sim.nodes[self.node.0];
        if let Some(&(l, _)) = node.routes.get(&dst) {
            return Some(l);
        }
        // Multicast groups route via the multicast table.
        node.mcast_routes
            .get(&dst)
            .and_then(|ls| ls.first())
            .copied()
            // Fall back to the first interface (hosts with one NIC).
            .or_else(|| node.ifaces.first().copied())
    }

    /// Records a measurement point under `name` at the current time.
    pub fn record(&mut self, name: &str, value: f64) {
        let t = self.sim.now.as_secs_f64();
        self.sim.series.record(name, t, value);
    }

    /// Installs (or replaces) this node's packet hook — the mechanism
    /// behind in-band program deployment: a management application
    /// receives a program over the network and activates it locally.
    pub fn install_hook(&mut self, hook: Box<dyn crate::node::PacketHook>) {
        self.sim.nodes[self.node.0].hook = Some(hook);
    }

    /// Removes this node's packet hook, returning to standard IP
    /// processing.
    pub fn remove_hook(&mut self) {
        self.sim.nodes[self.node.0].hook = None;
    }

    /// Current occupancy of this node's CPU queue (0 without a CPU
    /// model) — the congestion signal admission control keys on.
    pub fn cpu_queue_len(&self) -> usize {
        self.sim.nodes[self.node.0].cpu_queue.len()
    }

    /// Capacity of this node's CPU queue (0 without a CPU model).
    pub fn cpu_queue_cap(&self) -> usize {
        self.sim.nodes[self.node.0]
            .cpu
            .map_or(0, |c| c.queue_cap)
    }

    /// Counts and traces a node-level drop decided by a hook or
    /// application (admission shedding, deadline expiry): routes the
    /// count to the reason's bucket and keeps the node-drop accounting
    /// identity intact.
    pub fn node_drop(&mut self, pkt: &Packet, reason: DropReason) {
        self.sim
            .drop_at_node(self.node, pkt.id, pkt.lineage.sampled, reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{addr, Packet};
    use bytes::Bytes;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// An app that counts deliveries and can echo.
    struct Sink {
        got: Rc<RefCell<Vec<Packet>>>,
    }

    impl App for Sink {
        fn on_packet(&mut self, _api: &mut NodeApi<'_>, pkt: Packet) {
            self.got.borrow_mut().push(pkt);
        }
    }

    /// An app that sends `n` packets to `dst` at start.
    struct Source {
        dst: u32,
        n: usize,
        size: usize,
    }

    impl App for Source {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            for _ in 0..self.n {
                let pkt = Packet::udp(
                    api.addr(),
                    self.dst,
                    1000,
                    2000,
                    Bytes::from(vec![0u8; self.size]),
                );
                api.send(pkt);
            }
        }

        fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    }

    fn two_hosts_one_router() -> (Sim, NodeId, NodeId, NodeId) {
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
        sim.compute_routes();
        (sim, a, r, b)
    }

    #[test]
    fn routed_delivery_across_router() {
        let (mut sim, a, _r, b) = two_hosts_one_router();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: addr(10, 0, 1, 1),
                n: 3,
                size: 100,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 3);
        // TTL decremented once by the router.
        assert_eq!(got.borrow()[0].ip.ttl, 63);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        sim.add_link(
            LinkSpec {
                kbps: 100,
                delay: Duration::from_millis(1),
                queue_pkts: 4,
            },
            &[a, b],
        );
        sim.compute_routes();
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 50,
                size: 1000,
            }),
        );
        sim.run_until(SimTime::from_ms(10));
        assert!(sim.total_link_drops > 0);
        // 1 transmitting + 4 queued accepted; rest dropped.
        assert_eq!(sim.total_link_drops, 45);
    }

    #[test]
    fn no_route_increments_drop_counter() {
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
        // No compute_routes.
        sim.add_app(
            a,
            Box::new(Source {
                dst: 99,
                n: 1,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_ms(10));
        assert_eq!(sim.node(a).dropped, 1);
    }

    #[test]
    fn hosts_do_not_forward() {
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", 1);
        let h = sim.add_host("h", 3); // host in the middle
        let b = sim.add_host("b", 2);
        sim.add_link(LinkSpec::ethernet_10(), &[a, h]);
        sim.add_link(LinkSpec::ethernet_10(), &[h, b]);
        sim.compute_routes();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 1,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(sim.node(h).dropped, 1);
    }

    #[test]
    fn ttl_expiry_drops_in_long_chains() {
        let mut sim = Sim::new(1);
        // Chain of 70 routers exceeds the default TTL of 64.
        let mut ids = vec![sim.add_host("h0", 1000)];
        for i in 1..=70 {
            ids.push(sim.add_router(&format!("r{i}"), 1000 + i));
        }
        let last = sim.add_host("end", 2000);
        ids.push(last);
        for w in ids.windows(2) {
            sim.add_link(LinkSpec::ethernet_100(), &[w[0], w[1]]);
        }
        sim.compute_routes();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(last, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            ids[0],
            Box::new(Source {
                dst: 2000,
                n: 1,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(got.borrow().len(), 0, "packet should die of TTL");
    }

    #[test]
    fn segment_broadcast_overhears() {
        // a, b, c share a segment; a → b unicast is overheard by c's hook
        // but not delivered to c's apps.
        struct Spy {
            overheard: Rc<RefCell<u32>>,
        }
        impl PacketHook for Spy {
            fn on_packet(
                &mut self,
                _api: &mut NodeApi<'_>,
                pkt: Packet,
                meta: &ArrivalMeta,
            ) -> HookVerdict {
                if meta.overheard {
                    *self.overheard.borrow_mut() += 1;
                }
                HookVerdict::Pass(pkt)
            }
        }
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        let c = sim.add_host("c", 3);
        sim.add_link(LinkSpec::ethernet_10(), &[a, b, c]);
        sim.compute_routes();
        let got = Rc::new(RefCell::new(Vec::new()));
        let heard = Rc::new(RefCell::new(0));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        let got_c = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(c, Box::new(Sink { got: got_c.clone() }));
        sim.install_hook(
            c,
            Box::new(Spy {
                overheard: heard.clone(),
            }),
        );
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 2,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 2);
        assert_eq!(got_c.borrow().len(), 0);
        assert_eq!(*heard.borrow(), 2);
    }

    #[test]
    fn multicast_on_segment_reaches_subscribers() {
        let group = addr(224, 0, 0, 5);
        let mut sim = Sim::new(1);
        let src = sim.add_host("src", 1);
        let b = sim.add_host("b", 2);
        let c = sim.add_host("c", 3);
        let d = sim.add_host("d", 4);
        let seg = sim.add_link(LinkSpec::ethernet_10(), &[src, b, c, d]);
        sim.compute_routes();
        sim.add_mcast_route(src, group, seg);
        sim.subscribe(b, group);
        sim.subscribe(c, group);
        let gb = Rc::new(RefCell::new(Vec::new()));
        let gc = Rc::new(RefCell::new(Vec::new()));
        let gd = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: gb.clone() }));
        sim.add_app(c, Box::new(Sink { got: gc.clone() }));
        sim.add_app(d, Box::new(Sink { got: gd.clone() }));
        sim.add_app(
            src,
            Box::new(Source {
                dst: group,
                n: 1,
                size: 100,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(gb.borrow().len(), 1);
        assert_eq!(gc.borrow().len(), 1);
        assert_eq!(gd.borrow().len(), 0, "non-subscriber ignores multicast");
    }

    #[test]
    fn multicast_forwarding_through_router() {
        let group = addr(224, 1, 1, 1);
        let mut sim = Sim::new(1);
        let src = sim.add_host("src", 1);
        let r = sim.add_router("r", 2);
        let dst = sim.add_host("dst", 3);
        let l1 = sim.add_link(LinkSpec::ethernet_10(), &[src, r]);
        let l2 = sim.add_link(LinkSpec::ethernet_10(), &[r, dst]);
        sim.compute_routes();
        sim.add_mcast_route(src, group, l1);
        sim.add_mcast_route(r, group, l2);
        sim.subscribe(dst, group);
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(dst, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            src,
            Box::new(Source {
                dst: group,
                n: 4,
                size: 50,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 4);
    }

    #[test]
    fn hook_can_consume_and_rewrite() {
        struct Redirect {
            to: u32,
        }
        impl PacketHook for Redirect {
            fn on_packet(
                &mut self,
                api: &mut NodeApi<'_>,
                mut pkt: Packet,
                meta: &ArrivalMeta,
            ) -> HookVerdict {
                if meta.overheard {
                    return HookVerdict::Pass(pkt);
                }
                pkt.ip.dst = self.to;
                pkt.ip.ttl -= 1;
                api.send(pkt);
                HookVerdict::Handled
            }
        }
        let (mut sim, a, r, b) = two_hosts_one_router();
        // Add a third host; the router rewrites everything toward it.
        let c = sim.add_host("c", addr(10, 0, 2, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[r, c]);
        sim.compute_routes();
        sim.install_hook(
            r,
            Box::new(Redirect {
                to: addr(10, 0, 2, 1),
            }),
        );
        let got_b = Rc::new(RefCell::new(Vec::new()));
        let got_c = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got_b.clone() }));
        sim.add_app(c, Box::new(Sink { got: got_c.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: addr(10, 0, 1, 1),
                n: 2,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got_b.borrow().len(), 0);
        assert_eq!(got_c.borrow().len(), 2);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerApp {
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl App for TimerApp {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(Duration::from_millis(20), 2);
                api.set_timer(Duration::from_millis(10), 1);
                api.set_timer(Duration::from_millis(30), 3);
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, api: &mut NodeApi<'_>, key: u64) {
                self.log.borrow_mut().push(key);
                if key == 1 {
                    api.set_timer(Duration::from_millis(5), 4);
                }
            }
        }
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(a, Box::new(TimerApp { log: log.clone() }));
        sim.run_until(SimTime::from_ms(100));
        assert_eq!(*log.borrow(), vec![1, 4, 2, 3]);
    }

    #[test]
    fn cpu_model_serializes_processing() {
        // 100 packets, 1 ms of CPU each: the last one is handled ~100 ms
        // after the first arrival, far later than wire time alone.
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        sim.add_link(LinkSpec::ethernet_100(), &[a, b]);
        sim.compute_routes();
        sim.set_cpu(
            b,
            crate::node::CpuModel {
                per_packet: Duration::from_millis(1),
                queue_cap: 1000,
            },
        );
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 100,
                size: 100,
            }),
        );
        sim.run_until(SimTime::from_ms(50));
        let at_50ms = got.borrow().len();
        assert!(at_50ms < 60, "CPU should pace deliveries, got {at_50ms}");
        sim.run_until(SimTime::from_ms(200));
        assert_eq!(got.borrow().len(), 100);
    }

    #[test]
    fn cpu_queue_overflow_drops() {
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        sim.add_link(LinkSpec::ethernet_100(), &[a, b]);
        sim.compute_routes();
        sim.set_cpu(
            b,
            crate::node::CpuModel {
                per_packet: Duration::from_millis(10),
                queue_cap: 5,
            },
        );
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 50,
                size: 50,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        assert!(sim.node(b).cpu_drops > 0);
        assert_eq!(sim.node(b).cpu_drops + sim.node(b).delivered, 50);
    }

    #[test]
    fn alias_routes_follow_their_target() {
        // Traffic to the alias address takes the same path as traffic
        // to the target node, at every node except the target.
        let (mut sim, a, _r, b) = two_hosts_one_router();
        let alias = addr(99, 9, 9, 9);
        sim.alias_route_all(alias, b);
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: alias,
                n: 2,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_ms(200));
        // The packets reach b's router; b itself has no alias route and,
        // being a host, drops traffic not addressed to it — but the
        // router forwarded it onto b's link, so b *received* it.
        assert_eq!(got.borrow().len(), 0); // not addressed to b
        assert_eq!(sim.node(b).dropped, 2); // but it arrived at b
    }

    #[test]
    fn run_to_idle_drains_everything() {
        let (mut sim, a, _r, b) = two_hosts_one_router();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: addr(10, 0, 1, 1),
                n: 5,
                size: 10,
            }),
        );
        let processed = sim.run_to_idle(100_000);
        assert!(processed > 0);
        assert_eq!(got.borrow().len(), 5);
    }

    #[test]
    fn failed_node_drops_and_revives() {
        let (mut sim, a, r, b) = two_hosts_one_router();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: addr(10, 0, 1, 1),
                n: 3,
                size: 50,
            }),
        );
        sim.set_down(r, true);
        sim.run_until(SimTime::from_ms(100));
        assert_eq!(got.borrow().len(), 0, "router down: nothing arrives");
        assert_eq!(sim.node(r).dropped, 3);
        // Revive and send again.
        sim.set_down(r, false);
        sim.add_app(
            a,
            Box::new(Source {
                dst: addr(10, 0, 1, 1),
                n: 2,
                size: 50,
            }),
        );
        sim.run_until(SimTime::from_ms(200));
        assert_eq!(got.borrow().len(), 2);
    }

    #[test]
    fn bernoulli_loss_drops_and_accounts_separately() {
        let mut sim = Sim::new(3);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        let l = sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
        sim.compute_routes();
        sim.set_link_faults(l, crate::fault::LinkFaults::loss(0.5));
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 200,
                size: 100,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        let delivered = sim.node(b).delivered;
        let lost = sim.fault_stats.loss_drops;
        let congestion = sim.link(l).drops;
        // The 200-packet burst overflows the 64-packet queue, so both
        // congestion and fault losses occur — and stay separate.
        assert_eq!(delivered + lost + congestion, 200);
        assert!(lost > 10, "lost {lost}");
        assert!(congestion > 0);
        assert_eq!(sim.link(l).fault_drops, lost);
        assert_eq!(sim.total_link_drops, congestion + lost);
    }

    #[test]
    fn duplication_delivers_copies() {
        let mut sim = Sim::new(4);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        let l = sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
        sim.compute_routes();
        sim.set_link_faults(
            l,
            crate::fault::LinkFaults {
                duplicate: 1.0,
                ..Default::default()
            },
        );
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 5,
                size: 50,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 10);
        assert_eq!(sim.fault_stats.duplicated, 5);
    }

    #[test]
    fn corruption_flips_payload_bytes() {
        let mut sim = Sim::new(5);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        let l = sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
        sim.compute_routes();
        sim.set_link_faults(
            l,
            crate::fault::LinkFaults {
                corrupt: 1.0,
                ..Default::default()
            },
        );
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 3,
                size: 64,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 3);
        assert_eq!(sim.fault_stats.corrupted, 3);
        for p in got.borrow().iter() {
            assert!(
                p.payload.iter().any(|&b| b != 0),
                "payload should have a flipped byte"
            );
        }
    }

    #[test]
    fn link_flap_drops_then_recovers() {
        let mut sim = Sim::new(6);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        let l = sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
        sim.compute_routes();
        sim.apply_fault_plan(
            crate::fault::FaultPlan::new()
                .at(0.0, crate::fault::FaultAction::LinkDown { link: l })
                .at(0.5, crate::fault::FaultAction::LinkUp { link: l }),
        );
        struct Pacer {
            dst: u32,
        }
        impl App for Pacer {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(Duration::from_millis(100), 0);
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
                let pkt = Packet::udp(api.addr(), self.dst, 1, 2, Bytes::from(vec![0u8; 100]));
                api.send(pkt);
                api.set_timer(Duration::from_millis(100), 0);
            }
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(a, Box::new(Pacer { dst: 2 }));
        sim.run_until(SimTime::from_secs(1));
        // Sends at 0.1..0.5s are dropped at the downed link; later ones pass.
        assert!(sim.fault_stats.link_down_drops >= 3);
        assert!(!got.borrow().is_empty());
        assert_eq!(
            sim.total_link_drops,
            sim.link(l).drops + sim.link(l).fault_drops
        );
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut sim = Sim::new(7);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        let c = sim.add_host("c", 3);
        sim.add_link(LinkSpec::ethernet_10(), &[a, b, c]);
        sim.compute_routes();
        sim.set_partition(&[vec![a], vec![b]]);
        let got_b = Rc::new(RefCell::new(Vec::new()));
        let got_c = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got_b.clone() }));
        sim.add_app(c, Box::new(Sink { got: got_c.clone() }));
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 2,
                size: 10,
            }),
        );
        sim.add_app(
            a,
            Box::new(Source {
                dst: 3,
                n: 2,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        // a → b crosses the partition; a → c is unrestricted (c unlisted).
        assert_eq!(got_b.borrow().len(), 0);
        assert_eq!(got_c.borrow().len(), 2);
        assert!(sim.fault_stats.partition_drops >= 2);
        sim.clear_partition();
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 1,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(got_b.borrow().len(), 1);
    }

    #[test]
    fn crash_loses_hook_state_and_restart_notifies_apps() {
        struct Tag;
        impl PacketHook for Tag {
            fn on_packet(
                &mut self,
                _api: &mut NodeApi<'_>,
                pkt: Packet,
                _meta: &ArrivalMeta,
            ) -> HookVerdict {
                HookVerdict::Pass(pkt)
            }
        }
        struct Reviver {
            restarted: Rc<RefCell<u32>>,
        }
        impl App for Reviver {
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
            fn on_restart(&mut self, api: &mut NodeApi<'_>) {
                *self.restarted.borrow_mut() += 1;
                api.install_hook(Box::new(Tag));
            }
        }
        let (mut sim, a, r, b) = two_hosts_one_router();
        sim.install_hook(r, Box::new(Tag));
        let restarted = Rc::new(RefCell::new(0));
        sim.add_app(
            r,
            Box::new(Reviver {
                restarted: restarted.clone(),
            }),
        );
        sim.apply_fault_plan(crate::fault::FaultPlan::new().crash_restart(0.1, 0.3, r));
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.run_until(SimTime::from_ms(200));
        assert!(sim.node(r).down);
        assert_eq!(sim.node(r).crashes, 1);
        assert_eq!(sim.node(r).state_lost, 1, "hook state must be lost");
        assert!(sim.node(r).hook.is_none());
        sim.run_until(SimTime::from_ms(400));
        assert!(!sim.node(r).down);
        assert_eq!(*restarted.borrow(), 1);
        assert!(sim.node(r).hook.is_some(), "on_restart reinstalled hook");
        // Traffic flows again after the restart.
        sim.add_app(
            a,
            Box::new(Source {
                dst: addr(10, 0, 1, 1),
                n: 2,
                size: 50,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 2);
        assert_eq!(sim.fault_stats.crashes, 1);
        assert_eq!(sim.fault_stats.restarts, 1);
    }

    #[test]
    fn hook_timers_fire_via_set_hook_timer() {
        struct Ticker {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl PacketHook for Ticker {
            fn on_packet(
                &mut self,
                api: &mut NodeApi<'_>,
                pkt: Packet,
                _meta: &ArrivalMeta,
            ) -> HookVerdict {
                api.set_hook_timer(Duration::from_millis(10), 7);
                HookVerdict::Pass(pkt)
            }
            fn on_timer(&mut self, api: &mut NodeApi<'_>, key: u64) {
                self.fired.borrow_mut().push(key);
                if self.fired.borrow().len() < 3 {
                    api.set_hook_timer(Duration::from_millis(10), key + 1);
                }
            }
        }
        let mut sim = Sim::new(8);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
        sim.compute_routes();
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.install_hook(
            b,
            Box::new(Ticker {
                fired: fired.clone(),
            }),
        );
        sim.add_app(
            a,
            Box::new(Source {
                dst: 2,
                n: 1,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*fired.borrow(), vec![7, 8, 9]);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = |seed: u64| -> (u64, u64, u64) {
            let mut sim = Sim::new(seed);
            let a = sim.add_host("a", 1);
            let b = sim.add_host("b", 2);
            let l = sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
            sim.compute_routes();
            sim.set_link_faults(
                l,
                crate::fault::LinkFaults {
                    loss: 0.2,
                    corrupt: 0.1,
                    duplicate: 0.1,
                    jitter_ms: 2.0,
                },
            );
            sim.add_app(
                a,
                Box::new(Source {
                    dst: 2,
                    n: 100,
                    size: 200,
                }),
            );
            sim.run_until(SimTime::from_secs(5));
            (
                sim.node(b).delivered,
                sim.fault_stats.loss_drops,
                sim.fault_stats.corrupted,
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| -> (u64, u64) {
            let mut sim = Sim::new(seed);
            let a = sim.add_host("a", 1);
            let b = sim.add_host("b", 2);
            sim.add_link(
                LinkSpec {
                    kbps: 500,
                    delay: Duration::from_millis(1),
                    queue_pkts: 5,
                },
                &[a, b],
            );
            sim.compute_routes();
            sim.add_app(
                a,
                Box::new(Source {
                    dst: 2,
                    n: 40,
                    size: 300,
                }),
            );
            sim.run_until(SimTime::from_secs(10));
            (sim.node(b).delivered, sim.total_link_drops)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn measured_kbps_visible_from_api() {
        struct Probe {
            out: Rc<RefCell<i64>>,
            dst: u32,
        }
        impl App for Probe {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(Duration::from_millis(900), 0);
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
                *self.out.borrow_mut() = api.measured_kbps_toward(self.dst);
            }
        }
        let mut sim = Sim::new(1);
        let a = sim.add_host("a", 1);
        let b = sim.add_host("b", 2);
        sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
        sim.compute_routes();
        // ~2 Mb/s of traffic.
        struct Pacer {
            dst: u32,
        }
        impl App for Pacer {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(Duration::from_millis(5), 0);
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
                let pkt = Packet::udp(api.addr(), self.dst, 1, 2, Bytes::from(vec![0u8; 1250]));
                api.send(pkt);
                api.set_timer(Duration::from_millis(5), 0);
            }
        }
        let reading = Rc::new(RefCell::new(0));
        sim.add_app(a, Box::new(Pacer { dst: 2 }));
        sim.add_app(
            a,
            Box::new(Probe {
                out: reading.clone(),
                dst: 2,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let r = *reading.borrow();
        assert!((1500..=2600).contains(&r), "measured {r} kb/s");
    }
}
