//! Packets and protocol headers.
//!
//! These header types are shared with `planp-vm` (PLAN-P header *values*
//! are these same structs), so packets cross the PLAN-P layer without any
//! conversion.

use bytes::Bytes;
use std::fmt;
use std::rc::Rc;

/// An IPv4-like header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpHdr {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl IpHdr {
    /// Protocol number for TCP.
    pub const PROTO_TCP: u8 = 6;
    /// Protocol number for UDP.
    pub const PROTO_UDP: u8 = 17;
    /// Default initial TTL.
    pub const DEFAULT_TTL: u8 = 64;

    /// A fresh header with the default TTL.
    pub fn new(src: u32, dst: u32, proto: u8) -> Self {
        IpHdr {
            src,
            dst,
            ttl: Self::DEFAULT_TTL,
            proto,
        }
    }

    /// True if the destination is an IPv4 multicast group (224.0.0.0/4).
    pub fn is_multicast(&self) -> bool {
        (self.dst >> 28) == 0xE
    }
}

/// TCP flag bits.
pub mod tcp_flags {
    /// Connection teardown.
    pub const FIN: u8 = 0x01;
    /// Connection setup.
    pub const SYN: u8 = 0x02;
    /// Reset.
    pub const RST: u8 = 0x04;
    /// Push.
    pub const PSH: u8 = 0x08;
    /// Acknowledgement valid.
    pub const ACK: u8 = 0x10;
}

/// A TCP header (the fields mini-TCP uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpHdr {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits (see [`tcp_flags`]).
    pub flags: u8,
    /// Advertised window.
    pub wnd: u16,
}

impl TcpHdr {
    /// A data segment header with the given ports and sequence number.
    pub fn data(sport: u16, dport: u16, seq: u32) -> Self {
        TcpHdr {
            sport,
            dport,
            seq,
            ack: 0,
            flags: tcp_flags::ACK,
            wnd: 0,
        }
    }

    /// Tests a flag bit.
    pub fn has(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHdr {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
}

impl UdpHdr {
    /// Constructs a header.
    pub fn new(sport: u16, dport: u16) -> Self {
        UdpHdr { sport, dport }
    }
}

/// The transport layer of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment.
    Tcp(TcpHdr),
    /// A UDP datagram.
    Udp(UdpHdr),
    /// Raw IP (no transport header).
    None,
}

impl Transport {
    /// Wire bytes this header contributes.
    pub fn header_len(&self) -> usize {
        match self {
            Transport::Tcp(_) => 20,
            Transport::Udp(_) => 8,
            Transport::None => 0,
        }
    }
}

/// The PLAN-P channel tag carried by packets sent on user-defined
/// channels (the paper: "when packets are sent on a user-defined channel,
/// the packet is tagged for identification").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelTag {
    /// Channel name.
    pub chan: Rc<str>,
    /// Overload index within the channel's name group.
    pub overload: u32,
}

/// Causal lineage a packet carries for tracing: which trace it belongs
/// to and which packet identity (span) created it. Filled in by the
/// PLAN-P layer when an ASP re-emits a packet; left at the default for
/// application ingress, where the simulator roots a fresh trace at
/// first stamp.
#[derive(Debug, Clone)]
pub struct Lineage {
    /// Trace (= root span) id; 0 until stamped.
    pub trace: u64,
    /// Parent span id; 0 for ingress roots.
    pub parent: u64,
    /// How this packet identity came to exist.
    pub origin: planp_telemetry::SpanOrigin,
    /// Channel the creating ASP sent it on, if any.
    pub chan: Option<Rc<str>>,
    /// Whether this trace was kept by the head sampler. Decided once at
    /// the root stamp and inherited by every descendant packet, so a
    /// kept trace keeps its *complete* span tree. Defaults to `true`
    /// (unstamped packets are presumed kept until the root decision).
    pub sampled: bool,
    /// Absolute simulation-time deadline in nanoseconds (0 = none).
    /// Propagated to every descendant packet an ASP emits, so expired
    /// work is dropped at ingress instead of burning further hops.
    pub deadline_ns: u64,
}

impl Default for Lineage {
    fn default() -> Self {
        Lineage {
            trace: 0,
            parent: 0,
            origin: planp_telemetry::SpanOrigin::default(),
            chan: None,
            sampled: true,
            deadline_ns: 0,
        }
    }
}

/// A simulated packet.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Network header.
    pub ip: IpHdr,
    /// Transport header.
    pub transport: Transport,
    /// Payload bytes.
    pub payload: Bytes,
    /// PLAN-P channel tag, if sent on a user-defined channel.
    pub tag: Option<ChannelTag>,
    /// Telemetry identity: assigned monotonically by the simulator the
    /// first time the packet enters a send path (`0` = not yet
    /// assigned). Clones keep the id, so hop-by-hop trace events for one
    /// packet share it. Ignored by `PartialEq`.
    pub id: u64,
    /// Causal lineage for span-tree tracing. Ignored by `PartialEq`.
    pub lineage: Lineage,
}

/// Packet equality compares wire content (headers, payload, tag) and
/// ignores the telemetry id and lineage, so a forwarded clone still
/// equals the original.
impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        self.ip == other.ip
            && self.transport == other.transport
            && self.payload == other.payload
            && self.tag == other.tag
    }
}

impl Packet {
    /// A UDP packet.
    pub fn udp(src: u32, dst: u32, sport: u16, dport: u16, payload: Bytes) -> Self {
        Packet {
            ip: IpHdr::new(src, dst, IpHdr::PROTO_UDP),
            transport: Transport::Udp(UdpHdr::new(sport, dport)),
            payload,
            tag: None,
            id: 0,
            lineage: Lineage::default(),
        }
    }

    /// A TCP packet.
    pub fn tcp(src: u32, dst: u32, hdr: TcpHdr, payload: Bytes) -> Self {
        Packet {
            ip: IpHdr::new(src, dst, IpHdr::PROTO_TCP),
            transport: Transport::Tcp(hdr),
            payload,
            tag: None,
            id: 0,
            lineage: Lineage::default(),
        }
    }

    /// Total bytes this packet occupies on the wire (Ethernet framing +
    /// IP header + transport header + payload).
    pub fn wire_size(&self) -> usize {
        14 + 20 + self.transport.header_len() + self.payload.len()
    }

    /// The TCP header, if any.
    pub fn tcp_hdr(&self) -> Option<&TcpHdr> {
        match &self.transport {
            Transport::Tcp(h) => Some(h),
            _ => None,
        }
    }

    /// The UDP header, if any.
    pub fn udp_hdr(&self) -> Option<&UdpHdr> {
        match &self.transport {
            Transport::Udp(h) => Some(h),
            _ => None,
        }
    }
}

/// Formats an address as a dotted quad.
pub fn addr_to_string(a: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (a >> 24) & 0xff,
        (a >> 16) & 0xff,
        (a >> 8) & 0xff,
        a & 0xff
    )
}

/// Builds an address from four octets.
pub const fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
    ((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proto = match &self.transport {
            Transport::Tcp(h) => format!("tcp {}:{}", h.sport, h.dport),
            Transport::Udp(h) => format!("udp {}:{}", h.sport, h.dport),
            Transport::None => "ip".to_string(),
        };
        write!(
            f,
            "[{} -> {} {} {}B]",
            addr_to_string(self.ip.src),
            addr_to_string(self.ip.dst),
            proto,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_round_trip() {
        assert_eq!(addr_to_string(addr(131, 254, 60, 81)), "131.254.60.81");
    }

    #[test]
    fn multicast_detection() {
        assert!(IpHdr::new(0, addr(224, 0, 0, 5), 17).is_multicast());
        assert!(!IpHdr::new(0, addr(10, 0, 0, 1), 17).is_multicast());
    }

    #[test]
    fn wire_size_accounts_for_headers() {
        let p = Packet::udp(1, 2, 10, 20, Bytes::from_static(&[0; 100]));
        assert_eq!(p.wire_size(), 14 + 20 + 8 + 100);
        let t = Packet::tcp(1, 2, TcpHdr::data(1, 2, 0), Bytes::new());
        assert_eq!(t.wire_size(), 14 + 20 + 20);
    }

    #[test]
    fn header_accessors() {
        let p = Packet::udp(1, 2, 10, 20, Bytes::new());
        assert!(p.udp_hdr().is_some());
        assert!(p.tcp_hdr().is_none());
    }

    #[test]
    fn display_is_compact() {
        let p = Packet::udp(addr(10, 0, 0, 1), addr(10, 0, 0, 2), 5, 6, Bytes::new());
        assert_eq!(p.to_string(), "[10.0.0.1 -> 10.0.0.2 udp 5:6 0B]");
    }

    #[test]
    fn tcp_flags_work() {
        let h = TcpHdr {
            flags: tcp_flags::SYN | tcp_flags::ACK,
            ..TcpHdr::data(1, 2, 0)
        };
        assert!(h.has(tcp_flags::SYN) && h.has(tcp_flags::ACK) && !h.has(tcp_flags::FIN));
    }
}
