//! Named topology registry for deployment plans.
//!
//! A [`TopoSpec`] is a declarative description of a simulator topology —
//! nodes with addresses, links, static routes, and the end-to-end
//! *paths* the traffic is expected to follow — plus named *slices*
//! (node groups such as `relays` or `gateway`) that deployment plans
//! target. The spec serves two masters with one definition:
//!
//! * the plan verifier walks the node/adjacency/path structure to
//!   model-check ASP compositions *before* anything installs, and
//! * [`TopoSpec::build`] instantiates the same structure in a live
//!   [`Sim`], guaranteeing that what was verified is what runs.
//!
//! The registry ([`TopoSpec::named`]) covers the topologies the bundled
//! experiments use: the two-router replay path, the chaos relay chain,
//! the HTTP cluster, and the 1024-node observability grid.

use crate::link::LinkSpec;
use crate::packet::addr;
use crate::sim::Sim;
use crate::NodeId;
use std::time::Duration;

/// One node of a named topology.
#[derive(Debug, Clone)]
pub struct TopoNode {
    /// Node name (unique within the topology).
    pub name: String,
    /// IPv4 address.
    pub addr: u32,
    /// Router (true) or host (false).
    pub router: bool,
    /// Slice names this node belongs to.
    pub slices: Vec<String>,
}

/// One link of a named topology; more than two nodes model a shared
/// segment.
#[derive(Debug, Clone)]
pub struct TopoLink {
    /// Bandwidth/delay/queue parameters.
    pub spec: LinkSpec,
    /// Indices into [`TopoSpec::nodes`].
    pub nodes: Vec<usize>,
}

/// A named topology: the substrate a deployment plan deploys over.
#[derive(Debug, Clone)]
pub struct TopoSpec {
    /// Registry name (`relay_chain`, `http_cluster`, …).
    pub name: String,
    /// Nodes, in creation order ([`TopoSpec::build`] preserves it, so
    /// index `i` here becomes `NodeId(i)` in the simulator).
    pub nodes: Vec<TopoNode>,
    /// Links, in creation order (likewise `LinkId`-stable).
    pub links: Vec<TopoLink>,
    /// Static routes installed after [`Sim::compute_routes`]:
    /// `(node, destination address, next hop)` — used for virtual
    /// service addresses.
    pub extra_routes: Vec<(usize, u32, usize)>,
    /// Expected end-to-end traffic paths as `(ingress, egress)` node
    /// indices; the plan verifier seeds its exploration and composes
    /// CPU budgets along these.
    pub paths: Vec<(usize, usize)>,
}

impl TopoSpec {
    /// Looks up a topology by registry name. `obs_grid` resolves to the
    /// standard 128 × 6 grid.
    pub fn named(name: &str) -> Option<TopoSpec> {
        match name {
            "relay_pair" => Some(TopoSpec::relay_pair()),
            "relay_chain" => Some(TopoSpec::relay_chain()),
            "http_cluster" => Some(TopoSpec::http_cluster()),
            "obs_grid" => Some(TopoSpec::obs_grid(128, 6)),
            _ => None,
        }
    }

    /// The model checker's two-router replay path:
    /// `ha (10.0.0.1) — r1 — r2 — hb (10.0.3.1)` on 10 Mb/s links.
    /// Slices: `src`, `relays`, `dst`.
    pub fn relay_pair() -> TopoSpec {
        let mut t = TopoSpec::empty("relay_pair");
        let ha = t.host("ha", addr(10, 0, 0, 1), &["src"]);
        let r1 = t.router("r1", addr(10, 0, 0, 254), &["relays"]);
        let r2 = t.router("r2", addr(10, 0, 3, 254), &["relays"]);
        let hb = t.host("hb", addr(10, 0, 3, 1), &["dst"]);
        t.link(LinkSpec::ethernet_10(), &[ha, r1]);
        t.link(LinkSpec::ethernet_10(), &[r1, r2]);
        t.link(LinkSpec::ethernet_10(), &[r2, hb]);
        t.paths = vec![(ha, hb), (hb, ha)];
        t
    }

    /// The chaos experiment's relay chain:
    /// `source — r1 — r2 — r3 — r4 — dst` on 10 Mb/s links (link ids
    /// 0..=4 in chain order, which the chaos fault plans rely on).
    /// Slices: `source`, `relays`, `dst`, plus `forwarders` (the relays
    /// and the destination — every node the chaos scenarios install
    /// relay ASPs on).
    pub fn relay_chain() -> TopoSpec {
        let mut t = TopoSpec::empty("relay_chain");
        let source = t.host("source", addr(10, 0, 0, 1), &["source"]);
        let mut prev = source;
        for i in 1..=4u8 {
            let r = t.router(
                &format!("r{i}"),
                addr(10, 0, i, 254),
                &["relays", "forwarders"],
            );
            t.link(LinkSpec::ethernet_10(), &[prev, r]);
            prev = r;
        }
        let dst = t.host("dst", addr(10, 0, 5, 1), &["dst", "forwarders"]);
        t.link(LinkSpec::ethernet_10(), &[prev, dst]);
        t.paths = vec![(source, dst)];
        t
    }

    /// The HTTP cluster: one client on a shared 10 Mb/s segment with
    /// the gateway router, which fans out to three servers over
    /// 100 Mb/s links. The client routes the virtual service address
    /// `10.9.9.9` toward the gateway. Slices: `clients`, `gateway`,
    /// `servers`.
    pub fn http_cluster() -> TopoSpec {
        let mut t = TopoSpec::empty("http_cluster");
        let client = t.host("client0", addr(10, 0, 1, 10), &["clients"]);
        let gw = t.router("gateway", addr(10, 0, 1, 254), &["gateway"]);
        let s0 = t.host("server0", addr(10, 0, 2, 1), &["servers"]);
        let s1 = t.host("server1", addr(10, 0, 3, 1), &["servers"]);
        let s2 = t.host("server2", addr(10, 0, 4, 1), &["servers"]);
        t.link(
            LinkSpec {
                kbps: 10_000,
                delay: Duration::from_micros(100),
                queue_pkts: 128,
            },
            &[client, gw],
        );
        t.link(LinkSpec::ethernet_100(), &[gw, s0]);
        t.link(LinkSpec::ethernet_100(), &[gw, s1]);
        t.link(LinkSpec::ethernet_100(), &[gw, s2]);
        t.extra_routes.push((client, addr(10, 9, 9, 9), gw));
        t.paths = vec![
            (client, s0),
            (client, s1),
            (client, s2),
            (s0, client),
            (s1, client),
            (s2, client),
        ];
        t
    }

    /// The observability grid: `chains` disjoint chains of `hops`
    /// relays each, `s{c} — c{c}r0 … — d{c}` on 100 Mb/s links (the
    /// default registry entry is the standard 128 × 6 = 1024-node
    /// grid). Slices: `sources`, `relays`, `dsts`.
    pub fn obs_grid(chains: usize, hops: usize) -> TopoSpec {
        let mut t = TopoSpec::empty("obs_grid");
        for c in 0..chains {
            let src = t.host(&format!("s{c}"), addr(10, c as u8, 0, 1), &["sources"]);
            let mut prev = src;
            for h in 0..hops {
                let r = t.router(
                    &format!("c{c}r{h}"),
                    addr(10, c as u8, h as u8 + 1, 254),
                    &["relays"],
                );
                t.link(LinkSpec::ethernet_100(), &[prev, r]);
                prev = r;
            }
            let dst = t.host(
                &format!("d{c}"),
                addr(10, c as u8, hops as u8 + 1, 1),
                &["dsts"],
            );
            t.link(LinkSpec::ethernet_100(), &[prev, dst]);
            t.paths.push((src, dst));
        }
        t
    }

    fn empty(name: &str) -> TopoSpec {
        TopoSpec {
            name: name.to_string(),
            nodes: Vec::new(),
            links: Vec::new(),
            extra_routes: Vec::new(),
            paths: Vec::new(),
        }
    }

    fn host(&mut self, name: &str, addr: u32, slices: &[&str]) -> usize {
        self.push_node(name, addr, false, slices)
    }

    fn router(&mut self, name: &str, addr: u32, slices: &[&str]) -> usize {
        self.push_node(name, addr, true, slices)
    }

    fn push_node(&mut self, name: &str, addr: u32, router: bool, slices: &[&str]) -> usize {
        self.nodes.push(TopoNode {
            name: name.to_string(),
            addr,
            router,
            slices: slices.iter().map(|s| s.to_string()).collect(),
        });
        self.nodes.len() - 1
    }

    fn link(&mut self, spec: LinkSpec, nodes: &[usize]) -> usize {
        self.links.push(TopoLink {
            spec,
            nodes: nodes.to_vec(),
        });
        self.links.len() - 1
    }

    /// Index of the node called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Node indices belonging to slice `slice`, in node order. A node's
    /// own name doubles as a singleton slice, so plans can pin a deploy
    /// to one node (`deploy bounce_a for data on r1`).
    pub fn slice(&self, slice: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name == slice || n.slices.iter().any(|s| s == slice))
            .map(|(i, _)| i)
            .collect()
    }

    /// Undirected adjacency over node indices; a multi-node segment
    /// link connects every attached pair.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for link in &self.links {
            for (i, &a) in link.nodes.iter().enumerate() {
                for &b in &link.nodes[i + 1..] {
                    if !adj[a].contains(&b) {
                        adj[a].push(b);
                    }
                    if !adj[b].contains(&a) {
                        adj[b].push(a);
                    }
                }
            }
        }
        adj
    }

    /// Instantiates the topology in `sim`: nodes in order, then links
    /// in order, then route computation plus the static extra routes.
    /// Returns the created node ids, parallel to [`TopoSpec::nodes`].
    pub fn build(&self, sim: &mut Sim) -> Vec<NodeId> {
        let ids: Vec<NodeId> = self
            .nodes
            .iter()
            .map(|n| {
                if n.router {
                    sim.add_router(&n.name, n.addr)
                } else {
                    sim.add_host(&n.name, n.addr)
                }
            })
            .collect();
        for link in &self.links {
            let ends: Vec<NodeId> = link.nodes.iter().map(|&i| ids[i]).collect();
            sim.add_link(link.spec, &ends);
        }
        sim.compute_routes();
        for &(node, dst, toward) in &self.extra_routes {
            sim.add_route(ids[node], dst, ids[toward]);
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_all_names() {
        for name in ["relay_pair", "relay_chain", "http_cluster", "obs_grid"] {
            let t = TopoSpec::named(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(t.name, name);
            assert!(!t.paths.is_empty(), "{name} has paths");
        }
        assert!(TopoSpec::named("nope").is_none());
    }

    #[test]
    fn relay_chain_matches_chaos_layout() {
        let t = TopoSpec::relay_chain();
        assert_eq!(t.nodes.len(), 6);
        assert_eq!(t.links.len(), 5);
        // Link ids follow chain order — the chaos fault plans index them.
        for (i, l) in t.links.iter().enumerate() {
            assert_eq!(l.nodes, vec![i, i + 1]);
        }
        assert_eq!(t.slice("relays"), vec![1, 2, 3, 4]);
        assert_eq!(t.slice("forwarders"), vec![1, 2, 3, 4, 5]);
        assert_eq!(t.slice("r2"), vec![2], "node names are singleton slices");
        assert_eq!(t.nodes[5].addr, addr(10, 0, 5, 1));
    }

    #[test]
    fn obs_grid_is_1024_nodes_by_default() {
        let t = TopoSpec::named("obs_grid").unwrap();
        assert_eq!(t.nodes.len(), 128 * 8);
        assert_eq!(t.slice("relays").len(), 128 * 6);
        assert_eq!(t.paths.len(), 128);
    }

    #[test]
    fn segment_link_produces_clique_adjacency() {
        let t = TopoSpec::http_cluster();
        let adj = t.adjacency();
        let gw = t.index_of("gateway").unwrap();
        assert_eq!(adj[gw].len(), 4, "gateway touches client + 3 servers");
        let c = t.index_of("client0").unwrap();
        assert_eq!(adj[c], vec![gw]);
    }

    #[test]
    fn build_instantiates_and_routes() {
        let mut sim = Sim::new(1);
        let t = TopoSpec::relay_pair();
        let ids = t.build(&mut sim);
        assert_eq!(ids.len(), 4);
        for (i, n) in t.nodes.iter().enumerate() {
            assert_eq!(sim.node(ids[i]).name, n.name);
        }
    }
}
