//! Seeded, schedule-driven fault injection.
//!
//! A [`FaultPlan`] is a list of timed fault actions — per-link Bernoulli
//! loss, payload corruption, duplication, extra-jitter reordering, link
//! down/up flaps, network partitions, and node crash/restart with
//! protocol-state loss. The plan is applied to a [`Sim`](crate::Sim)
//! before the run; actions fire as ordinary simulation events, and every
//! random draw (loss coin flips, corrupted byte positions, jitter
//! samples) comes from a dedicated SplitMix64 stream seeded from the
//! simulation seed, so a run with the same seed and plan is bit-for-bit
//! reproducible and its telemetry byte-stable.
//!
//! Receiver-side impairments are evaluated per delivered copy in a fixed
//! order (partition → loss → corruption → duplication → jitter); a link
//! that is flapped down rejects packets at enqueue time. Fault-induced
//! losses are accounted separately from congestion drops: they increment
//! each link's `fault_drops` (and the engine-wide
//! [`Sim::total_link_drops`](crate::Sim)) but never `drops`, so
//! `total_link_drops == Σ drops + Σ fault_drops` always holds.

use crate::link::{LinkId, NodeId};
use crate::time::SimTime;

/// Continuous impairments applied to every packet copy a link delivers.
///
/// All fields default to "off"; probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkFaults {
    /// Bernoulli probability that a delivered copy is silently lost.
    pub loss: f64,
    /// Probability that one payload byte of a delivered copy is flipped.
    pub corrupt: f64,
    /// Probability that a delivered copy arrives twice.
    pub duplicate: f64,
    /// Mean of an exponential extra propagation delay, in milliseconds
    /// (`0` = no jitter). Large values reorder packets across the link.
    pub jitter_ms: f64,
}

impl LinkFaults {
    /// Impairments with only Bernoulli loss set.
    pub fn loss(p: f64) -> Self {
        LinkFaults {
            loss: p,
            ..LinkFaults::default()
        }
    }

    /// True when every impairment is off.
    pub fn is_clean(&self) -> bool {
        *self == LinkFaults::default()
    }
}

/// One fault action, applied at its scheduled time.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Replaces the link's continuous impairments.
    SetLinkFaults {
        /// Target link.
        link: LinkId,
        /// New impairment parameters (use the default to clear).
        faults: LinkFaults,
    },
    /// Takes the link down: packets offered to it are dropped at enqueue.
    LinkDown {
        /// Target link.
        link: LinkId,
    },
    /// Brings a downed link back up.
    LinkUp {
        /// Target link.
        link: LinkId,
    },
    /// Partitions the network: nodes in different groups cannot exchange
    /// packets (copies between them are dropped in flight). Nodes not
    /// listed in any group communicate freely.
    Partition {
        /// The partition's groups.
        groups: Vec<Vec<NodeId>>,
    },
    /// Heals any active partition.
    HealPartition,
    /// Crashes the node: it stops receiving, pending CPU work is lost,
    /// and its packet hook — the installed PLAN-P protocol, including
    /// all protocol state — is discarded (crash with state loss).
    CrashNode {
        /// Target node.
        node: NodeId,
    },
    /// Restarts a crashed node. Applications survive (they model the
    /// host's software stack) and get [`App::on_restart`]
    /// (crate::App::on_restart) to re-arm timers and trigger recovery;
    /// the packet hook stays lost until something reinstalls it.
    RestartNode {
        /// Target node.
        node: NodeId,
    },
}

/// A fault action with its scheduled time.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A schedule of timed fault actions.
///
/// Build one with the fluent [`at`](FaultPlan::at) helper and hand it to
/// [`Sim::apply_fault_plan`](crate::Sim::apply_fault_plan) before (or
/// during) a run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The scheduled actions, in insertion order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `action` at `secs` seconds of simulated time.
    pub fn at(mut self, secs: f64, action: FaultAction) -> Self {
        self.events.push(FaultEvent {
            at: SimTime((secs * 1e9) as u64),
            action,
        });
        self
    }

    /// Convenience: sets Bernoulli loss `p` on `link` at `secs`.
    pub fn loss(self, secs: f64, link: LinkId, p: f64) -> Self {
        self.at(
            secs,
            FaultAction::SetLinkFaults {
                link,
                faults: LinkFaults::loss(p),
            },
        )
    }

    /// Convenience: crashes `node` at `crash_secs` and restarts it at
    /// `restart_secs`.
    pub fn crash_restart(self, crash_secs: f64, restart_secs: f64, node: NodeId) -> Self {
        self.at(crash_secs, FaultAction::CrashNode { node })
            .at(restart_secs, FaultAction::RestartNode { node })
    }
}

/// Aggregate fault-injection counters, kept by the simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Copies lost to Bernoulli link loss.
    pub loss_drops: u64,
    /// Copies with a corrupted payload byte.
    pub corrupted: u64,
    /// Copies duplicated in flight.
    pub duplicated: u64,
    /// Copies delayed by extra jitter.
    pub jittered: u64,
    /// Packets dropped because the link was flapped down.
    pub link_down_drops: u64,
    /// Copies dropped by an active partition.
    pub partition_drops: u64,
    /// Node crashes.
    pub crashes: u64,
    /// Node restarts.
    pub restarts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_orders_and_converts() {
        let plan = FaultPlan::new()
            .loss(1.5, LinkId(0), 0.1)
            .crash_restart(2.0, 3.0, NodeId(4));
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[0].at, SimTime::from_ms(1500));
        assert!(matches!(
            plan.events[0].action,
            FaultAction::SetLinkFaults { link: LinkId(0), faults } if faults.loss == 0.1
        ));
        assert!(matches!(
            plan.events[2].action,
            FaultAction::RestartNode { node: NodeId(4) }
        ));
    }

    #[test]
    fn clean_default() {
        assert!(LinkFaults::default().is_clean());
        assert!(!LinkFaults::loss(0.01).is_clean());
    }
}
