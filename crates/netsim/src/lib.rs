//! # netsim — a deterministic discrete-event network simulator
//!
//! The substrate standing in for the paper's testbed (SUN workstations
//! with a Solaris kernel module on 10/100 Mb/s Ethernet): hosts and
//! routers connected by links with finite bandwidth, propagation delay,
//! and bounded drop-tail queues. Multi-node links model shared Ethernet
//! **segments** — transmissions serialize through one half-duplex medium
//! and are overheard by every attached station, which is what the
//! paper's audio-adaptation and MPEG-capture experiments rely on.
//!
//! Key pieces:
//!
//! * [`sim::Sim`] — the event engine: topology building, BFS routing,
//!   multicast groups/routes, deterministic execution from a seed;
//! * [`node::App`] — local applications (servers, clients, load
//!   generators) driven by packet and timer callbacks;
//! * [`node::PacketHook`] — the extension point at the IP layer where
//!   the PLAN-P runtime (or a native baseline) is installed; hooks see
//!   *all* arriving traffic, including overheard segment traffic;
//! * [`link::Link`] — windowed throughput measurement per link, backing
//!   the PLAN-P `linkLoad` primitive;
//! * [`fault::FaultPlan`] — seeded, schedule-driven fault injection:
//!   link loss/corruption/duplication/jitter, down/up flaps, partitions,
//!   and node crash/restart with protocol-state loss;
//! * [`tcp`] — mini-TCP, enough for the HTTP cluster experiment;
//! * [`stats`] — time series used by the figure-regeneration harnesses.
//!
//! ## Example
//!
//! ```
//! use netsim::{Sim, LinkSpec, SimTime, packet::{Packet, addr}};
//! use bytes::Bytes;
//!
//! struct Hello;
//! impl netsim::App for Hello {
//!     fn on_start(&mut self, api: &mut netsim::NodeApi<'_>) {
//!         api.send(Packet::udp(api.addr(), addr(10, 0, 0, 2), 1, 2, Bytes::new()));
//!     }
//!     fn on_packet(&mut self, _api: &mut netsim::NodeApi<'_>, _pkt: Packet) {}
//! }
//!
//! let mut sim = Sim::new(42);
//! let a = sim.add_host("a", addr(10, 0, 0, 1));
//! let b = sim.add_host("b", addr(10, 0, 0, 2));
//! sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
//! sim.compute_routes();
//! sim.add_app(a, Box::new(Hello));
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.node(b).delivered, 1);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod link;
pub mod node;
pub mod packet;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod topo;

pub use fault::{FaultAction, FaultEvent, FaultPlan, FaultStats, LinkFaults};
pub use link::{Link, LinkId, LinkSpec, NodeId};
pub use node::{App, ArrivalMeta, CpuModel, HookVerdict, Node, PacketHook};
pub use packet::{ChannelTag, Packet, Transport};
pub use sim::{NodeApi, Sim};
pub use stats::{SeriesStore, TimeSeries};
pub use time::SimTime;
pub use topo::{TopoLink, TopoNode, TopoSpec};
