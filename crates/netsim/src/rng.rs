//! A tiny deterministic RNG (SplitMix64) for per-node randomness.
//!
//! Workload generators in higher layers use the `rand` crate; the
//! simulator core keeps this dependency-free generator so that event
//! processing is bit-for-bit reproducible from a seed.

/// SplitMix64 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `0..bound` (`0` when `bound == 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An exponentially distributed sample with the given mean.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(1e-12);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_and_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SplitMix64::new(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }
}
