//! Measurement helpers: time series and derived statistics for the
//! experiment harnesses.

use std::collections::BTreeMap;

/// A `(seconds, value)` time series.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Recorded points in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point.
    pub fn push(&mut self, t: f64, v: f64) {
        self.points.push((t, v));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).sum()
    }

    /// Mean of the values recorded in `[t0, t1)`. Single pass, no
    /// intermediate allocation.
    pub fn avg_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let (mut sum, mut n) = (0.0, 0u64);
        for &(t, v) in &self.points {
            if t >= t0 && t < t1 {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Sum of values recorded in `[t0, t1)`.
    pub fn sum_between(&self, t0: f64, t1: f64) -> f64 {
        self.points
            .iter()
            .filter(|&&(t, _)| t >= t0 && t < t1)
            .map(|&(_, v)| v)
            .sum()
    }

    /// The `q`-quantile (0.0–1.0) of values recorded in `[t0, t1)`.
    pub fn percentile_between(&self, t0: f64, t1: f64, q: f64) -> Option<f64> {
        let mut vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= t0 && t < t1)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(f64::total_cmp);
        let idx = ((vals.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(vals[idx])
    }

    /// Buckets the series into fixed-width intervals of `width` seconds
    /// over `[0, horizon)`, summing values per bucket. Useful for
    /// bandwidth-over-time plots (figure 6).
    pub fn bucket_sums(&self, width: f64, horizon: f64) -> Vec<(f64, f64)> {
        let n = (horizon / width).ceil() as usize;
        let mut out = vec![0.0; n];
        for &(t, v) in &self.points {
            if t < horizon && t >= 0.0 {
                out[(t / width) as usize] += v;
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(i, v)| (i as f64 * width, v))
            .collect()
    }
}

/// A named collection of series (owned by the simulator).
#[derive(Debug, Clone, Default)]
pub struct SeriesStore {
    series: BTreeMap<String, TimeSeries>,
}

impl SeriesStore {
    /// Records `(t, v)` under `name`.
    ///
    /// Windowed queries over the store's series (`avg_between`,
    /// `sum_between`, `percentile_between`) use **half-open** windows
    /// `[t0, t1)`: a point recorded exactly at `t1` belongs to the
    /// *next* window. Record at the start of each measurement interval
    /// so adjacent windows never double-count.
    pub fn record(&mut self, name: &str, t: f64, v: f64) {
        self.series.entry(name.to_string()).or_default().push(t, v);
    }

    /// Returns a series by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterates over `(name, series)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        s.push(2.0, 5.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some(5.0));
        assert_eq!(s.sum(), 9.0);
        assert_eq!(s.avg_between(0.0, 2.0), Some(2.0));
        assert_eq!(s.avg_between(10.0, 20.0), None);
        assert_eq!(s.sum_between(1.0, 3.0), 8.0);
    }

    #[test]
    fn percentiles() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(i as f64 / 100.0, i as f64);
        }
        assert_eq!(s.percentile_between(0.0, 1.0, 0.5), Some(50.0));
        assert_eq!(s.percentile_between(0.0, 1.0, 0.0), Some(0.0));
        assert_eq!(s.percentile_between(0.0, 1.0, 1.0), Some(99.0));
        assert_eq!(s.percentile_between(5.0, 6.0, 0.5), None);
    }

    #[test]
    fn bucket_sums_bins_correctly() {
        let mut s = TimeSeries::new();
        s.push(0.1, 1.0);
        s.push(0.9, 2.0);
        s.push(1.5, 4.0);
        s.push(9.9, 8.0);
        s.push(10.5, 100.0); // beyond horizon
        let b = s.bucket_sums(1.0, 10.0);
        assert_eq!(b.len(), 10);
        assert_eq!(b[0], (0.0, 3.0));
        assert_eq!(b[1], (1.0, 4.0));
        assert_eq!(b[9], (9.0, 8.0));
    }

    #[test]
    fn store_groups_by_name() {
        let mut st = SeriesStore::default();
        st.record("a", 0.0, 1.0);
        st.record("a", 1.0, 2.0);
        st.record("b", 0.0, 9.0);
        assert_eq!(st.get("a").unwrap().len(), 2);
        assert_eq!(st.get("b").unwrap().sum(), 9.0);
        assert_eq!(st.iter().count(), 2);
    }
}
