//! Links: shared half-duplex media with bandwidth, propagation delay,
//! and a bounded drop-tail queue.
//!
//! A link connects two or more nodes. Two-node links model point-to-point
//! wires; multi-node links model a shared Ethernet **segment** — exactly
//! the setting of the paper's audio experiment, where the audio client
//! and the load generator sit on the same segment and compete for its
//! capacity. All transmissions on a link serialize through one shared
//! medium (1990s half-duplex Ethernet).
//!
//! Each link keeps a windowed throughput measurement; this is what the
//! PLAN-P `linkLoad` primitive reports to router programs (the paper's
//! "monitoring the bandwidth of outgoing links", section 3.1).

use crate::packet::Packet;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::time::Duration;

/// Identifies a link within a [`Sim`](crate::sim::Sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Identifies a node within a [`Sim`](crate::sim::Sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Static link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Capacity in kilobits per second (e.g. `10_000` for 10 Mb/s).
    pub kbps: u64,
    /// Propagation delay.
    pub delay: Duration,
    /// Maximum queued packets before tail drop.
    pub queue_pkts: usize,
}

impl LinkSpec {
    /// A 10 Mb/s Ethernet-segment-like link.
    pub fn ethernet_10() -> Self {
        LinkSpec {
            kbps: 10_000,
            delay: Duration::from_micros(100),
            queue_pkts: 64,
        }
    }

    /// A 100 Mb/s Ethernet-like link.
    pub fn ethernet_100() -> Self {
        LinkSpec {
            kbps: 100_000,
            delay: Duration::from_micros(50),
            queue_pkts: 128,
        }
    }
}

/// A packet queued for transmission.
#[derive(Debug, Clone)]
pub(crate) struct Queued {
    pub pkt: Packet,
    /// Sending node.
    pub from: NodeId,
    /// Addressed receiver; `None` broadcasts to every other attached node
    /// (multicast on a segment).
    pub next_hop: Option<NodeId>,
    /// Enqueue time in simulation nanoseconds; the hop-latency
    /// histogram observes `tx_done - enq_ns` per transmitted packet.
    pub enq_ns: u64,
}

/// Throughput measurement window.
const WINDOW: Duration = Duration::from_millis(500);

/// A link instance.
#[derive(Debug)]
pub struct Link {
    /// Static parameters.
    pub spec: LinkSpec,
    /// Attached nodes.
    pub nodes: Vec<NodeId>,
    pub(crate) queue: VecDeque<Queued>,
    pub(crate) transmitting: Option<Queued>,
    /// True while fault injection has flapped the link down: packets
    /// offered to it are dropped at enqueue.
    pub(crate) fault_down: bool,
    /// Continuous fault-injection impairments (loss, corruption,
    /// duplication, jitter) applied to delivered copies.
    pub(crate) faults: crate::fault::LinkFaults,
    // --- statistics ---
    /// Packets dropped at the queue tail.
    pub drops: u64,
    /// Packet copies lost to fault injection on this link (down flaps,
    /// Bernoulli loss, partitions) — kept separate from congestion
    /// `drops`.
    pub fault_drops: u64,
    /// Total packets transmitted.
    pub tx_packets: u64,
    /// Total bytes transmitted.
    pub tx_bytes: u64,
    window_start: SimTime,
    window_bytes: u64,
    last_window_kbps: i64,
}

impl Link {
    pub(crate) fn new(spec: LinkSpec, nodes: Vec<NodeId>) -> Self {
        Link {
            spec,
            nodes,
            queue: VecDeque::new(),
            transmitting: None,
            fault_down: false,
            faults: crate::fault::LinkFaults::default(),
            drops: 0,
            fault_drops: 0,
            tx_packets: 0,
            tx_bytes: 0,
            window_start: SimTime::ZERO,
            window_bytes: 0,
            last_window_kbps: 0,
        }
    }

    /// Serialization time of `bytes` at this link's capacity.
    pub fn tx_time(&self, bytes: usize) -> Duration {
        Duration::from_nanos((bytes as u64 * 8).saturating_mul(1_000_000) / self.spec.kbps)
    }

    /// True if the link is a multi-node broadcast segment.
    pub fn is_segment(&self) -> bool {
        self.nodes.len() > 2
    }

    /// Accounts transmitted bytes into the measurement window.
    pub(crate) fn account(&mut self, now: SimTime, bytes: usize) {
        self.roll_window(now);
        self.tx_packets += 1;
        self.tx_bytes += bytes as u64;
        self.window_bytes += bytes as u64;
    }

    fn roll_window(&mut self, now: SimTime) {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed >= WINDOW {
            // Rate of the completed window. If more than one window passed
            // idle, the measured rate decays to zero.
            let full_windows = (elapsed.as_nanos() / WINDOW.as_nanos()) as u64;
            self.last_window_kbps = if full_windows == 1 {
                (self.window_bytes * 8) as i64 / WINDOW.as_millis() as i64
            } else {
                0
            };
            self.window_bytes = 0;
            self.window_start += Duration::from_nanos((WINDOW.as_nanos() as u64) * full_windows);
        }
    }

    /// Measured throughput (kb/s) over the last completed window — the
    /// `linkLoad` reading.
    pub fn measured_kbps(&mut self, now: SimTime) -> i64 {
        self.roll_window(now);
        // Blend the completed window with the current partial one so the
        // reading reacts upward within ~100 ms of a load increase and
        // decays within one or two windows of the load stopping.
        let elapsed = now.saturating_sub(self.window_start);
        let ms = elapsed.as_millis() as i64;
        let partial = if ms >= 100 {
            (self.window_bytes * 8) as i64 / ms
        } else {
            0
        };
        partial.max(self.last_window_kbps)
    }

    /// Current queue length in packets (including the one in flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len() + usize::from(self.transmitting.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_scales_with_size_and_capacity() {
        let l = Link::new(
            LinkSpec {
                kbps: 10_000,
                delay: Duration::ZERO,
                queue_pkts: 8,
            },
            vec![],
        );
        // 1250 bytes = 10_000 bits at 10 Mb/s = 1 ms.
        assert_eq!(l.tx_time(1250), Duration::from_millis(1));
        let fast = Link::new(LinkSpec::ethernet_100(), vec![]);
        assert_eq!(fast.tx_time(1250), Duration::from_micros(100));
    }

    #[test]
    fn throughput_window_measures_rate() {
        let mut l = Link::new(LinkSpec::ethernet_10(), vec![]);
        // Send 125 kB over the first 500 ms window → 2000 kb/s.
        for i in 0..100 {
            l.account(SimTime::from_ms(i * 5), 1250);
        }
        let rate = l.measured_kbps(SimTime::from_ms(600));
        assert!((1500..=2500).contains(&rate), "rate {rate}");
    }

    #[test]
    fn idle_link_decays_to_zero() {
        let mut l = Link::new(LinkSpec::ethernet_10(), vec![]);
        l.account(SimTime::from_ms(0), 10_000);
        // Far in the future with no traffic: rate is 0.
        assert_eq!(l.measured_kbps(SimTime::from_secs(10)), 0);
    }

    #[test]
    fn partial_window_reacts_quickly() {
        let mut l = Link::new(LinkSpec::ethernet_10(), vec![]);
        // A burst within the first 200 ms should already register.
        for i in 0..40 {
            l.account(SimTime::from_ms(i * 5), 1250);
        }
        let rate = l.measured_kbps(SimTime::from_ms(210));
        assert!(rate > 1000, "rate {rate}");
    }

    #[test]
    fn segment_detection() {
        let l = Link::new(LinkSpec::ethernet_10(), vec![NodeId(0), NodeId(1)]);
        assert!(!l.is_segment());
        let s = Link::new(
            LinkSpec::ethernet_10(),
            vec![NodeId(0), NodeId(1), NodeId(2)],
        );
        assert!(s.is_segment());
    }
}
