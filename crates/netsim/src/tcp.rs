//! Mini-TCP: a small reliable-stream implementation sufficient for the
//! HTTP cluster experiment (section 3.2).
//!
//! Supported: three-way handshake, byte sequence numbers, cumulative
//! ACKs, a fixed-size sliding window, timeout retransmission, and a
//! simplified FIN teardown (no TIME_WAIT, no simultaneous close, no
//! congestion control — the paper predates widespread NewReno anyway).
//!
//! A [`TcpSocket`] is a pure state machine: the owning application feeds
//! it arriving segments and clock ticks, and transmits whatever packets
//! it returns. This keeps the simulator core transport-agnostic.

use crate::packet::{tcp_flags, Packet, TcpHdr};
use crate::time::SimTime;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::time::Duration;

/// Tunables.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes).
    pub mss: usize,
    /// Window size in segments.
    pub window_segs: u32,
    /// Retransmission timeout.
    pub rto: Duration,
    /// Give up after this many consecutive retransmissions.
    pub max_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            window_segs: 8,
            rto: Duration::from_millis(200),
            max_retries: 8,
        }
    }
}

/// Connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, awaiting SYN+ACK (active open).
    SynSent,
    /// SYN received, SYN+ACK sent (passive open).
    SynRcvd,
    /// Data may flow.
    Established,
    /// FIN sent, awaiting its ACK.
    FinSent,
    /// Fully closed (or aborted).
    Closed,
}

/// What happened as a result of feeding the socket input.
#[derive(Debug, Default)]
pub struct TcpEvents {
    /// Segments to transmit now.
    pub to_send: Vec<Packet>,
    /// The connection just became established.
    pub established: bool,
    /// The peer closed (all its data received) or the connection died.
    pub closed: bool,
    /// The connection was aborted by retransmission exhaustion.
    pub failed: bool,
}

/// One endpoint of a mini-TCP connection.
#[derive(Debug)]
pub struct TcpSocket {
    cfg: TcpConfig,
    /// Local address/port.
    pub local: (u32, u16),
    /// Remote address/port.
    pub remote: (u32, u16),
    /// Current state.
    pub state: TcpState,
    // Sender.
    snd_una: u32,
    snd_next: u32,
    unacked: BTreeMap<u32, Bytes>,
    pending: Vec<u8>,
    last_activity: SimTime,
    retries: u32,
    fin_queued: bool,
    fin_seq: Option<u32>,
    // Receiver.
    rcv_next: u32,
    reorder: BTreeMap<u32, Bytes>,
    received: Vec<u8>,
    peer_fin: bool,
}

impl TcpSocket {
    /// Actively opens a connection; returns the socket and the SYN.
    pub fn connect(
        cfg: TcpConfig,
        local: (u32, u16),
        remote: (u32, u16),
        now: SimTime,
    ) -> (TcpSocket, Packet) {
        let isn = 1; // deterministic ISN; fine for a simulator
        let mut sock = TcpSocket::new(cfg, local, remote, now);
        sock.state = TcpState::SynSent;
        sock.snd_una = isn;
        sock.snd_next = isn + 1;
        let syn = sock.segment(isn, 0, tcp_flags::SYN, Bytes::new());
        (sock, syn)
    }

    /// Passively opens in response to an arriving SYN; returns the socket
    /// and the SYN+ACK.
    pub fn accept(
        cfg: TcpConfig,
        local: (u32, u16),
        syn: &Packet,
        now: SimTime,
    ) -> Option<(TcpSocket, Packet)> {
        let hdr = syn.tcp_hdr()?;
        if !hdr.has(tcp_flags::SYN) || hdr.has(tcp_flags::ACK) {
            return None;
        }
        let remote = (syn.ip.src, hdr.sport);
        let isn = 1;
        let mut sock = TcpSocket::new(cfg, local, remote, now);
        sock.state = TcpState::SynRcvd;
        sock.rcv_next = hdr.seq.wrapping_add(1);
        sock.snd_una = isn;
        sock.snd_next = isn + 1;
        let synack = sock.segment(
            isn,
            sock.rcv_next,
            tcp_flags::SYN | tcp_flags::ACK,
            Bytes::new(),
        );
        Some((sock, synack))
    }

    fn new(cfg: TcpConfig, local: (u32, u16), remote: (u32, u16), now: SimTime) -> Self {
        TcpSocket {
            cfg,
            local,
            remote,
            state: TcpState::Closed,
            snd_una: 0,
            snd_next: 0,
            unacked: BTreeMap::new(),
            pending: Vec::new(),
            last_activity: now,
            retries: 0,
            fin_queued: false,
            fin_seq: None,
            rcv_next: 0,
            reorder: BTreeMap::new(),
            received: Vec::new(),
            peer_fin: false,
        }
    }

    fn segment(&self, seq: u32, ack: u32, flags: u8, payload: Bytes) -> Packet {
        let hdr = TcpHdr {
            sport: self.local.1,
            dport: self.remote.1,
            seq,
            ack,
            flags,
            wnd: self.cfg.window_segs as u16,
        };
        Packet::tcp(self.local.0, self.remote.0, hdr, payload)
    }

    /// Queues application data for transmission.
    pub fn send(&mut self, data: &[u8], now: SimTime) -> TcpEvents {
        self.pending.extend_from_slice(data);
        let mut ev = TcpEvents::default();
        self.pump(now, &mut ev);
        ev
    }

    /// Initiates close: a FIN follows the queued data.
    pub fn close(&mut self, now: SimTime) -> TcpEvents {
        self.fin_queued = true;
        let mut ev = TcpEvents::default();
        self.pump(now, &mut ev);
        ev
    }

    /// Bytes received in order so far (drains the buffer).
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.received)
    }

    /// True if the peer has closed and all its data was consumed.
    pub fn peer_closed(&self) -> bool {
        self.peer_fin && self.reorder.is_empty()
    }

    /// Bytes in flight (sent, unacknowledged).
    pub fn in_flight(&self) -> usize {
        self.unacked.values().map(Bytes::len).sum()
    }

    /// Feeds an arriving segment addressed to this socket.
    pub fn on_segment(&mut self, pkt: &Packet, now: SimTime) -> TcpEvents {
        let mut ev = TcpEvents::default();
        let Some(hdr) = pkt.tcp_hdr().copied() else {
            return ev;
        };
        self.last_activity = now;
        self.retries = 0;

        if hdr.has(tcp_flags::RST) {
            self.state = TcpState::Closed;
            ev.closed = true;
            ev.failed = true;
            return ev;
        }

        match self.state {
            TcpState::SynSent => {
                if hdr.has(tcp_flags::SYN) && hdr.has(tcp_flags::ACK) {
                    self.rcv_next = hdr.seq.wrapping_add(1);
                    self.snd_una = hdr.ack;
                    self.state = TcpState::Established;
                    ev.established = true;
                    ev.to_send.push(self.segment(
                        self.snd_next,
                        self.rcv_next,
                        tcp_flags::ACK,
                        Bytes::new(),
                    ));
                    self.pump(now, &mut ev);
                }
            }
            TcpState::SynRcvd => {
                if hdr.has(tcp_flags::ACK) && hdr.ack >= self.snd_una {
                    self.snd_una = hdr.ack;
                    self.state = TcpState::Established;
                    ev.established = true;
                    // The ACK may carry data already.
                    self.ingest_data(&hdr, pkt, &mut ev);
                    self.pump(now, &mut ev);
                }
            }
            TcpState::Established | TcpState::FinSent => {
                if hdr.has(tcp_flags::ACK) {
                    let ack = hdr.ack;
                    if seq_ge(ack, self.snd_una) {
                        self.snd_una = ack;
                        self.unacked.retain(|&seq, data| {
                            seq_ge(seq.wrapping_add(data.len() as u32), ack.wrapping_add(1))
                        });
                        if let Some(fin_seq) = self.fin_seq {
                            if seq_ge(ack, fin_seq.wrapping_add(1))
                                && self.state == TcpState::FinSent
                            {
                                self.state = TcpState::Closed;
                                ev.closed = true;
                            }
                        }
                    }
                }
                self.ingest_data(&hdr, pkt, &mut ev);
                if self.state != TcpState::Closed {
                    self.pump(now, &mut ev);
                }
            }
            TcpState::Closed => {}
        }
        ev
    }

    fn ingest_data(&mut self, hdr: &TcpHdr, pkt: &Packet, ev: &mut TcpEvents) {
        let mut advanced = false;
        if !pkt.payload.is_empty() {
            if hdr.seq == self.rcv_next {
                self.received.extend_from_slice(&pkt.payload);
                self.rcv_next = self.rcv_next.wrapping_add(pkt.payload.len() as u32);
                advanced = true;
                // Drain the reorder buffer.
                while let Some((&seq, _)) = self.reorder.first_key_value() {
                    if seq != self.rcv_next {
                        break;
                    }
                    let (_, data) = self.reorder.pop_first().expect("non-empty");
                    self.rcv_next = self.rcv_next.wrapping_add(data.len() as u32);
                    self.received.extend_from_slice(&data);
                }
            } else if seq_ge(hdr.seq, self.rcv_next) {
                self.reorder.insert(hdr.seq, pkt.payload.clone());
            }
            // Duplicate (< rcv_next): just re-ACK below.
        }
        if hdr.has(tcp_flags::FIN)
            && (hdr.seq == self.rcv_next
                || (advanced && hdr.seq.wrapping_add(pkt.payload.len() as u32) == self.rcv_next))
        {
            // In-order FIN (possibly after its own payload); it
            // occupies one sequence number.
            self.rcv_next = self.rcv_next.wrapping_add(1);
            self.peer_fin = true;
            ev.closed = true;
        }
        if !pkt.payload.is_empty() || hdr.has(tcp_flags::FIN) {
            ev.to_send.push(self.segment(
                self.snd_next,
                self.rcv_next,
                tcp_flags::ACK,
                Bytes::new(),
            ));
        }
    }

    /// Transmits pending data while the window allows.
    fn pump(&mut self, now: SimTime, ev: &mut TcpEvents) {
        if !matches!(self.state, TcpState::Established | TcpState::FinSent) {
            return;
        }
        let window_bytes = self.cfg.window_segs as usize * self.cfg.mss;
        while !self.pending.is_empty() && self.in_flight() < window_bytes {
            let take = self.pending.len().min(self.cfg.mss);
            let chunk: Bytes = self.pending.drain(..take).collect::<Vec<u8>>().into();
            let seq = self.snd_next;
            self.snd_next = self.snd_next.wrapping_add(chunk.len() as u32);
            self.unacked.insert(seq, chunk.clone());
            let mut seg = self.segment(seq, self.rcv_next, tcp_flags::ACK | tcp_flags::PSH, chunk);
            if let Some(h) = match &mut seg.transport {
                crate::packet::Transport::Tcp(h) => Some(h),
                _ => None,
            } {
                h.ack = self.rcv_next;
            }
            ev.to_send.push(seg);
            self.last_activity = now;
        }
        if self.fin_queued
            && self.pending.is_empty()
            && self.unacked.is_empty()
            && self.state == TcpState::Established
        {
            let seq = self.snd_next;
            self.fin_seq = Some(seq);
            self.snd_next = self.snd_next.wrapping_add(1);
            self.state = TcpState::FinSent;
            ev.to_send.push(self.segment(
                seq,
                self.rcv_next,
                tcp_flags::FIN | tcp_flags::ACK,
                Bytes::new(),
            ));
            self.last_activity = now;
        }
    }

    /// Clock tick: retransmits on timeout. Call at least every `rto / 2`.
    pub fn on_tick(&mut self, now: SimTime) -> TcpEvents {
        let mut ev = TcpEvents::default();
        if self.state == TcpState::Closed {
            return ev;
        }
        if now.saturating_sub(self.last_activity) < self.cfg.rto {
            return ev;
        }
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.state = TcpState::Closed;
            ev.closed = true;
            ev.failed = true;
            return ev;
        }
        self.last_activity = now;
        match self.state {
            TcpState::SynSent => {
                ev.to_send
                    .push(self.segment(self.snd_una, 0, tcp_flags::SYN, Bytes::new()));
            }
            TcpState::SynRcvd => {
                ev.to_send.push(self.segment(
                    self.snd_una,
                    self.rcv_next,
                    tcp_flags::SYN | tcp_flags::ACK,
                    Bytes::new(),
                ));
            }
            TcpState::Established | TcpState::FinSent => {
                if let Some((&seq, data)) = self.unacked.first_key_value() {
                    ev.to_send.push(self.segment(
                        seq,
                        self.rcv_next,
                        tcp_flags::ACK | tcp_flags::PSH,
                        data.clone(),
                    ));
                } else if let Some(fin_seq) = self.fin_seq {
                    if self.state == TcpState::FinSent {
                        ev.to_send.push(self.segment(
                            fin_seq,
                            self.rcv_next,
                            tcp_flags::FIN | tcp_flags::ACK,
                            Bytes::new(),
                        ));
                    }
                }
            }
            TcpState::Closed => {}
        }
        ev
    }
}

/// Sequence comparison tolerant of wraparound (a >= b).
fn seq_ge(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) < 0x8000_0000
}

/// Demultiplexing key for a connection table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnKey {
    /// Remote address.
    pub raddr: u32,
    /// Remote port.
    pub rport: u16,
    /// Local port.
    pub lport: u16,
}

impl ConnKey {
    /// Builds the key for an arriving packet.
    pub fn of(pkt: &Packet) -> Option<ConnKey> {
        let h = pkt.tcp_hdr()?;
        Some(ConnKey {
            raddr: pkt.ip.src,
            rport: h.sport,
            lport: h.dport,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shuttles packets between two sockets through a lossy in-memory
    /// "wire", returning when both sides are idle.
    fn shuttle(
        a: &mut TcpSocket,
        b: &mut TcpSocket,
        first: Vec<Packet>,
        drop_nth: Option<usize>,
        now: &mut SimTime,
    ) {
        let mut inflight: Vec<(bool, Packet)> = first.into_iter().map(|p| (true, p)).collect();
        let mut count = 0usize;
        let mut steps = 0;
        while steps < 10_000 {
            steps += 1;
            if let Some((to_b, pkt)) = inflight.first().cloned() {
                inflight.remove(0);
                count += 1;
                if Some(count) == drop_nth {
                    continue; // lost on the wire
                }
                let ev = if to_b {
                    b.on_segment(&pkt, *now)
                } else {
                    a.on_segment(&pkt, *now)
                };
                inflight.extend(ev.to_send.into_iter().map(|p| (!to_b, p)));
            } else {
                // Idle: advance time and tick both (retransmissions).
                *now += Duration::from_millis(250);
                let ea = a.on_tick(*now);
                let eb = b.on_tick(*now);
                if ea.to_send.is_empty() && eb.to_send.is_empty() {
                    return;
                }
                inflight.extend(ea.to_send.into_iter().map(|p| (true, p)));
                inflight.extend(eb.to_send.into_iter().map(|p| (false, p)));
            }
        }
        panic!("shuttle did not settle");
    }

    /// Builds an established connection pair by running the handshake.
    fn pair(now: SimTime) -> (TcpSocket, TcpSocket) {
        let cfg = TcpConfig::default();
        let (mut client, syn) = TcpSocket::connect(cfg, (1, 5000), (2, 80), now);
        let (mut server, synack) = TcpSocket::accept(cfg, (2, 80), &syn, now).unwrap();
        let ev = client.on_segment(&synack, now);
        assert!(ev.established);
        let ev2 = server.on_segment(&ev.to_send[0], now);
        assert!(ev2.established);
        assert_eq!(client.state, TcpState::Established);
        assert_eq!(server.state, TcpState::Established);
        (client, server)
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let mut now = SimTime::ZERO;
        let cfg = TcpConfig::default();
        let (mut client, syn) = TcpSocket::connect(cfg, (1, 5000), (2, 80), now);
        let (mut server, synack) = TcpSocket::accept(cfg, (2, 80), &syn, now).unwrap();
        let ev = client.on_segment(&synack, now);
        assert!(ev.established);
        assert_eq!(client.state, TcpState::Established);
        let ack = &ev.to_send[0];
        let ev2 = server.on_segment(ack, now);
        assert!(ev2.established);
        assert_eq!(server.state, TcpState::Established);
        shuttle(&mut client, &mut server, vec![], None, &mut now);
    }

    #[test]
    fn data_transfer_in_order() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = pair(now);
        let payload = vec![7u8; 5000]; // several segments
        let ev = c.send(&payload, now);
        shuttle(&mut c, &mut s, ev.to_send, None, &mut now);
        assert_eq!(s.take_received(), payload);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn lost_segment_retransmitted() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = pair(now);
        let payload: Vec<u8> = (0..6000u32).map(|i| i as u8).collect();
        let ev = c.send(&payload, now);
        // Drop the 2nd packet on the wire; retransmission must recover.
        shuttle(&mut c, &mut s, ev.to_send, Some(2), &mut now);
        assert_eq!(s.take_received(), payload);
    }

    #[test]
    fn bidirectional_transfer() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = pair(now);
        let req = b"GET /index.html".to_vec();
        let ev = c.send(&req, now);
        shuttle(&mut c, &mut s, ev.to_send, None, &mut now);
        assert_eq!(s.take_received(), req);
        let resp = vec![9u8; 10_000];
        let ev = s.send(&resp, now);
        // server → client direction: flip roles in the shuttle.
        shuttle(&mut s, &mut c, ev.to_send, None, &mut now);
        assert_eq!(c.take_received(), resp);
    }

    #[test]
    fn close_handshake() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = pair(now);
        let ev = c.send(b"bye", now);
        shuttle(&mut c, &mut s, ev.to_send, None, &mut now);
        let ev = c.close(now);
        assert_eq!(c.state, TcpState::FinSent);
        shuttle(&mut c, &mut s, ev.to_send, None, &mut now);
        assert_eq!(c.state, TcpState::Closed);
        assert!(s.peer_closed());
    }

    #[test]
    fn window_limits_in_flight_bytes() {
        let now = SimTime::ZERO;
        let cfg = TcpConfig {
            window_segs: 2,
            mss: 100,
            ..TcpConfig::default()
        };
        let (mut c, syn) = TcpSocket::connect(cfg, (1, 5000), (2, 80), now);
        let (_s, synack) = TcpSocket::accept(cfg, (2, 80), &syn, now).unwrap();
        c.on_segment(&synack, now);
        let ev = c.send(&vec![0u8; 1000], now);
        // Only window_segs * mss = 200 bytes may be in flight.
        let sent: usize = ev.to_send.iter().map(|p| p.payload.len()).sum();
        assert_eq!(sent, 200);
        assert_eq!(c.in_flight(), 200);
    }

    #[test]
    fn retry_exhaustion_fails_connection() {
        let mut now = SimTime::ZERO;
        let cfg = TcpConfig {
            max_retries: 2,
            ..TcpConfig::default()
        };
        let (mut c, _syn) = TcpSocket::connect(cfg, (1, 5000), (2, 80), now);
        // Nobody answers; tick past the RTO repeatedly.
        let mut failed = false;
        for _ in 0..10 {
            now += Duration::from_millis(300);
            let ev = c.on_tick(now);
            if ev.failed {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert_eq!(c.state, TcpState::Closed);
    }

    #[test]
    fn conn_key_from_packet() {
        let pkt = Packet::tcp(9, 2, TcpHdr::data(5000, 80, 1), Bytes::new());
        let k = ConnKey::of(&pkt).unwrap();
        assert_eq!(
            k,
            ConnKey {
                raddr: 9,
                rport: 5000,
                lport: 80
            }
        );
    }

    /// Like [`shuttle`], but every in-flight segment is independently
    /// lost with probability `loss` and duplicated with probability
    /// `dup`, driven by a seeded [`SplitMix64`] — the same impairment
    /// model the fault injector applies to simulator links.
    fn shuttle_chaos(
        a: &mut TcpSocket,
        b: &mut TcpSocket,
        first: Vec<Packet>,
        loss: f64,
        dup: f64,
        seed: u64,
        now: &mut SimTime,
    ) {
        let mut rng = crate::rng::SplitMix64::new(seed);
        let mut inflight: Vec<(bool, Packet)> = first.into_iter().map(|p| (true, p)).collect();
        let mut steps = 0;
        while steps < 100_000 {
            steps += 1;
            if let Some((to_b, pkt)) = inflight.first().cloned() {
                inflight.remove(0);
                if rng.next_f64() < loss {
                    continue; // lost on the wire
                }
                if rng.next_f64() < dup {
                    inflight.push((to_b, pkt.clone())); // delivered twice
                }
                let ev = if to_b {
                    b.on_segment(&pkt, *now)
                } else {
                    a.on_segment(&pkt, *now)
                };
                inflight.extend(ev.to_send.into_iter().map(|p| (!to_b, p)));
            } else {
                *now += Duration::from_millis(250);
                let ea = a.on_tick(*now);
                let eb = b.on_tick(*now);
                if ea.to_send.is_empty() && eb.to_send.is_empty() {
                    return;
                }
                inflight.extend(ea.to_send.into_iter().map(|p| (true, p)));
                inflight.extend(eb.to_send.into_iter().map(|p| (false, p)));
            }
        }
        panic!("chaotic shuttle did not settle");
    }

    /// Property: across many seeds, reassembly delivers the exact byte
    /// stream despite 10% random segment loss in both directions.
    #[test]
    fn reassembly_survives_random_loss() {
        for seed in 0..24u64 {
            let mut now = SimTime::ZERO;
            let (mut c, mut s) = pair(now);
            let len = 1000 + (seed as usize * 733) % 9000;
            let payload: Vec<u8> = (0..len).map(|i| (i as u64 * (seed + 3)) as u8).collect();
            let ev = c.send(&payload, now);
            shuttle_chaos(&mut c, &mut s, ev.to_send, 0.10, 0.0, seed, &mut now);
            assert_eq!(s.take_received(), payload, "seed {seed}");
            assert_eq!(c.in_flight(), 0, "seed {seed}");
        }
    }

    /// Property: duplicated segments (alone and combined with loss)
    /// never corrupt or double-deliver the reassembled stream.
    #[test]
    fn reassembly_survives_duplication_and_loss() {
        for seed in 0..24u64 {
            let mut now = SimTime::ZERO;
            let (mut c, mut s) = pair(now);
            let len = 1000 + (seed as usize * 977) % 9000;
            let payload: Vec<u8> = (0..len).map(|i| (i as u64 ^ (seed * 17)) as u8).collect();
            let ev = c.send(&payload, now);
            let (loss, dup) = if seed % 2 == 0 {
                (0.0, 0.2)
            } else {
                (0.08, 0.15)
            };
            shuttle_chaos(&mut c, &mut s, ev.to_send, loss, dup, seed, &mut now);
            assert_eq!(s.take_received(), payload, "seed {seed}");
            assert_eq!(c.in_flight(), 0, "seed {seed}");
        }
    }

    #[test]
    fn reordered_segments_reassemble() {
        let now = SimTime::ZERO;
        let (mut c, mut s) = pair(now);
        // Send two segments; deliver them out of order manually.
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let ev = c.send(&data, now);
        assert_eq!(ev.to_send.len(), 2);
        let (seg1, seg2) = (ev.to_send[0].clone(), ev.to_send[1].clone());
        let e2 = s.on_segment(&seg2, now); // out of order → buffered
        assert!(s.take_received().is_empty());
        let e1 = s.on_segment(&seg1, now);
        assert_eq!(s.take_received(), data);
        // ACKs flow back; drive to quiescence.
        let mut back: Vec<Packet> = e2.to_send.into_iter().chain(e1.to_send).collect();
        while let Some(p) = back.pop() {
            let ev = c.on_segment(&p, now);
            for x in ev.to_send {
                let ev2 = s.on_segment(&x, now);
                back.extend(ev2.to_send);
            }
        }
        assert_eq!(c.in_flight(), 0);
    }
}
