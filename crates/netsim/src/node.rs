//! Nodes (hosts and routers), applications, and the packet-hook
//! extension point the PLAN-P layer plugs into.

use crate::link::{LinkId, NodeId};
use crate::packet::Packet;
use crate::rng::SplitMix64;
use crate::sim::NodeApi;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

/// A single-server CPU model: arriving packets queue for a fixed
/// per-packet processing time before the node handles them. This is how
/// the gateway of section 3.2 becomes a *contention point* — the paper's
/// explanation for the cluster serving 85% of two servers' capacity.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Processing time charged to every (non-overheard) arriving packet.
    pub per_packet: Duration,
    /// Packets queued beyond this are dropped.
    pub queue_cap: usize,
}

/// A simulated host or router.
pub struct Node {
    /// Human-readable name (for traces and diagnostics).
    pub name: String,
    /// The node's IPv4 address.
    pub addr: u32,
    /// True for routers: packets not addressed to this node are
    /// forwarded; hosts drop them.
    pub forwarding: bool,
    pub(crate) ifaces: Vec<LinkId>,
    /// Unicast routes: destination address → (link, next hop).
    pub(crate) routes: HashMap<u32, (LinkId, NodeId)>,
    /// Multicast routes: group → outgoing links.
    pub(crate) mcast_routes: HashMap<u32, Vec<LinkId>>,
    /// Multicast groups this node receives.
    pub(crate) subscriptions: HashSet<u32>,
    pub(crate) apps: Vec<Option<Box<dyn App>>>,
    pub(crate) hook: Option<Box<dyn PacketHook>>,
    pub(crate) rng: SplitMix64,
    pub(crate) cpu: Option<CpuModel>,
    /// True while the node is failed: it neither receives nor processes
    /// anything (used for fault-injection experiments).
    pub(crate) down: bool,
    pub(crate) cpu_queue: VecDeque<(Packet, Option<LinkId>, bool)>,
    pub(crate) cpu_busy: bool,
    /// Bumped on crash so CPU-completion events scheduled before the
    /// crash cannot touch work queued after the restart.
    pub(crate) cpu_epoch: u64,
    /// Packets dropped because the CPU queue overflowed.
    pub cpu_drops: u64,
    /// Packets deliberately shed here: admission control, brownout
    /// class shedding, and deadline-expired drops.
    pub shed: u64,
    /// Times this node was crashed by fault injection.
    pub crashes: u64,
    /// Times a crash discarded an installed packet hook (protocol-state
    /// loss).
    pub state_lost: u64,
    /// Packets delivered to local applications.
    pub delivered: u64,
    /// Packets dropped at this node (no route, TTL expired, not for us).
    pub dropped: u64,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("addr", &crate::packet::addr_to_string(self.addr))
            .field("forwarding", &self.forwarding)
            .field("apps", &self.apps.len())
            .field("hooked", &self.hook.is_some())
            .field("delivered", &self.delivered)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl Node {
    pub(crate) fn new(name: String, addr: u32, forwarding: bool, seed: u64) -> Self {
        Node {
            name,
            addr,
            forwarding,
            ifaces: Vec::new(),
            routes: HashMap::new(),
            mcast_routes: HashMap::new(),
            subscriptions: HashSet::new(),
            apps: Vec::new(),
            hook: None,
            rng: SplitMix64::new(seed),
            cpu: None,
            down: false,
            cpu_queue: VecDeque::new(),
            cpu_busy: false,
            cpu_epoch: 0,
            cpu_drops: 0,
            shed: 0,
            crashes: 0,
            state_lost: 0,
            delivered: 0,
            dropped: 0,
        }
    }
}

/// How a packet reached the node.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalMeta {
    /// The link the packet arrived on (`None` for self-sends).
    pub via: Option<LinkId>,
    /// True if this node merely *overheard* the packet on a shared
    /// segment (it is addressed past us). Hooks see overheard traffic —
    /// that is how the MPEG client ASP captures a neighbor's video
    /// stream (section 3.3) — but normal processing ignores it.
    pub overheard: bool,
}

/// A local application running above the (extensible) network layer.
///
/// Applications drive the simulation through the [`NodeApi`] passed to
/// each callback: sending packets, setting timers, and recording
/// measurements.
pub trait App {
    /// Called once when the simulation starts.
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        let _ = api;
    }

    /// Called for every packet delivered to this node.
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet);

    /// Called when a timer set via [`NodeApi::set_timer`] fires.
    fn on_timer(&mut self, api: &mut NodeApi<'_>, key: u64) {
        let _ = (api, key);
    }

    /// Called when the node comes back up after a fault-injected crash
    /// (see [`Sim::restart_node`](crate::Sim::restart_node)). Timers
    /// that fired while the node was down were swallowed, so periodic
    /// applications should re-arm here; management applications can
    /// start protocol recovery (e.g. re-deploying a lost ASP).
    fn on_restart(&mut self, api: &mut NodeApi<'_>) {
        let _ = api;
    }
}

/// A hook's decision about an arriving packet.
#[derive(Debug)]
pub enum HookVerdict {
    /// The hook consumed the packet (its effects are already applied).
    Handled,
    /// The hook declined; normal IP processing continues with the
    /// returned packet (usually the original, possibly rewritten).
    Pass(Packet),
}

/// The extension point at the IP layer (figure 1 of the paper: the
/// "IP/PLAN-P" layer). The PLAN-P runtime installs an implementation of
/// this trait; native (built-in "C") baselines implement it directly in
/// Rust.
pub trait PacketHook {
    /// Inspects an arriving packet before normal IP processing.
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet, meta: &ArrivalMeta) -> HookVerdict;

    /// Called when a timer armed via [`NodeApi::set_hook_timer`] fires.
    /// This is how an installed protocol gets a clock: the PLAN-P layer
    /// turns these into synthetic timer-channel dispatches so ASPs can
    /// schedule retransmissions.
    fn on_timer(&mut self, api: &mut NodeApi<'_>, key: u64) {
        let _ = (api, key);
    }
}
