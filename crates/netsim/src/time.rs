//! Simulated time: nanosecond ticks from the start of the run.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds a time from milliseconds.
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time from microseconds.
    pub fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time as whole nanoseconds (the native resolution).
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as whole milliseconds.
    pub fn as_ms(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, other: SimTime) -> Duration {
        Duration::from_nanos(self.0 - other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000_000);
        assert_eq!(SimTime::from_ms(5).as_ms(), 5);
        assert_eq!(SimTime::from_us(7).0, 7_000);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10) + Duration::from_millis(5);
        assert_eq!(t.as_ms(), 15);
        assert_eq!(t - SimTime::from_ms(10), Duration::from_millis(5));
        assert_eq!(
            SimTime::from_ms(1).saturating_sub(SimTime::from_ms(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms(1500).to_string(), "1.500000s");
    }
}
