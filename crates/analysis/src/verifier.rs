//! The verifier façade: runs the configured analyses and produces a
//! structured report.
//!
//! This is the component the paper describes as running *in the router*
//! when a program is downloaded (late checking): programs that cannot be
//! proved safe are rejected, unless the download is authenticated — the
//! paper's escape hatch for legitimate protocols (e.g. multicast) that
//! the conservative analyses cannot prove.

use crate::delivery::check_delivery;
use crate::duplication::{check_duplication, compute_may_copy};
use crate::summary::{summarize, ProgramSummary};
use crate::termination::{check_termination, Outcome};
use planp_lang::error::LangError;
use planp_lang::tast::TProgram;
use std::fmt;

/// Size of the analysis problem — the paper's back-of-envelope
/// `r·d·2^d` discussion made concrete (section 2.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisStats {
    /// Channels analyzed.
    pub channels: usize,
    /// Send sites found (the paper's `r`).
    pub send_sites: usize,
    /// Destination-changing (restart) sites among them.
    pub restart_sites: usize,
    /// Iterations the duplication fix-point needed (bounded by
    /// channels + 1; the paper's bound is `2^c`).
    pub dup_iterations: usize,
}

/// Which properties a node demands before accepting a program.
///
/// Network providers may require different properties (section 4); the
/// default demands everything the paper's analyses can prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Require the global-termination proof.
    pub require_termination: bool,
    /// Require the guaranteed-delivery proof (implies termination).
    pub require_delivery: bool,
    /// Require the linear-duplication proof.
    pub require_linear_duplication: bool,
}

impl Policy {
    /// The strictest policy: all three properties.
    pub fn strict() -> Self {
        Policy {
            require_termination: true,
            require_delivery: true,
            require_linear_duplication: true,
        }
    }

    /// Termination and linear duplication, but programs may drop packets
    /// intentionally (e.g. filters and monitors).
    pub fn no_delivery() -> Self {
        Policy {
            require_termination: true,
            require_delivery: false,
            require_linear_duplication: true,
        }
    }

    /// An authenticated (privileged) download: nothing is required, the
    /// report is informational.
    pub fn authenticated() -> Self {
        Policy {
            require_termination: false,
            require_delivery: false,
            require_linear_duplication: false,
        }
    }
}

impl Default for Policy {
    fn default() -> Self {
        Policy::strict()
    }
}

/// The verifier's findings for one program.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Global-termination outcome.
    pub termination: Outcome,
    /// Guaranteed-delivery outcome.
    pub delivery: Outcome,
    /// Linear-duplication outcome.
    pub duplication: Outcome,
    /// The policy the report was evaluated against.
    pub policy: Policy,
    /// Problem-size statistics.
    pub stats: AnalysisStats,
}

impl VerifyReport {
    /// True if the program satisfies the policy.
    pub fn accepted(&self) -> bool {
        (!self.policy.require_termination || self.termination.is_proved())
            && (!self.policy.require_delivery || self.delivery.is_proved())
            && (!self.policy.require_linear_duplication || self.duplication.is_proved())
    }

    /// All diagnostics from analyses the policy requires.
    pub fn errors(&self) -> Vec<LangError> {
        let mut out = Vec::new();
        let mut push = |required: bool, outcome: &Outcome| {
            if required {
                if let Outcome::Rejected(errs) = outcome {
                    out.extend(errs.iter().cloned());
                }
            }
        };
        push(self.policy.require_termination, &self.termination);
        push(self.policy.require_delivery, &self.delivery);
        push(self.policy.require_linear_duplication, &self.duplication);
        // Delivery subsumes termination diagnostics; dedup.
        out.dedup_by(|a, b| a == b);
        out
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = |o: &Outcome| {
            if o.is_proved() {
                "proved"
            } else {
                "NOT PROVED"
            }
        };
        writeln!(f, "termination:  {}", s(&self.termination))?;
        writeln!(f, "delivery:     {}", s(&self.delivery))?;
        writeln!(f, "duplication:  {}", s(&self.duplication))?;
        writeln!(
            f,
            "verdict:      {}",
            if self.accepted() {
                "ACCEPTED"
            } else {
                "REJECTED"
            }
        )?;
        write!(
            f,
            "problem size: {} channel(s), {} send site(s) ({} destination-changing), {} fix-point iteration(s)",
            self.stats.channels,
            self.stats.send_sites,
            self.stats.restart_sites,
            self.stats.dup_iterations
        )
    }
}

/// Runs all analyses against `prog` and evaluates them under `policy`.
pub fn verify(prog: &TProgram, policy: Policy) -> VerifyReport {
    let sum = summarize(prog);
    verify_with_summary(prog, &sum, policy)
}

/// Like [`verify`], reusing a precomputed summary.
pub fn verify_with_summary(prog: &TProgram, sum: &ProgramSummary, policy: Policy) -> VerifyReport {
    let send_sites: usize = sum.channels.iter().map(|s| s.sites.len()).sum();
    let restart_sites: usize = sum
        .channels
        .iter()
        .flat_map(|s| s.sites.iter())
        .filter(|site| !site.is_progress())
        .count();
    let stats = AnalysisStats {
        channels: prog.channels.len(),
        send_sites,
        restart_sites,
        dup_iterations: compute_may_copy(prog, sum).iterations,
    };
    VerifyReport {
        termination: check_termination(prog, sum),
        delivery: check_delivery(prog, sum),
        duplication: check_duplication(prog, sum),
        policy,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planp_lang::compile_front;

    fn report(src: &str, policy: Policy) -> VerifyReport {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        verify(&tp, policy)
    }

    const GOOD: &str = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                        (OnRemote(network, p); (ps, ss))";

    const DROPPER: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                           if ps > 0 then (OnRemote(network, p); (ps, ss)) else (ps, ss)";

    #[test]
    fn good_program_accepted_under_strict() {
        let r = report(GOOD, Policy::strict());
        assert!(r.accepted(), "{r}");
        assert!(r.errors().is_empty());
    }

    #[test]
    fn dropper_rejected_under_strict_but_ok_without_delivery() {
        let r = report(DROPPER, Policy::strict());
        assert!(!r.accepted());
        assert!(!r.errors().is_empty());
        let r = report(DROPPER, Policy::no_delivery());
        assert!(r.accepted(), "{r}");
    }

    #[test]
    fn authenticated_accepts_anything() {
        let bouncer = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                       (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))";
        let r = report(bouncer, Policy::authenticated());
        assert!(r.accepted());
        // The analyses still ran and report the problem informationally.
        assert!(!r.termination.is_proved());
        assert!(r.errors().is_empty());
    }

    #[test]
    fn display_summarizes() {
        let r = report(GOOD, Policy::strict());
        let s = r.to_string();
        assert!(s.contains("ACCEPTED"));
        assert!(s.contains("termination:  proved"));
        assert!(
            s.contains("problem size: 1 channel(s), 1 send site(s)"),
            "{s}"
        );
    }
}
