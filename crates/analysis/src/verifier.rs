//! The verifier façade: runs the configured analyses and produces a
//! structured report.
//!
//! This is the component the paper describes as running *in the router*
//! when a program is downloaded (late checking): programs that cannot be
//! proved safe are rejected, unless the download is authenticated — the
//! paper's escape hatch for legitimate protocols (e.g. multicast) that
//! the conservative analyses cannot prove.

use crate::cost::{cost_bounds, CostReport};
use crate::delivery::check_delivery;
use crate::diag::Diagnostic;
use crate::duplication::{check_duplication, compute_may_copy};
use crate::lint::lint;
use crate::modelcheck::{model_check, ModelCheckReport, Verdict, DEFAULT_STATE_BUDGET};
use crate::summary::{summarize, ProgramSummary};
use crate::termination::{check_termination, Outcome};
use planp_lang::tast::TProgram;
use std::fmt;

/// Size of the analysis problem — the paper's back-of-envelope
/// `r·d·2^d` discussion made concrete (section 2.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisStats {
    /// Channels analyzed.
    pub channels: usize,
    /// Send sites found (the paper's `r`).
    pub send_sites: usize,
    /// Destination-changing (restart) sites among them.
    pub restart_sites: usize,
    /// Iterations the duplication fix-point needed (bounded by
    /// channels + 1; the paper's bound is `2^c`).
    pub dup_iterations: usize,
}

impl fmt::Display for AnalysisStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} channel(s), {} send site(s) ({} destination-changing), {} fix-point iteration(s)",
            self.channels, self.send_sites, self.restart_sites, self.dup_iterations
        )
    }
}

/// Which properties a node demands before accepting a program.
///
/// Network providers may require different properties (section 4); the
/// default demands everything the paper's analyses can prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Require the global-termination proof.
    pub require_termination: bool,
    /// Require the guaranteed-delivery proof (implies termination).
    pub require_delivery: bool,
    /// Require the linear-duplication proof.
    pub require_linear_duplication: bool,
    /// Reject programs whose statically bounded worst-case per-packet
    /// cost exceeds this many VM steps on any channel (`None` disables
    /// the budget). See [`crate::cost`].
    pub max_steps_per_packet: Option<u64>,
    /// Run the [explicit-state model checker](crate::modelcheck) as a
    /// precision tier: the SCC screen stays the fast path, and the
    /// exhaustive exploration re-judges its rejections (proving some of
    /// them) and attaches counterexample witnesses to real violations.
    pub exhaustive: bool,
    /// State budget for the exhaustive exploration; exceeding it falls
    /// back to the screening verdicts.
    pub exhaustive_budget: usize,
    /// Reject programs with a table whose growth the [state
    /// analysis](crate::state) cannot bound: a packet-derived key with
    /// no eviction on any path (`E009`).
    pub require_bounded_state: bool,
    /// Reject programs whose composed per-node entry bound (summed over
    /// all tables) exceeds this many entries (`E010`); `None` disables
    /// the budget. Implies [`Policy::require_bounded_state`] in effect:
    /// an unbounded table trivially exceeds any budget.
    pub max_state_entries: Option<u64>,
}

impl Policy {
    /// The strictest policy: all three properties.
    pub fn strict() -> Self {
        Policy {
            require_termination: true,
            require_delivery: true,
            require_linear_duplication: true,
            max_steps_per_packet: None,
            exhaustive: false,
            exhaustive_budget: DEFAULT_STATE_BUDGET,
            require_bounded_state: false,
            max_state_entries: None,
        }
    }

    /// Termination and linear duplication, but programs may drop packets
    /// intentionally (e.g. filters and monitors).
    pub fn no_delivery() -> Self {
        Policy {
            require_termination: true,
            require_delivery: false,
            require_linear_duplication: true,
            max_steps_per_packet: None,
            exhaustive: false,
            exhaustive_budget: DEFAULT_STATE_BUDGET,
            require_bounded_state: false,
            max_state_entries: None,
        }
    }

    /// An authenticated (privileged) download: nothing is required, the
    /// report is informational.
    pub fn authenticated() -> Self {
        Policy {
            require_termination: false,
            require_delivery: false,
            require_linear_duplication: false,
            max_steps_per_packet: None,
            exhaustive: false,
            exhaustive_budget: DEFAULT_STATE_BUDGET,
            require_bounded_state: false,
            max_state_entries: None,
        }
    }

    /// Adds a per-packet step budget to this policy (builder style).
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.max_steps_per_packet = Some(steps);
        self
    }

    /// Enables the exhaustive model-checking tier (builder style).
    pub fn with_exhaustive_check(mut self) -> Self {
        self.exhaustive = true;
        self
    }

    /// Enables the exhaustive tier with an explicit state budget
    /// (builder style).
    pub fn with_exhaustive_budget(mut self, states: usize) -> Self {
        self.exhaustive = true;
        self.exhaustive_budget = states;
        self
    }

    /// Requires every table's growth to be statically bounded or
    /// runtime-monitorable: packet-keyed tables with no eviction are
    /// rejected with `E009` (builder style).
    pub fn with_bounded_state(mut self) -> Self {
        self.require_bounded_state = true;
        self
    }

    /// Adds a per-node state budget: the composed entry bound over all
    /// tables must stay within `entries` (`E010`), and unbounded tables
    /// are rejected (`E009`). Builder style.
    pub fn with_state_budget(mut self, entries: u64) -> Self {
        self.require_bounded_state = true;
        self.max_state_entries = Some(entries);
        self
    }
}

impl Default for Policy {
    fn default() -> Self {
        Policy::strict()
    }
}

/// The verifier's findings for one program.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Global-termination outcome.
    pub termination: Outcome,
    /// Guaranteed-delivery outcome.
    pub delivery: Outcome,
    /// Linear-duplication outcome.
    pub duplication: Outcome,
    /// Step-budget outcome (always `Proved` when the policy sets no
    /// budget).
    pub budget: Outcome,
    /// State-safety outcome: `E009` (unbounded table growth) and `E010`
    /// (composed entry bound over the state budget). Always `Proved`
    /// when the policy demands neither.
    pub state: Outcome,
    /// The composed per-node entry bound over all tables (`None` means
    /// some table is unbounded). See [`crate::state`].
    pub state_bound: Option<u64>,
    /// The full state-effect analysis (per-channel insert counts,
    /// per-table growth bounds) — kept on the report so the runtime can
    /// cross-check live table telemetry against the static bounds, the
    /// way [`VerifyReport::cost`] backs the step-bound check.
    pub state_effects: crate::state::StateReport,
    /// Static per-packet cost bounds (see [`crate::cost`]).
    pub cost: CostReport,
    /// Lint findings plus every policy-required rejection, as structured
    /// diagnostics sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
    /// The policy the report was evaluated against.
    pub policy: Policy,
    /// Problem-size statistics.
    pub stats: AnalysisStats,
    /// The exhaustive model-checking report, when the policy enabled it
    /// ([`Policy::with_exhaustive_check`]). Its verdicts have already
    /// been folded into [`VerifyReport::termination`] and
    /// [`VerifyReport::delivery`]: a proof overrides a screen
    /// rejection, a violation replaces the screen findings with
    /// counterexample witnesses (codes `E005`/`E006`), and an
    /// inconclusive (budget-exhausted) run keeps the screen verdicts.
    pub exhaustive: Option<ModelCheckReport>,
}

impl VerifyReport {
    /// True if the program satisfies the policy.
    pub fn accepted(&self) -> bool {
        (!self.policy.require_termination || self.termination.is_proved())
            && (!self.policy.require_delivery || self.delivery.is_proved())
            && (!self.policy.require_linear_duplication || self.duplication.is_proved())
            && self.budget.is_proved()
            && self.state.is_proved()
    }

    /// All diagnostics from analyses the policy requires.
    pub fn errors(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut push = |required: bool, outcome: &Outcome| {
            if required {
                if let Outcome::Rejected(errs) = outcome {
                    out.extend(errs.iter().cloned());
                }
            }
        };
        push(self.policy.require_termination, &self.termination);
        push(self.policy.require_delivery, &self.delivery);
        push(self.policy.require_linear_duplication, &self.duplication);
        push(true, &self.budget);
        push(true, &self.state);
        // Delivery subsumes termination diagnostics; dedup.
        out.dedup_by(|a, b| a == b);
        out
    }

    /// The warnings among [`VerifyReport::diagnostics`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == crate::diag::Severity::Warning)
    }

    /// Appends the byte-stable JSON form of the report to `out`:
    /// `{"accepted":…,"verdicts":{"termination","delivery",
    /// "duplication","budget","state"},"state_bound":n|null,
    /// "channels":[{"name","overload","steps","sends"}…],
    /// "diagnostics":[…],"exhaustive":null|{…}}`. `src` resolves
    /// diagnostic spans to line/column positions.
    pub fn write_json(&self, src: &str, out: &mut String) {
        use std::fmt::Write as _;
        let v = |o: &Outcome| if o.is_proved() { "proved" } else { "rejected" };
        let _ = write!(out, "{{\"accepted\":{}", self.accepted());
        let _ = write!(
            out,
            ",\"verdicts\":{{\"termination\":\"{}\",\"delivery\":\"{}\",\"duplication\":\"{}\",\"budget\":\"{}\",\"state\":\"{}\"}}",
            v(&self.termination),
            v(&self.delivery),
            v(&self.duplication),
            v(&self.budget),
            v(&self.state)
        );
        match self.state_bound {
            Some(n) => {
                let _ = write!(out, ",\"state_bound\":{n}");
            }
            None => out.push_str(",\"state_bound\":null"),
        }
        out.push_str(",\"channels\":[");
        for (i, c) in self.cost.channels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            crate::diag::push_json_str(out, &c.name);
            let _ = write!(
                out,
                ",\"overload\":{},\"steps\":{},\"sends\":{}}}",
                c.overload, c.bound.steps, c.bound.sends
            );
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            d.write_json(src, out);
        }
        out.push_str("],\"exhaustive\":");
        match &self.exhaustive {
            Some(mc) => mc.write_json(src, out),
            None => out.push_str("null"),
        }
        out.push('}');
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = |o: &Outcome| {
            if o.is_proved() {
                "proved"
            } else {
                "NOT PROVED"
            }
        };
        writeln!(f, "termination:  {}", s(&self.termination))?;
        writeln!(f, "delivery:     {}", s(&self.delivery))?;
        writeln!(f, "duplication:  {}", s(&self.duplication))?;
        if let Some(mc) = &self.exhaustive {
            writeln!(
                f,
                "exhaustive:   termination {}, delivery {} ({} state(s), {} transition(s){})",
                mc.termination.as_str(),
                mc.delivery.as_str(),
                mc.states,
                mc.transitions,
                if mc.exhausted {
                    ", budget exhausted"
                } else {
                    ""
                }
            )?;
        }
        match self.policy.max_steps_per_packet {
            Some(limit) => writeln!(
                f,
                "step budget:  {} (worst case {} of {} allowed)",
                if self.budget.is_proved() {
                    "within"
                } else {
                    "EXCEEDED"
                },
                self.cost.max_steps(),
                limit
            )?,
            None => writeln!(
                f,
                "step budget:  none (worst case {} steps/packet)",
                self.cost.max_steps()
            )?,
        }
        let bound = match self.state_bound {
            Some(n) => format!("<= {n} entries"),
            None => "unbounded".to_string(),
        };
        match self.policy.max_state_entries {
            Some(limit) => writeln!(
                f,
                "state budget: {} ({} of {} allowed)",
                if self.state.is_proved() {
                    "within"
                } else {
                    "EXCEEDED"
                },
                bound,
                limit
            )?,
            None => writeln!(
                f,
                "state bound:  {}{}",
                bound,
                if self.state.is_proved() {
                    ""
                } else {
                    " (REJECTED)"
                }
            )?,
        }
        writeln!(
            f,
            "verdict:      {}",
            if self.accepted() {
                "ACCEPTED"
            } else {
                "REJECTED"
            }
        )?;
        for c in &self.cost.channels {
            writeln!(f, "cost bound:   {}#{}: {}", c.name, c.overload, c.bound)?;
        }
        write!(f, "problem size: {}", self.stats)
    }
}

/// Runs all analyses against `prog` and evaluates them under `policy`.
pub fn verify(prog: &TProgram, policy: Policy) -> VerifyReport {
    let sum = summarize(prog);
    verify_with_summary(prog, &sum, policy)
}

/// Like [`verify`], reusing a precomputed summary.
pub fn verify_with_summary(prog: &TProgram, sum: &ProgramSummary, policy: Policy) -> VerifyReport {
    let send_sites: usize = sum.channels.iter().map(|s| s.sites.len()).sum();
    let restart_sites: usize = sum
        .channels
        .iter()
        .flat_map(|s| s.sites.iter())
        .filter(|site| !site.is_progress())
        .count();
    let stats = AnalysisStats {
        channels: prog.channels.len(),
        send_sites,
        restart_sites,
        dup_iterations: compute_may_copy(prog, sum).iterations,
    };
    let cost = cost_bounds(prog);
    let budget = check_budget(prog, &cost, policy.max_steps_per_packet);
    let state = check_state(prog, sum, policy);
    let state_bound = sum.state.entry_bound();
    let mut termination = check_termination(prog, sum);
    let mut delivery = check_delivery(prog, sum);
    let duplication = check_duplication(prog, sum);
    // Precision tier: the SCC screen above stays the fast path; when the
    // policy asks for it, the exhaustive exploration re-judges screen
    // rejections (destination-value tracking proves some of them) and
    // replaces confirmed violations with minimal counterexample
    // witnesses. By construction the checker refines the screen — a
    // screen accept is never overturned — so only the reject-side
    // verdicts can change.
    let exhaustive = if policy.exhaustive {
        let mc = model_check(prog, sum, policy.exhaustive_budget);
        let fold =
            |verdict: Verdict, screen: &mut Outcome, witnesses: &[&crate::Witness]| match verdict {
                Verdict::Proved => *screen = Outcome::Proved,
                Verdict::Violated => {
                    *screen =
                        Outcome::Rejected(witnesses.iter().map(|w| w.to_diagnostic()).collect())
                }
                Verdict::Inconclusive => {}
            };
        let loops: Vec<&crate::Witness> = mc.loop_witnesses().collect();
        let all: Vec<&crate::Witness> = mc.witnesses.iter().collect();
        fold(mc.termination, &mut termination, &loops);
        fold(mc.delivery, &mut delivery, &all);
        Some(mc)
    } else {
        None
    };
    let mut diagnostics = lint(prog, sum, policy);
    let mut seen: Vec<(u32, u32, String)> = Vec::new();
    // The analyses emit coded diagnostics directly (E001 termination,
    // E002 delivery, E003 duplication, E004 budget); delivery embeds the
    // termination findings, so dedup by position + message.
    let mut push_errs = |required: bool, outcome: &Outcome, out: &mut Vec<Diagnostic>| {
        if !required {
            return;
        }
        if let Outcome::Rejected(errs) = outcome {
            for d in errs {
                let key = (d.span.start, d.span.end, d.message.clone());
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                out.push(d.clone());
            }
        }
    };
    push_errs(policy.require_termination, &termination, &mut diagnostics);
    push_errs(policy.require_delivery, &delivery, &mut diagnostics);
    push_errs(
        policy.require_linear_duplication,
        &duplication,
        &mut diagnostics,
    );
    push_errs(true, &budget, &mut diagnostics);
    push_errs(true, &state, &mut diagnostics);
    diagnostics.sort_by_key(|d| (d.span.start, d.span.end, d.code));
    VerifyReport {
        termination,
        delivery,
        duplication,
        budget,
        state,
        state_bound,
        state_effects: sum.state.clone(),
        cost,
        diagnostics,
        policy,
        stats,
        exhaustive,
    }
}

/// Evaluates state safety: `E009` for tables the analysis cannot bound,
/// `E010` for a composed entry bound over the policy's state budget.
fn check_state(prog: &TProgram, sum: &ProgramSummary, policy: Policy) -> Outcome {
    if !policy.require_bounded_state && policy.max_state_entries.is_none() {
        return Outcome::Proved;
    }
    let st = &sum.state;
    let mut errs = Vec::new();
    for t in st.unbounded_tables() {
        let span = t
            .first_packet_write
            .or(t.first_write)
            .unwrap_or_else(|| prog.channels[0].span);
        let mut d = Diagnostic::error(
            "E009",
            span,
            format!(
                "table `{}` grows without bound: packet-derived key with no eviction on any path",
                t.display
            ),
        )
        .note("every new key inserts an entry that is never removed");
        if t.eviction {
            d = d.note(
                "the program evicts, but the table's capacity could not be resolved to a \
                 constant `mkTable(n)`",
            );
        } else {
            d = d.note(
                "evict with `tblDel`/`tblClear` on some path (and declare a capacity with \
                 `mkTable(n)`), or key the table on a finite domain",
            );
        }
        errs.push(d);
    }
    if let (Some(limit), Some(total)) = (policy.max_state_entries, st.entry_bound()) {
        if total > limit {
            // Point at the biggest contributor.
            let worst = st
                .tables
                .iter()
                .max_by_key(|t| t.bound.entries().unwrap_or(0))
                .expect("a positive bound implies at least one table");
            let span = worst.first_write.unwrap_or_else(|| prog.channels[0].span);
            errs.push(
                Diagnostic::error(
                    "E010",
                    span,
                    format!(
                        "composed state bound of {total} entries exceeds the budget of {limit}"
                    ),
                )
                .note(format!(
                    "largest contributor: table `{}` with up to {} entries",
                    worst.display,
                    worst.bound.entries().unwrap_or(0)
                )),
            );
        }
    }
    if errs.is_empty() {
        Outcome::Proved
    } else {
        Outcome::Rejected(errs)
    }
}

/// Evaluates the per-packet step budget against the static bounds.
fn check_budget(prog: &TProgram, cost: &CostReport, limit: Option<u64>) -> Outcome {
    let Some(limit) = limit else {
        return Outcome::Proved;
    };
    let errs: Vec<Diagnostic> = cost
        .channels
        .iter()
        .zip(&prog.channels)
        .filter(|(c, _)| c.bound.steps > limit)
        .map(|(c, ch)| {
            Diagnostic::error(
                "E004",
                ch.span,
                format!(
                    "channel `{}` may cost {} steps per packet, exceeding the budget of {}",
                    c.name, c.bound.steps, limit
                ),
            )
        })
        .collect();
    if errs.is_empty() {
        Outcome::Proved
    } else {
        Outcome::Rejected(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planp_lang::compile_front;

    fn report(src: &str, policy: Policy) -> VerifyReport {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        verify(&tp, policy)
    }

    const GOOD: &str = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                        (OnRemote(network, p); (ps, ss))";

    const DROPPER: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                           if ps > 0 then (OnRemote(network, p); (ps, ss)) else (ps, ss)";

    #[test]
    fn good_program_accepted_under_strict() {
        let r = report(GOOD, Policy::strict());
        assert!(r.accepted(), "{r}");
        assert!(r.errors().is_empty());
    }

    #[test]
    fn dropper_rejected_under_strict_but_ok_without_delivery() {
        let r = report(DROPPER, Policy::strict());
        assert!(!r.accepted());
        assert!(!r.errors().is_empty());
        let r = report(DROPPER, Policy::no_delivery());
        assert!(r.accepted(), "{r}");
    }

    #[test]
    fn authenticated_accepts_anything() {
        let bouncer = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                       (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))";
        let r = report(bouncer, Policy::authenticated());
        assert!(r.accepted());
        // The analyses still ran and report the problem informationally.
        assert!(!r.termination.is_proved());
        assert!(r.errors().is_empty());
    }

    #[test]
    fn display_summarizes() {
        let r = report(GOOD, Policy::strict());
        let s = r.to_string();
        assert!(s.contains("ACCEPTED"));
        assert!(s.contains("termination:  proved"));
        assert!(s.contains("cost bound:   network#0: <="), "{s}");
        assert!(
            s.contains("problem size: 1 channel(s), 1 send site(s)"),
            "{s}"
        );
    }

    #[test]
    fn step_budget_enforced() {
        let generous = report(GOOD, Policy::strict().with_step_budget(1_000));
        assert!(generous.accepted(), "{generous}");
        let tight = report(GOOD, Policy::strict().with_step_budget(1));
        assert!(!tight.accepted());
        assert!(tight.errors().iter().any(|e| e.message.contains("budget")));
        assert!(tight.diagnostics.iter().any(|d| d.code == "E004"));
        assert!(tight.to_string().contains("step budget:  EXCEEDED"));
        // Even an authenticated download must respect an explicit budget.
        let auth = report(GOOD, Policy::authenticated().with_step_budget(1));
        assert!(!auth.accepted());
    }

    const LEAKY: &str = "channel network(ps : unit, ss : (host, int) hash_table, \
                         p : ip*udp*blob) is\n\
                         (tblSet(ss, ipSrc(#1 p), 1); OnRemote(network, p); (ps, ss))";

    const EVICTING: &str = "channel network(ps : unit, ss : (host, int) hash_table, \
                            p : ip*udp*blob)\n\
                            initstate mkTable(32) is\n\
                            (tblSet(ss, ipSrc(#1 p), 1); tblDel(ss, ipSrc(#1 p));\n\
                             OnRemote(network, p); (ps, ss))";

    #[test]
    fn unbounded_state_rejected_only_under_bounded_state_policy() {
        let lax = report(LEAKY, Policy::no_delivery());
        assert!(lax.accepted(), "{lax}");
        assert_eq!(lax.state_bound, None);
        let r = report(LEAKY, Policy::no_delivery().with_bounded_state());
        assert!(!r.accepted());
        assert!(r.diagnostics.iter().any(|d| d.code == "E009"), "{r}");
        assert!(r.errors().iter().any(|e| e.code == "E009"));
        assert!(r.to_string().contains("state bound:  unbounded (REJECTED)"));
    }

    #[test]
    fn declared_capacity_with_eviction_passes_bounded_state() {
        let r = report(EVICTING, Policy::no_delivery().with_bounded_state());
        assert!(r.accepted(), "{r}");
        assert_eq!(r.state_bound, Some(32));
    }

    #[test]
    fn state_budget_enforced() {
        let generous = report(EVICTING, Policy::no_delivery().with_state_budget(100));
        assert!(generous.accepted(), "{generous}");
        assert!(generous.to_string().contains("state budget: within"));
        let tight = report(EVICTING, Policy::no_delivery().with_state_budget(8));
        assert!(!tight.accepted());
        assert!(
            tight.diagnostics.iter().any(|d| d.code == "E010"),
            "{tight}"
        );
        assert!(tight.to_string().contains("state budget: EXCEEDED"));
        // Even an authenticated download must respect an explicit budget.
        let auth = report(LEAKY, Policy::authenticated().with_state_budget(8));
        assert!(!auth.accepted());
        assert!(auth.diagnostics.iter().any(|d| d.code == "E009"));
    }

    #[test]
    fn report_carries_lint_diagnostics() {
        let src = "val dead : int = 7\n\
                   channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps, ss))";
        let r = report(src, Policy::strict());
        assert!(r.accepted(), "warnings do not reject");
        assert_eq!(r.warnings().count(), 1);
        assert_eq!(r.diagnostics[0].code, "L001");
    }

    #[test]
    fn rejections_become_error_diagnostics() {
        let r = report(DROPPER, Policy::strict());
        assert!(!r.accepted());
        assert!(r.diagnostics.iter().any(|d| d.code == "E002"));
        // The same rejection is not duplicated across codes.
        let msgs: Vec<_> = r
            .diagnostics
            .iter()
            .map(|d| (d.span.start, d.message.clone()))
            .collect();
        let mut deduped = msgs.clone();
        deduped.dedup();
        assert_eq!(msgs, deduped);
    }

    const PINNED_RELAY: &str = "channel relay(ps : unit, ss : unit, p : ip*udp*blob) is\n\
         (OnRemote(relay, (ipDestSet(#1 p, 10.0.3.1), #2 p, #3 p)); (ps, ss))\n\
         channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
         (OnRemote(relay, (ipDestSet(#1 p, 10.0.3.1), #2 p, #3 p)); (ps, ss))";

    const PING_PONG: &str = "channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
         (OnRemote(b, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))\n\
         channel b(ps : unit, ss : unit, p : ip*udp*blob) is\n\
         (OnRemote(a, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))";

    #[test]
    fn exhaustive_tier_overturns_screen_rejection() {
        let screened = report(PINNED_RELAY, Policy::strict());
        assert!(!screened.accepted(), "screen alone rejects the re-pin");
        let r = report(PINNED_RELAY, Policy::strict().with_exhaustive_check());
        assert!(r.accepted(), "{r}");
        assert!(r.errors().is_empty());
        let mc = r.exhaustive.as_ref().unwrap();
        assert!(mc.termination.is_proved());
        assert!(r.to_string().contains("exhaustive:   termination proved"));
    }

    #[test]
    fn exhaustive_tier_attaches_witness_diagnostics() {
        let r = report(PING_PONG, Policy::strict().with_exhaustive_check());
        assert!(!r.accepted());
        let errs = r.errors();
        assert!(errs.iter().any(|e| e.code == "E005"), "{errs:?}");
        assert!(errs
            .iter()
            .any(|e| e.notes.iter().any(|n| n.starts_with("hop 1:"))));
        assert!(r.diagnostics.iter().any(|d| d.code == "E005"));
    }

    #[test]
    fn exhausted_budget_keeps_screen_verdicts() {
        let r = report(PINNED_RELAY, Policy::strict().with_exhaustive_budget(1));
        assert!(!r.accepted(), "fallback to the screen rejection");
        assert!(r.exhaustive.as_ref().unwrap().exhausted);
        assert!(r.errors().iter().any(|e| e.code == "E001"));
    }

    #[test]
    fn report_json_carries_verdicts_and_exhaustive() {
        let r = report(GOOD, Policy::strict());
        let mut out = String::new();
        r.write_json(GOOD, &mut out);
        assert!(
            out.contains("\"verdicts\":{\"termination\":\"proved\",\"delivery\":\"proved\",\"duplication\":\"proved\",\"budget\":\"proved\",\"state\":\"proved\"}"),
            "{out}"
        );
        assert!(out.contains("\"state_bound\":0"), "{out}");
        assert!(out.ends_with("\"exhaustive\":null}"), "{out}");
        let r = report(GOOD, Policy::strict().with_exhaustive_check());
        let mut out = String::new();
        r.write_json(GOOD, &mut out);
        assert!(
            out.contains("\"exhaustive\":{\"termination\":\"proved\""),
            "{out}"
        );
    }

    #[test]
    fn analysis_stats_display() {
        let r = report(GOOD, Policy::strict());
        let s = r.stats.to_string();
        assert!(s.contains("1 channel(s)"), "{s}");
        assert!(s.contains("fix-point iteration(s)"), "{s}");
    }
}
