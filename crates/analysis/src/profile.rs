//! Static per-**site** cost bounds and superinstruction candidates.
//!
//! The [cost](crate::cost) analysis bounds a whole channel invocation;
//! this module refines that to individual expression *sites* so the
//! profiler (`planp-telemetry::profile`) can join what the engines
//! observe against what the analysis promised. A site id is the node's
//! source span start offset — the same identity both engines report
//! through `NetEnv::charge_site`, stable across engines, runs, and
//! recompiles of the same source.
//!
//! For each channel overload, [`site_bounds`] walks the body with a
//! call-path **multiplicity**: every node contributes
//! `multiplicity × STEPS_PER_NODE` at its site, and a `CallFun`
//! recurses into the callee body with its own multiplicity (call
//! graphs are acyclic, so the walk terminates). The per-site bound is
//! sound per dispatch for both engines: branches only *skip* nodes
//! (an `if` charges one arm, the bound counts both; short-circuit
//! operators may skip the right operand), and the JIT's folded
//! constant templates charge exactly the interpreter's nodes. So for
//! every site, `observed_steps ≤ bound_steps × dispatches` — the
//! utilization-heatmap invariant the profiler enforces.
//!
//! [`superinstruction_candidates`] additionally detects the adjacent
//! hot-site shapes ROADMAP item 2 wants fused into superinstructions:
//!
//! * `hdr_compare_branch` — an `if` whose condition loads a packet
//!   header field and compares it (the classic dispatch shape:
//!   `if tcpDst(h) = 80 then … else …`);
//! * `table_forward` — a table lookup (`tblGet`/`tblHas`) feeding a
//!   send (`OnRemote`/`OnNeighbor`) through a `let` or an `if`.
//!
//! Candidates are static; the profiler ranks them by observed steps.

use planp_lang::span::line_col;
use planp_lang::tast::{TExpr, TExprKind, TProgram};
use planp_vm::cost::STEPS_PER_NODE;
use std::collections::BTreeMap;

/// One expression site of a channel body (or of a function body
/// reachable from it), with its static per-dispatch step bound.
#[derive(Debug, Clone)]
pub struct SiteInfo {
    /// Site id: the node's span start offset.
    pub site: u32,
    /// Human label, `line:col:kind` (e.g. `3:12:prim.tcpDst`) — no
    /// spaces or semicolons, so it can serve as a flamegraph frame.
    pub label: String,
    /// Upper bound on steps this site charges per dispatch.
    pub bound_steps: u64,
}

/// The sites of one channel overload.
#[derive(Debug, Clone)]
pub struct ChannelSites {
    /// Channel name.
    pub name: String,
    /// Overload index within the name group.
    pub overload: u32,
    /// All sites reachable from the body, ordered by site id.
    pub sites: Vec<SiteInfo>,
}

impl ChannelSites {
    /// Sum of the per-site bounds. This is ≥ the whole-body
    /// [`crate::CostBound::steps`] (which maxes over `if` arms where
    /// this sums them) — both are sound, this one site-decomposable.
    pub fn total_bound(&self) -> u64 {
        self.sites.iter().map(|s| s.bound_steps).sum()
    }
}

/// Per-site bounds for a whole program.
#[derive(Debug, Clone, Default)]
pub struct SiteReport {
    /// Per-channel site tables, parallel to `TProgram::channels`.
    pub channels: Vec<ChannelSites>,
}

/// Computes per-site step bounds for every channel overload of `prog`.
/// `src` is the program source, used only for `line:col` labels.
pub fn site_bounds(prog: &TProgram, src: &str) -> SiteReport {
    let channels = prog
        .channels
        .iter()
        .map(|ch| {
            let mut acc: BTreeMap<u32, (u64, String)> = BTreeMap::new();
            walk_sites(&ch.body, prog, src, 1, &mut acc);
            ChannelSites {
                name: ch.name.clone(),
                overload: ch.overload,
                sites: acc
                    .into_iter()
                    .map(|(site, (bound_steps, label))| SiteInfo {
                        site,
                        label,
                        bound_steps,
                    })
                    .collect(),
            }
        })
        .collect();
    SiteReport { channels }
}

/// Adds `mult` invocations of every node under `e` to `acc`, keyed by
/// site. Distinct nodes desugared onto the same span merge by summing
/// (still sound: the merged bound covers the merged observation).
fn walk_sites(
    e: &TExpr,
    prog: &TProgram,
    src: &str,
    mult: u64,
    acc: &mut BTreeMap<u32, (u64, String)>,
) {
    let site = e.span.start;
    let entry = acc.entry(site).or_insert_with(|| {
        (
            0,
            format!("{}:{}", line_col(src, site), kind_label(e, prog)),
        )
    });
    entry.0 = entry.0.saturating_add(mult.saturating_mul(STEPS_PER_NODE));
    match &e.kind {
        TExprKind::CallFun { index, args } => {
            for a in args {
                walk_sites(a, prog, src, mult, acc);
            }
            if let Some(f) = prog.funs.get(*index as usize) {
                walk_sites(&f.body, prog, src, mult, acc);
            }
        }
        _ => {
            let mut children = Vec::new();
            collect_children(e, &mut children);
            for c in children {
                walk_sites(c, prog, src, mult, acc);
            }
        }
    }
}

/// The direct subexpressions of `e`, in evaluation order.
fn collect_children<'a>(e: &'a TExpr, out: &mut Vec<&'a TExpr>) {
    use TExprKind::*;
    match &e.kind {
        Int(_)
        | Bool(_)
        | Str(_)
        | Char(_)
        | Unit
        | Host(_)
        | Local { .. }
        | Global { .. }
        | Raise(_) => {}
        Tuple(items) | Seq(items) | List(items) => out.extend(items.iter()),
        Proj(_, inner) | Unop(_, inner) => out.push(inner),
        CallFun { args, .. } | CallPrim { args, .. } => out.extend(args.iter()),
        If(c, t, f) => out.extend([c.as_ref(), t.as_ref(), f.as_ref()]),
        Let { init, body, .. } => out.extend([init.as_ref(), body.as_ref()]),
        Binop(_, a, b) => out.extend([a.as_ref(), b.as_ref()]),
        Handle(body, _, handler) => out.extend([body.as_ref(), handler.as_ref()]),
        OnRemote { pkt, .. } => out.push(pkt),
        OnNeighbor { host, pkt, .. } => out.extend([host.as_ref(), pkt.as_ref()]),
    }
}

/// A short node-kind tag for site labels (no spaces or semicolons).
fn kind_label(e: &TExpr, prog: &TProgram) -> String {
    use TExprKind::*;
    match &e.kind {
        Int(_) => "int".into(),
        Bool(_) => "bool".into(),
        Str(_) => "str".into(),
        Char(_) => "char".into(),
        Unit => "unit".into(),
        Host(_) => "host".into(),
        Local { name, .. } => format!("local.{name}"),
        Global { .. } => "global".into(),
        Tuple(_) => "tuple".into(),
        Proj(i, _) => format!("proj.{i}"),
        CallFun { index, args: _ } => match prog.funs.get(*index as usize) {
            Some(f) => format!("call.{}", f.name),
            None => "call".into(),
        },
        CallPrim { prim, .. } => format!("prim.{}", planp_lang::prims::table().sig(*prim).name),
        If(..) => "if".into(),
        Let { name, .. } => format!("let.{name}"),
        Seq(_) => "seq".into(),
        Binop(op, ..) => format!("binop.{op:?}").to_lowercase(),
        Unop(op, _) => format!("unop.{op:?}").to_lowercase(),
        Raise(_) => "raise".into(),
        Handle(..) => "handle".into(),
        List(_) => "list".into(),
        OnRemote { chan, .. } => format!("send.{chan}"),
        OnNeighbor { chan, .. } => format!("sendn.{chan}"),
    }
}

/// An adjacent hot-site sequence worth fusing into a superinstruction
/// in a future compilation tier (ROADMAP item 2).
#[derive(Debug, Clone)]
pub struct SuperinstructionCandidate {
    /// Pattern tag: `hdr_compare_branch` or `table_forward`.
    pub pattern: &'static str,
    /// Channel the sequence executes under.
    pub chan: String,
    /// Overload index of that channel.
    pub overload: u32,
    /// Participating site ids, ascending.
    pub sites: Vec<u32>,
    /// `line:col` of the anchoring node.
    pub label: String,
}

/// Header-field read primitives (the "load" of the dispatch shape).
fn is_header_read(name: &str) -> bool {
    matches!(
        name,
        "ipSrc"
            | "ipDst"
            | "ipTtl"
            | "ipProto"
            | "tcpSrc"
            | "tcpDst"
            | "tcpSeq"
            | "tcpAck"
            | "tcpIsSyn"
            | "tcpIsFin"
            | "tcpIsAck"
            | "tcpIsRst"
            | "udpSrc"
            | "udpDst"
            | "blobLen"
    )
}

/// True if any node under `e` satisfies `pred`; when it does, the
/// first matching site (pre-order) is appended to `sites`.
fn find_site(e: &TExpr, pred: &dyn Fn(&TExprKind) -> bool) -> Option<u32> {
    if pred(&e.kind) {
        return Some(e.span.start);
    }
    let mut children = Vec::new();
    collect_children(e, &mut children);
    children.iter().find_map(|c| find_site(c, pred))
}

fn is_table_read(k: &TExprKind) -> bool {
    matches!(k, TExprKind::CallPrim { prim, .. }
        if matches!(planp_lang::prims::table().sig(*prim).name, "tblGet" | "tblHas"))
}

fn is_send(k: &TExprKind) -> bool {
    matches!(k, TExprKind::OnRemote { .. } | TExprKind::OnNeighbor { .. })
}

/// Detects superinstruction candidates in every channel overload of
/// `prog` (recursing into called functions), in source order.
pub fn superinstruction_candidates(prog: &TProgram, src: &str) -> Vec<SuperinstructionCandidate> {
    let mut out = Vec::new();
    for ch in &prog.channels {
        scan(&ch.body, prog, src, &ch.name, ch.overload, &mut out);
    }
    out
}

fn scan(
    e: &TExpr,
    prog: &TProgram,
    src: &str,
    chan: &str,
    overload: u32,
    out: &mut Vec<SuperinstructionCandidate>,
) {
    let mut push = |pattern: &'static str, anchor: u32, mut sites: Vec<u32>| {
        sites.sort_unstable();
        sites.dedup();
        out.push(SuperinstructionCandidate {
            pattern,
            chan: chan.to_string(),
            overload,
            sites,
            label: line_col(src, anchor).to_string(),
        });
    };
    match &e.kind {
        // `if <hdr-read … compare …> then … else …` — the dispatch shape.
        TExprKind::If(c, t, f) => {
            let hdr = find_site(c, &|k| {
                matches!(k, TExprKind::CallPrim { prim, .. }
                    if is_header_read(planp_lang::prims::table().sig(*prim).name))
            });
            let cmp = find_site(c, &|k| {
                use planp_lang::ast::BinOp::*;
                matches!(k, TExprKind::Binop(op, ..) if matches!(op, Eq | Ne | Lt | Le | Gt | Ge))
            });
            if let Some(h) = hdr {
                if let Some(cm) = cmp {
                    push(
                        "hdr_compare_branch",
                        e.span.start,
                        vec![e.span.start, h, cm],
                    );
                }
            }
            // `if <table-read …> then <send …>` — lookup-then-forward.
            if let Some(tr) = find_site(c, &is_table_read) {
                if let Some(s) = find_site(t, &is_send).or_else(|| find_site(f, &is_send)) {
                    push("table_forward", e.span.start, vec![e.span.start, tr, s]);
                }
            }
        }
        // `let val x = tblGet(…) … in … OnRemote(…) …` — lookup feeding
        // a forward through a binding.
        TExprKind::Let { init, body, .. } => {
            if let Some(tr) = find_site(init, &is_table_read) {
                if let Some(s) = find_site(body, &is_send) {
                    push("table_forward", e.span.start, vec![e.span.start, tr, s]);
                }
            }
        }
        TExprKind::CallFun { index, .. } => {
            if let Some(f) = prog.funs.get(*index as usize) {
                scan(&f.body, prog, src, chan, overload, out);
            }
        }
        _ => {}
    }
    let mut children = Vec::new();
    collect_children(e, &mut children);
    for c in children {
        scan(c, prog, src, chan, overload, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planp_lang::compile_front;
    use planp_vm::env::MockEnv;
    use planp_vm::interp::Interp;
    use planp_vm::pkthdr::{addr, IpHdr, UdpHdr};
    use planp_vm::value::Value;

    fn setup(src: &str) -> (TProgram, SiteReport) {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let report = site_bounds(&tp, src);
        (tp, report)
    }

    fn udp_packet() -> Value {
        Value::tuple(vec![
            Value::Ip(IpHdr::new(
                addr(10, 0, 0, 2),
                addr(10, 0, 1, 1),
                IpHdr::PROTO_UDP,
            )),
            Value::Udp(UdpHdr::new(1000, 2000)),
            Value::Blob(bytes::Bytes::from_static(b"abcd")),
        ])
    }

    #[test]
    fn observed_per_site_within_per_site_bound() {
        let src = "fun dbl(x : int) : int = x * 2\n\
                   channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (if ps > 0 then (dbl(ps), ss) else (dbl(dbl(ps)), ss))";
        let (tp, report) = setup(src);
        let bounds: BTreeMap<u32, u64> = report.channels[0]
            .sites
            .iter()
            .map(|s| (s.site, s.bound_steps))
            .collect();
        let interp = Interp::new(&tp);
        for ps in [0, 5] {
            let mut env = MockEnv::new(addr(10, 0, 0, 1));
            interp
                .run_channel(0, &[], Value::Int(ps), Value::Unit, udp_packet(), &mut env)
                .unwrap();
            for (site, n) in env.site_profile() {
                let b = bounds
                    .get(&site)
                    .unwrap_or_else(|| panic!("site {site} not in static table"));
                assert!(n <= *b, "site {site}: observed {n} > bound {b} (ps={ps})");
            }
        }
    }

    #[test]
    fn call_multiplicity_scales_function_body_bounds() {
        // `dbl` is called twice, so its body sites must carry exactly
        // twice the single-call bound.
        let once = "fun dbl(x : int) : int = x * 2\n\
                    channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                    ((dbl(ps), ss))";
        let twice = "fun dbl(x : int) : int = x * 2\n\
                     channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                     ((dbl(ps) + dbl(ps), ss))";
        let (tp1, r1) = setup(once);
        let (tp2, r2) = setup(twice);
        let site1 = tp1.funs[0].body.span.start;
        let site2 = tp2.funs[0].body.span.start;
        let bound = |r: &SiteReport, site: u32| {
            r.channels[0]
                .sites
                .iter()
                .find(|s| s.site == site)
                .expect("function body site present")
                .bound_steps
        };
        assert_eq!(bound(&r2, site2), 2 * bound(&r1, site1));
    }

    #[test]
    fn labels_are_flame_safe_and_positioned() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (if udpDst(#2 p) = 80 then (ps + 1, ss) else (ps, ss))";
        let (_, report) = setup(src);
        let sites = &report.channels[0].sites;
        assert!(!sites.is_empty());
        for s in sites {
            assert!(
                !s.label.contains(' ') && !s.label.contains(';'),
                "label {:?} not flame-safe",
                s.label
            );
        }
        // Nodes desugared or parsed onto the same start offset merge
        // (the condition's `=` starts at the `udpDst` token); the first
        // pre-order visitor names the merged site.
        assert!(sites.iter().any(|s| s.label.ends_with("binop.eq")));
        assert!(sites.iter().any(|s| s.label.ends_with(":if")));
    }

    #[test]
    fn detects_hdr_compare_branch_and_table_forward() {
        let src = "channel network(ps : int, ss : (host, host) hash_table, p : ip*udp*blob) is\n\
                   (if udpDst(#2 p) = 80 then\n\
                      let val nh : host = tblGet(ss, ipDst(#1 p)) handle NotFound => ipDst(#1 p) in\n\
                        (OnRemote(network, p); (ps, ss))\n\
                      end\n\
                    else (ps, ss))";
        let tp = compile_front(src).unwrap();
        let cands = superinstruction_candidates(&tp, src);
        assert!(cands.iter().any(|c| c.pattern == "hdr_compare_branch"));
        assert!(cands.iter().any(|c| c.pattern == "table_forward"));
        for c in &cands {
            assert_eq!(c.chan, "network");
            assert!(c.sites.len() >= 2);
            assert!(c.sites.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
