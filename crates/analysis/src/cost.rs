//! Static per-packet cost bounds.
//!
//! The paper's resource argument (section 2.1) is qualitative: no
//! recursion and no unbounded loops, therefore bounded per-packet work.
//! Local termination actually buys more than that — it makes the
//! worst-case cost *computable* by structural induction over the typed
//! AST. This module computes, for every channel overload, an upper bound
//! on
//!
//! * the VM **steps** one packet can cost (the same step-charging model
//!   the engines report through `NetEnv::charge_steps`; see
//!   [`planp_vm::cost`]), and
//! * the number of **send sites** (`OnRemote`/`OnNeighbor`) one packet
//!   can execute.
//!
//! The recurrence charges [`STEPS_PER_NODE`] for every node on a path,
//! sums sequential composition (`let`, tuples, arguments, sequencing),
//! takes the maximum over `if` arms, and — because a `handle` body may
//! run to its deepest `raise` before the handler runs — sums body and
//! handler for `handle`. Function-call bounds are precomputed in
//! declaration order, which terminates because bodies may call only
//! earlier functions.
//!
//! The bound is sound for both engines: the interpreter charges exactly
//! one step per node on the executed path (branches and short-circuit
//! operators only skip nodes), and the JIT charges exactly the same —
//! its folded constant templates charge every node of the folded
//! subtree, so the two engines' step counts are byte-identical. The
//! runtime layer cross-checks this claim on every dispatch (the
//! `cost_bound_exceeded` counter), and the soundness test suite asserts
//! the counter stays zero across all traced scenarios.

use planp_lang::tast::{TExpr, TExprKind, TProgram};
use planp_vm::cost::STEPS_PER_NODE;
use std::fmt;

/// Worst-case per-packet cost of one channel or function body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostBound {
    /// Upper bound on VM steps charged per invocation.
    pub steps: u64,
    /// Upper bound on executed send sites (`OnRemote` + `OnNeighbor`)
    /// per invocation.
    pub sends: u64,
}

impl CostBound {
    /// Sequential composition: both costs accrue.
    fn then(self, other: CostBound) -> CostBound {
        CostBound {
            steps: self.steps.saturating_add(other.steps),
            sends: self.sends.saturating_add(other.sends),
        }
    }

    /// Branch merge: component-wise maximum (a sound upper bound even
    /// when the step-heaviest and send-heaviest paths differ).
    fn or(self, other: CostBound) -> CostBound {
        CostBound {
            steps: self.steps.max(other.steps),
            sends: self.sends.max(other.sends),
        }
    }

    /// The cost of evaluating one AST node, by itself.
    fn node() -> CostBound {
        CostBound {
            steps: STEPS_PER_NODE,
            sends: 0,
        }
    }
}

impl fmt::Display for CostBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<= {} steps, <= {} send(s)", self.steps, self.sends)
    }
}

/// The bound of one channel overload.
#[derive(Debug, Clone)]
pub struct ChannelCost {
    /// Channel name.
    pub name: String,
    /// Overload index within the name group.
    pub overload: u32,
    /// Worst-case per-packet cost of the body.
    pub bound: CostBound,
}

/// Cost bounds for a whole program.
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    /// Per-function bounds, parallel to `TProgram::funs`.
    pub funs: Vec<CostBound>,
    /// Per-channel bounds, parallel to `TProgram::channels`.
    pub channels: Vec<ChannelCost>,
}

impl CostReport {
    /// The worst per-packet step bound over all channels (0 when the
    /// program has no channels).
    pub fn max_steps(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.bound.steps)
            .max()
            .unwrap_or(0)
    }

    /// The bound of the channel at `index` in `TProgram::channels`.
    pub fn bound_for(&self, index: usize) -> CostBound {
        self.channels
            .get(index)
            .map(|c| c.bound)
            .unwrap_or_default()
    }
}

/// Computes worst-case per-packet cost bounds for every function and
/// channel of `prog`.
pub fn cost_bounds(prog: &TProgram) -> CostReport {
    let mut funs: Vec<CostBound> = Vec::with_capacity(prog.funs.len());
    for f in &prog.funs {
        let b = bound_expr(&f.body, &funs);
        funs.push(b);
    }
    let channels = prog
        .channels
        .iter()
        .map(|ch| ChannelCost {
            name: ch.name.clone(),
            overload: ch.overload,
            bound: bound_expr(&ch.body, &funs),
        })
        .collect();
    CostReport { funs, channels }
}

/// Structural worst-case bound of one expression; `funs` holds the
/// precomputed bounds of all earlier function declarations.
fn bound_expr(e: &TExpr, funs: &[CostBound]) -> CostBound {
    use TExprKind::*;
    let node = CostBound::node();
    match &e.kind {
        Int(_)
        | Bool(_)
        | Str(_)
        | Char(_)
        | Unit
        | Host(_)
        | Local { .. }
        | Global { .. }
        | Raise(_) => node,
        Tuple(items) | Seq(items) | List(items) => items
            .iter()
            .fold(node, |acc, item| acc.then(bound_expr(item, funs))),
        Proj(_, inner) | Unop(_, inner) => node.then(bound_expr(inner, funs)),
        CallFun { index, args } => args
            .iter()
            .fold(node, |acc, a| acc.then(bound_expr(a, funs)))
            .then(funs.get(*index as usize).copied().unwrap_or_default()),
        CallPrim { args, .. } => args
            .iter()
            .fold(node, |acc, a| acc.then(bound_expr(a, funs))),
        If(c, t, f) => node
            .then(bound_expr(c, funs))
            .then(bound_expr(t, funs).or(bound_expr(f, funs))),
        Let { init, body, .. } => node
            .then(bound_expr(init, funs))
            .then(bound_expr(body, funs)),
        // `andalso`/`orelse` may skip the right operand; the sum is a
        // sound upper bound for the worst case.
        Binop(_, a, b) => node.then(bound_expr(a, funs)).then(bound_expr(b, funs)),
        // The body may run all the way to its deepest raise, and then
        // the handler runs too.
        Handle(body, _, handler) => node
            .then(bound_expr(body, funs))
            .then(bound_expr(handler, funs)),
        OnRemote { pkt, .. } => {
            let mut b = node.then(bound_expr(pkt, funs));
            b.sends = b.sends.saturating_add(1);
            b
        }
        OnNeighbor { host, pkt, .. } => {
            let mut b = node
                .then(bound_expr(host, funs))
                .then(bound_expr(pkt, funs));
            b.sends = b.sends.saturating_add(1);
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planp_lang::compile_front;
    use planp_vm::env::MockEnv;
    use planp_vm::interp::Interp;
    use planp_vm::pkthdr::{addr, IpHdr, UdpHdr};
    use planp_vm::value::Value;

    fn bounds(src: &str) -> (TProgram, CostReport) {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let report = cost_bounds(&tp);
        (tp, report)
    }

    fn udp_packet() -> Value {
        Value::tuple(vec![
            Value::Ip(IpHdr::new(
                addr(10, 0, 0, 2),
                addr(10, 0, 1, 1),
                IpHdr::PROTO_UDP,
            )),
            Value::Udp(UdpHdr::new(1000, 2000)),
            Value::Blob(bytes::Bytes::from_static(b"abcd")),
        ])
    }

    /// Runs channel 0 under the interpreter and returns observed
    /// (steps, sends).
    fn observe(tp: &TProgram, ps: Value) -> (u64, u64) {
        let interp = Interp::new(tp);
        let mut env = MockEnv::new(addr(10, 0, 0, 1));
        let globals = interp.eval_globals(&mut env).unwrap();
        env.steps = 0;
        interp
            .run_channel(0, &globals, ps, Value::Unit, udp_packet(), &mut env)
            .unwrap();
        let sends = env
            .effects
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    planp_vm::env::Effect::Remote { .. } | planp_vm::env::Effect::Neighbor { .. }
                )
            })
            .count() as u64;
        (env.steps, sends)
    }

    #[test]
    fn straight_line_bound_is_exact() {
        // No branches: the interpreter visits every node, so the bound
        // is tight.
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps + 1, ss))";
        let (tp, report) = bounds(src);
        let b = report.bound_for(0);
        let (steps, sends) = observe(&tp, Value::Int(0));
        assert_eq!(b.steps, steps, "structural count equals executed nodes");
        assert_eq!(b.sends, 1);
        assert_eq!(sends, 1);
    }

    #[test]
    fn branch_takes_worst_arm() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   if ps > 0 then (OnRemote(network, p); (ps, ss))\n\
                   else (OnRemote(network, p); OnRemote(network, p); (ps, ss))";
        let (tp, report) = bounds(src);
        let b = report.bound_for(0);
        assert_eq!(b.sends, 2, "worst arm executes two sends");
        for ps in [Value::Int(0), Value::Int(1)] {
            let (steps, sends) = observe(&tp, ps);
            assert!(steps <= b.steps, "observed {steps} > bound {}", b.steps);
            assert!(sends <= b.sends);
        }
    }

    #[test]
    fn handle_sums_body_and_handler() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   ((ps div 0, ss) handle Div => (0, ss))";
        let (tp, report) = bounds(src);
        let b = report.bound_for(0);
        let (steps, _) = observe(&tp, Value::Int(1));
        assert!(steps <= b.steps, "raise+handle path within bound");
    }

    #[test]
    fn function_calls_add_callee_bound() {
        let src = "fun double(x : int) : int = x + x\n\
                   channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (double(double(ps)), ss))";
        let (tp, report) = bounds(src);
        // Two calls, each costing the callee bound on top of the call
        // node and argument.
        assert!(report.funs[0].steps > 0);
        let (steps, _) = observe(&tp, Value::Int(3));
        assert_eq!(
            report.bound_for(0).steps,
            steps,
            "straight-line with calls is exact"
        );
    }

    #[test]
    fn report_max_and_names() {
        let src = "channel relay(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)\n\
                   channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(relay, p); (ps, ss))";
        let (_, report) = bounds(src);
        assert_eq!(report.channels.len(), 2);
        assert_eq!(report.channels[0].name, "relay");
        assert_eq!(report.channels[1].name, "network");
        assert_eq!(
            report.max_steps(),
            report.bound_for(1).steps,
            "network body is the heavier channel"
        );
        assert_eq!(report.bound_for(99), CostBound::default());
    }
}
