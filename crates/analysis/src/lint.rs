//! Lint passes: advisory findings that do not affect acceptance.
//!
//! Run by [`crate::verify`] on every download alongside the safety
//! analyses, so a `VerifyReport` always carries them. All findings are
//! [`Severity::Warning`](crate::diag::Severity); the `planp_lint` and
//! `planpc --lint` drivers can escalate them with `--deny-warnings`.
//!
//! | code | finding |
//! |------|---------|
//! | L001 | unused `val` binding |
//! | L002 | unused `fun` |
//! | L003 | unused function parameter |
//! | L004 | constant `if` condition (unreachable branch) |
//! | L005 | exceptions may escape a channel (only when the policy does not require delivery) |
//! | L006 | channel never targeted by any send |
//! | L007 | binding shadows an enclosing binding |
//! | S001–S004 | state lints — see [`crate::state::state_lints`] |
//!
//! Channel parameters are exempt from L003: `ps`/`ss`/`p` are fixed by
//! the channel signature, and ignoring e.g. the channel state is
//! idiomatic (`ss : unit`). Names starting with `_` are exempt from the
//! unused lints.

use crate::diag::Diagnostic;
use crate::summary::ProgramSummary;
use crate::verifier::Policy;
use planp_lang::tast::{TExpr, TExprKind, TProgram};
use std::collections::BTreeSet;

/// Runs every lint pass over `prog` and returns the findings sorted by
/// source position (then code), for deterministic output.
pub fn lint(prog: &TProgram, sum: &ProgramSummary, policy: Policy) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    unused_globals_and_funs(prog, &mut out);
    unused_params(prog, &mut out);
    constant_conditions(prog, &mut out);
    unhandled_exceptions(prog, sum, policy, &mut out);
    unreachable_channels(prog, sum, &mut out);
    shadowed_bindings(prog, &mut out);
    out.extend(crate::state::state_lints(prog, sum));
    out.sort_by_key(|d| (d.span.start, d.span.end, d.code));
    out
}

/// Visits every expression of the program, in declaration order.
fn walk_all<'p>(prog: &'p TProgram, f: &mut impl FnMut(&'p TExpr)) {
    for g in &prog.globals {
        g.init.walk(f);
    }
    for fun in &prog.funs {
        fun.body.walk(f);
    }
    if let Some(e) = &prog.proto_init {
        e.walk(f);
    }
    for ch in &prog.channels {
        if let Some(e) = &ch.initstate {
            e.walk(f);
        }
        ch.body.walk(f);
    }
}

fn exempt(name: &str) -> bool {
    name.starts_with('_')
}

/// L001 / L002: `val` globals and `fun`s never referenced anywhere.
fn unused_globals_and_funs(prog: &TProgram, out: &mut Vec<Diagnostic>) {
    let mut used_globals: BTreeSet<u32> = BTreeSet::new();
    let mut used_funs: BTreeSet<u32> = BTreeSet::new();
    walk_all(prog, &mut |e| match &e.kind {
        TExprKind::Global { index, .. } => {
            used_globals.insert(*index);
        }
        TExprKind::CallFun { index, .. } => {
            used_funs.insert(*index);
        }
        _ => {}
    });
    for (i, g) in prog.globals.iter().enumerate() {
        if !used_globals.contains(&(i as u32)) && !exempt(&g.name) {
            out.push(
                Diagnostic::warning("L001", g.span, format!("`val {}` is never used", g.name))
                    .note("remove the declaration or reference it"),
            );
        }
    }
    for (i, f) in prog.funs.iter().enumerate() {
        if !used_funs.contains(&(i as u32)) && !exempt(&f.name) {
            out.push(
                Diagnostic::warning("L002", f.span, format!("`fun {}` is never called", f.name))
                    .note("remove the declaration or call it"),
            );
        }
    }
}

/// L003: function parameters never read by the body. Parameters occupy
/// local slots `0..arity` exclusively, so slot comparison is exact.
fn unused_params(prog: &TProgram, out: &mut Vec<Diagnostic>) {
    for f in &prog.funs {
        let arity = f.params.len() as u32;
        let mut read: BTreeSet<u32> = BTreeSet::new();
        f.body.walk(&mut |e| {
            if let TExprKind::Local { slot, .. } = &e.kind {
                if *slot < arity {
                    read.insert(*slot);
                }
            }
        });
        for (slot, (name, _)) in f.params.iter().enumerate() {
            if !read.contains(&(slot as u32)) && !exempt(name) {
                out.push(
                    Diagnostic::warning(
                        "L003",
                        f.span,
                        format!("parameter `{}` of `fun {}` is never used", name, f.name),
                    )
                    .note("prefix it with `_` to silence this warning"),
                );
            }
        }
    }
}

/// L004: `if` conditions that are boolean literals — one branch can
/// never execute.
fn constant_conditions(prog: &TProgram, out: &mut Vec<Diagnostic>) {
    walk_all(prog, &mut |e| {
        if let TExprKind::If(c, _, _) = &e.kind {
            if let TExprKind::Bool(b) = &c.kind {
                let dead = if *b { "else" } else { "then" };
                out.push(
                    Diagnostic::warning("L004", c.span, format!("condition is always {b}"))
                        .note(format!("the {dead} branch is unreachable")),
                );
            }
        }
    });
}

/// L005: exceptions that may escape a channel body. Only reported when
/// the policy does not require delivery — under `require_delivery` the
/// delivery analysis already rejects escaping exceptions as an error —
/// because an escaping exception silently drops the packet (the runtime
/// fails open).
fn unhandled_exceptions(
    prog: &TProgram,
    sum: &ProgramSummary,
    policy: Policy,
    out: &mut Vec<Diagnostic>,
) {
    if policy.require_delivery {
        return;
    }
    for (ch, s) in prog.channels.iter().zip(&sum.channels) {
        if s.raises.is_empty() {
            continue;
        }
        let names: Vec<&str> = s
            .raises
            .iter()
            .filter_map(|id| prog.exns.get(*id as usize).map(String::as_str))
            .collect();
        out.push(
            Diagnostic::warning(
                "L005",
                ch.span,
                format!(
                    "channel `{}` may raise unhandled exception(s): {}",
                    ch.name,
                    names.join(", ")
                ),
            )
            .note("an escaping exception aborts the run; the packet falls back to standard IP processing"),
        );
    }
}

/// L006: user-defined channels (any name but `network`) that no send in
/// the program targets — they can never receive a packet, because only
/// `network` overloads match untagged traffic. The `timer` channel is
/// exempt: the runtime dispatches synthetic self-addressed packets to
/// it when a `setTimer` deadline fires, so it is reachable without any
/// send targeting it.
fn unreachable_channels(prog: &TProgram, sum: &ProgramSummary, out: &mut Vec<Diagnostic>) {
    let mut targeted: BTreeSet<usize> = BTreeSet::new();
    for s in sum.channels.iter().chain(sum.funs.iter()) {
        for site in &s.sites {
            targeted.insert(site.target);
        }
    }
    for (i, ch) in prog.channels.iter().enumerate() {
        if ch.name != "network" && ch.name != "timer" && !targeted.contains(&i) {
            out.push(
                Diagnostic::warning(
                    "L006",
                    ch.span,
                    format!("channel `{}` is never targeted by any send", ch.name),
                )
                .note(
                    "only `network` overloads match untagged traffic; this channel is unreachable",
                ),
            );
        }
    }
}

/// L007: `let` bindings that shadow an enclosing binding (a parameter,
/// an outer `let`, or a top-level `val`/`fun` name).
fn shadowed_bindings(prog: &TProgram, out: &mut Vec<Diagnostic>) {
    let top: Vec<&str> = prog
        .globals
        .iter()
        .map(|g| g.name.as_str())
        .chain(prog.funs.iter().map(|f| f.name.as_str()))
        .collect();
    for f in &prog.funs {
        let mut scope: Vec<&str> = top.clone();
        scope.extend(f.params.iter().map(|(n, _)| n.as_str()));
        shadow_walk(&f.body, &mut scope, out);
    }
    for ch in &prog.channels {
        let mut scope: Vec<&str> = top.clone();
        scope.push(&ch.ps_name);
        scope.push(&ch.ss_name);
        scope.push(&ch.pkt_name);
        shadow_walk(&ch.body, &mut scope, out);
        if let Some(e) = &ch.initstate {
            let mut scope = top.clone();
            shadow_walk(e, &mut scope, out);
        }
    }
    if let Some(e) = &prog.proto_init {
        let mut scope = top.clone();
        shadow_walk(e, &mut scope, out);
    }
}

fn shadow_walk<'p>(e: &'p TExpr, scope: &mut Vec<&'p str>, out: &mut Vec<Diagnostic>) {
    use TExprKind::*;
    match &e.kind {
        Let {
            name, init, body, ..
        } => {
            shadow_walk(init, scope, out);
            if scope.iter().any(|n| n == name) && !exempt(name) {
                out.push(
                    Diagnostic::warning(
                        "L007",
                        e.span,
                        format!("binding `{name}` shadows an enclosing binding"),
                    )
                    .note("rename one of the bindings to avoid confusion"),
                );
            }
            scope.push(name);
            shadow_walk(body, scope, out);
            scope.pop();
        }
        Tuple(items) | Seq(items) | List(items) => {
            for item in items {
                shadow_walk(item, scope, out);
            }
        }
        Proj(_, inner) | Unop(_, inner) => shadow_walk(inner, scope, out),
        CallFun { args, .. } | CallPrim { args, .. } => {
            for a in args {
                shadow_walk(a, scope, out);
            }
        }
        If(c, t, f) => {
            shadow_walk(c, scope, out);
            shadow_walk(t, scope, out);
            shadow_walk(f, scope, out);
        }
        Binop(_, a, b) => {
            shadow_walk(a, scope, out);
            shadow_walk(b, scope, out);
        }
        Handle(body, _, handler) => {
            shadow_walk(body, scope, out);
            shadow_walk(handler, scope, out);
        }
        OnRemote { pkt, .. } => shadow_walk(pkt, scope, out),
        OnNeighbor { host, pkt, .. } => {
            shadow_walk(host, scope, out);
            shadow_walk(pkt, scope, out);
        }
        Int(_)
        | Bool(_)
        | Str(_)
        | Char(_)
        | Unit
        | Host(_)
        | Local { .. }
        | Global { .. }
        | Raise(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use planp_lang::compile_front;

    fn lint_src(src: &str, policy: Policy) -> Vec<Diagnostic> {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let sum = summarize(&tp);
        lint(&tp, &sum, policy)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    const CLEAN: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                         (OnRemote(network, p); (ps + 1, ss))";

    #[test]
    fn clean_program_produces_no_findings() {
        assert!(lint_src(CLEAN, Policy::strict()).is_empty());
        assert!(lint_src(CLEAN, Policy::no_delivery()).is_empty());
    }

    #[test]
    fn unused_val_and_fun_detected() {
        let src = "val dead : int = 7\n\
                   fun unusedFn(x : int) : int = x\n\
                   channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps, ss))";
        let d = lint_src(src, Policy::strict());
        assert_eq!(codes(&d), vec!["L001", "L002"]);
        assert!(d[0].message.contains("dead"));
        assert!(d[1].message.contains("unusedFn"));
    }

    #[test]
    fn unused_param_detected_channel_params_exempt() {
        // `ss : unit` unused in the channel: no finding. The unused fun
        // parameter: L003.
        let src = "fun pick(a : int, b : int) : int = a\n\
                   channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (pick(ps, 2), ss))";
        let d = lint_src(src, Policy::strict());
        assert_eq!(codes(&d), vec!["L003"]);
        assert!(d[0].message.contains("`b`"));
    }

    #[test]
    fn constant_condition_detected() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); if true then (ps, ss) else (0, ss))";
        let d = lint_src(src, Policy::strict());
        assert_eq!(codes(&d), vec!["L004"]);
        assert!(d[0].notes[0].contains("else branch"));
    }

    #[test]
    fn unhandled_exception_only_without_delivery() {
        // The never-written table also draws S002, under every policy.
        let src = "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (tblGet(ss, ipSrc(#1 p)), ss))";
        assert_eq!(
            codes(&lint_src(src, Policy::strict())),
            vec!["S002"],
            "delivery analysis owns the escaping exception"
        );
        let d = lint_src(src, Policy::no_delivery());
        assert_eq!(codes(&d), vec!["L005", "S002"]);
        assert!(d[0].message.contains("NotFound"));
    }

    #[test]
    fn unreachable_channel_detected() {
        let src = "channel orphan(ps : int, ss : unit, p : ip*udp*blob) is (ps, ss)\n\
                   channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps, ss))";
        let d = lint_src(src, Policy::no_delivery());
        assert_eq!(codes(&d), vec!["L006"]);
        // A targeted channel is fine.
        let src = "channel relay(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(relay, p); (ps, ss))\n\
                   channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(relay, p); (ps, ss))";
        assert!(lint_src(src, Policy::no_delivery()).is_empty());
        // `timer` is runtime-dispatched (setTimer), never send-targeted.
        let src = "channel timer(ps : int, ss : unit, p : ip*udp*blob) is (ps, ss)\n\
                   channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (setTimer(10, 1); OnRemote(network, p); (ps, ss))";
        assert!(lint_src(src, Policy::no_delivery()).is_empty());
    }

    #[test]
    fn shadowed_binding_detected() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   let val ps : int = 9 in (OnRemote(network, p); (ps, ss)) end";
        let d = lint_src(src, Policy::strict());
        assert_eq!(codes(&d), vec!["L007"]);
        assert!(d[0].message.contains("`ps`"));
    }

    #[test]
    fn findings_sorted_by_position() {
        let src = "val dead : int = 7\n\
                   channel orphan(ps : int, ss : unit, p : ip*udp*blob) is (ps, ss)\n\
                   channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps, ss))";
        let d = lint_src(src, Policy::no_delivery());
        assert_eq!(codes(&d), vec!["L001", "L006"]);
        assert!(d[0].span.start < d[1].span.start);
    }
}
