//! Cross-ASP product model check for deployment plans.
//!
//! The per-program [model checker](crate::modelcheck) explores
//! (channel × destination) states of *one* program, assuming acyclic
//! routing underneath. Two individually-proved ASPs can still form a
//! joint forwarding loop once they share a network — each one's
//! "progress" send feeding the other's restart. This module explores
//! the *product* of a deployment: states are
//!
//! ```text
//! (node, channel tag, destination value, source value)
//! ```
//!
//! over a concrete [`PlanTopology`], seeded with one in-flight packet
//! per plan path (entering at the ingress's first hop — a node's own
//! hook never sees the traffic it originates). A transition either
//! *dispatches* the packet into a co-resident ASP channel whose name
//! matches the tag — applying that channel's send-site transfers, one
//! successor per site, routed hop-by-hop — or, when nothing matches,
//! *transits* it one IP hop toward its destination. Destination and
//! source values are concrete addresses here (or `Unknown`), so the
//! progress labelling of the single-program checker carries over
//! exactly: an `OnRemote` hop makes progress iff it keeps the packet's
//! destination (or re-pins the same fixed address), and plain IP
//! transit always makes progress.
//!
//! A joint loop is a reachable state-graph cycle containing a
//! non-progress hop (SCC test, as in the single checker); the minimal
//! counterexample is reconstructed the same way and reported as an
//! `E007` [`Witness`] whose hops name nodes as well as channels
//! (`r1/network#0`) and whose spans point at the responsible `deploy`
//! lines of the plan source.

use crate::modelcheck::Verdict;
use crate::plan::{Install, PlanAsp, PlanTopology};
use crate::summary::{DestAbs, SendKind};
use crate::termination::scc;
use crate::witness::{Witness, WitnessHop, WitnessKind};
use planp_lang::span::Span;
use std::collections::{HashMap, VecDeque};

/// Concrete-or-unknown value of an in-flight packet's address field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PVal {
    /// A fixed IPv4 address.
    Addr(u32),
    /// Not statically bounded.
    Unknown,
}

impl PVal {
    fn describe(self) -> String {
        match self {
            PVal::Addr(a) => format!(
                "{}.{}.{}.{}",
                (a >> 24) & 255,
                (a >> 16) & 255,
                (a >> 8) & 255,
                a & 255
            ),
            PVal::Unknown => "an unknown address".to_string(),
        }
    }
}

/// One explored product state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PState {
    node: usize,
    tag: u32,
    dest: PVal,
    src: PVal,
}

#[derive(Debug, Clone, Copy)]
enum EdgeLabel {
    /// Send site `site` of channel `chan` of `installs[install]`.
    Dispatch {
        install: usize,
        chan: usize,
        site: usize,
    },
    /// Plain IP forwarding at a node with no matching channel.
    Transit,
}

#[derive(Debug, Clone, Copy)]
struct PEdge {
    from: usize,
    to: usize,
    label: EdgeLabel,
    progress: bool,
}

/// What the product exploration found.
#[derive(Debug, Clone)]
pub struct ComposeResult {
    /// Joint-termination verdict over the whole deployment.
    pub verdict: Verdict,
    /// Product states explored.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// True if the state budget stopped the exploration early.
    pub exhausted: bool,
    /// At most one minimal `E007` joint-loop witness.
    pub witnesses: Vec<Witness>,
}

/// Runs the product exploration of `asps` installed per `installs`
/// over `topo`, seeded from the topology's plan paths.
/// `install_spans` (parallel to `installs`) anchor witness hops at the
/// responsible plan-source `deploy` lines.
pub fn product_check(
    topo: &PlanTopology,
    asps: &[PlanAsp],
    installs: &[Install],
    install_spans: &[Span],
    budget: usize,
) -> ComposeResult {
    let n_nodes = topo.nodes.len();
    let mut tags: Vec<String> = vec!["network".to_string()];
    let mut tag_ix: HashMap<String, u32> = HashMap::new();
    tag_ix.insert("network".to_string(), 0);

    let mut at_node: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for (i, ins) in installs.iter().enumerate() {
        at_node[ins.node].push(i);
    }

    // Next-hop tables toward each routed-to node, computed on demand.
    let mut toward_cache: HashMap<usize, Vec<Option<usize>>> = HashMap::new();
    let mut hop_toward = |from: usize, target: usize| -> Option<usize> {
        toward_cache
            .entry(target)
            .or_insert_with(|| topo.toward(target))[from]
    };

    let mut states: Vec<PState> = Vec::new();
    let mut index: HashMap<PState, usize> = HashMap::new();
    let mut edges: Vec<PEdge> = Vec::new();
    let mut exhausted = false;

    // One in-flight packet per plan path, entering at the ingress's
    // next hop with the path endpoints as concrete dest/src.
    for &(ingress, egress) in &topo.paths {
        if states.len() >= budget {
            exhausted = true;
            break;
        }
        let Some(entry) = hop_toward(ingress, egress) else {
            continue;
        };
        let s = PState {
            node: entry,
            tag: 0,
            dest: PVal::Addr(topo.nodes[egress].addr),
            src: PVal::Addr(topo.nodes[ingress].addr),
        };
        if let std::collections::hash_map::Entry::Vacant(e) = index.entry(s) {
            e.insert(states.len());
            states.push(s);
        }
    }

    let mut head = 0;
    while head < states.len() && !exhausted {
        let u = head;
        head += 1;
        let s = states[u];
        let node_addr = topo.nodes[s.node].addr;
        let tag_name = tags[s.tag as usize].clone();

        // Successor states this state steps to, with edge labels.
        let mut succs: Vec<(PState, EdgeLabel, bool)> = Vec::new();
        let mut dispatched = false;
        for &ii in &at_node[s.node] {
            let asp = &asps[installs[ii].deploy];
            for (ci, (cname, _)) in asp.channels.iter().enumerate() {
                if cname != &tag_name {
                    continue;
                }
                dispatched = true;
                for (si, site) in asp.summary.channels[ci].sites.iter().enumerate() {
                    let dest2 = match site.pkt_dest {
                        DestAbs::Unchanged => s.dest,
                        DestAbs::OrigSrc => s.src,
                        DestAbs::Const(a) => PVal::Addr(a),
                        DestAbs::Unknown => PVal::Unknown,
                    };
                    let src2 = if site.src_orig { s.src } else { PVal::Unknown };
                    // Same progress rule as the single-program checker,
                    // over concretized values.
                    let progress = site.kind == SendKind::Remote
                        && (site.pkt_dest == DestAbs::Unchanged
                            || (dest2 == s.dest && dest2 != PVal::Unknown));
                    let tag2 = match tag_ix.get(&site.chan) {
                        Some(&t) => t,
                        None => {
                            let t = tags.len() as u32;
                            tags.push(site.chan.clone());
                            tag_ix.insert(site.chan.clone(), t);
                            t
                        }
                    };
                    let label = EdgeLabel::Dispatch {
                        install: ii,
                        chan: ci,
                        site: si,
                    };
                    let nexts: Vec<usize> = match site.kind {
                        SendKind::Remote => match dest2 {
                            // Addressed to this very node: delivered.
                            PVal::Addr(a) if a == node_addr => Vec::new(),
                            PVal::Addr(a) => match topo.node_by_addr(a) {
                                Some(t) => hop_toward(s.node, t).into_iter().collect(),
                                None => Vec::new(), // undeliverable
                            },
                            PVal::Unknown => topo.adj[s.node].clone(),
                        },
                        SendKind::Neighbor => match site.dest {
                            DestAbs::Const(a) => match topo.node_by_addr(a) {
                                Some(m) if topo.adj[s.node].contains(&m) => vec![m],
                                _ => topo.adj[s.node].clone(),
                            },
                            _ => topo.adj[s.node].clone(),
                        },
                    };
                    for t in nexts {
                        succs.push((
                            PState {
                                node: t,
                                tag: tag2,
                                dest: dest2,
                                src: src2,
                            },
                            label,
                            progress,
                        ));
                    }
                }
            }
        }
        if !dispatched {
            // No matching channel: plain IP forwarding, which is
            // loop-free — always a progress hop.
            match s.dest {
                PVal::Addr(a) if a == node_addr => {} // delivered
                PVal::Addr(a) => {
                    if let Some(t) = topo.node_by_addr(a) {
                        if let Some(h) = hop_toward(s.node, t) {
                            succs.push((PState { node: h, ..s }, EdgeLabel::Transit, true));
                        }
                    }
                }
                PVal::Unknown => {
                    for &m in &topo.adj[s.node] {
                        succs.push((PState { node: m, ..s }, EdgeLabel::Transit, true));
                    }
                }
            }
        }

        for (t, label, progress) in succs {
            let v = match index.get(&t) {
                Some(&v) => v,
                None => {
                    if states.len() >= budget {
                        exhausted = true;
                        break;
                    }
                    index.insert(t, states.len());
                    states.push(t);
                    states.len() - 1
                }
            };
            edges.push(PEdge {
                from: u,
                to: v,
                label,
                progress,
            });
        }
    }

    let mut witnesses = Vec::new();
    let verdict = if exhausted {
        Verdict::Inconclusive
    } else {
        let mut adj = vec![Vec::new(); states.len()];
        for e in &edges {
            adj[e.from].push(e.to);
        }
        let comp = scc(&adj);
        let violating: Vec<usize> = (0..edges.len())
            .filter(|&i| !edges[i].progress && comp[edges[i].from] == comp[edges[i].to])
            .collect();
        if violating.is_empty() {
            Verdict::Proved
        } else {
            witnesses.push(joint_loop_witness(
                topo,
                asps,
                installs,
                install_spans,
                &tags,
                &states,
                &edges,
                &violating,
            ));
            Verdict::Violated
        }
    };

    ComposeResult {
        verdict,
        states: states.len(),
        transitions: edges.len(),
        exhausted,
        witnesses,
    }
}

/// BFS over the explored graph from `sources`, following edges in
/// insertion order (deterministic minimal witnesses).
fn bfs(
    n_states: usize,
    edges: &[PEdge],
    out_edges: &[Vec<usize>],
    sources: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    let mut dist = vec![usize::MAX; n_states];
    let mut parent = vec![usize::MAX; n_states];
    let mut q = VecDeque::new();
    for &s in sources {
        if dist[s] == usize::MAX {
            dist[s] = 0;
            q.push_back(s);
        }
    }
    while let Some(u) = q.pop_front() {
        for &ei in &out_edges[u] {
            let v = edges[ei].to;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = ei;
                q.push_back(v);
            }
        }
    }
    (dist, parent)
}

fn path_to(parent: &[usize], edges: &[PEdge], target: usize) -> Vec<usize> {
    let mut path = Vec::new();
    let mut at = target;
    while parent[at] != usize::MAX {
        let ei = parent[at];
        path.push(ei);
        at = edges[ei].from;
    }
    path.reverse();
    path
}

/// Minimal `E007` witness: over all violating edges, the one
/// minimizing (entry prefix) + 1 + (cycle back), mirroring the
/// single-program checker's reconstruction.
#[allow(clippy::too_many_arguments)]
fn joint_loop_witness(
    topo: &PlanTopology,
    asps: &[PlanAsp],
    installs: &[Install],
    install_spans: &[Span],
    tags: &[String],
    states: &[PState],
    edges: &[PEdge],
    violating: &[usize],
) -> Witness {
    let mut out_edges = vec![Vec::new(); states.len()];
    for (i, e) in edges.iter().enumerate() {
        out_edges[e.from].push(i);
    }
    // Entry states are the first-interned ones: every state with no
    // incoming BFS need is seeded; using all path entries (distance 0)
    // reproduces the single checker's "shortest prefix from an entry".
    let entries: Vec<usize> = {
        let mut has_in = vec![false; states.len()];
        for e in edges {
            has_in[e.to] = true;
        }
        let roots: Vec<usize> = (0..states.len()).filter(|&i| !has_in[i]).collect();
        if roots.is_empty() {
            vec![0]
        } else {
            roots
        }
    };
    let (dist0, parent0) = bfs(states.len(), edges, &out_edges, &entries);

    let mut best: Option<(usize, usize, Vec<usize>, Vec<usize>)> = None;
    for &ei in violating {
        let e = edges[ei];
        if dist0[e.from] == usize::MAX {
            continue;
        }
        let (db, pb) = bfs(states.len(), edges, &out_edges, &[e.to]);
        if db[e.from] == usize::MAX {
            continue;
        }
        let score = dist0[e.from] + 1 + db[e.from];
        if best.as_ref().is_none_or(|(s, _, _, _)| score < *s) {
            let prefix = path_to(&parent0, edges, e.from);
            let back = path_to(&pb, edges, e.from);
            best = Some((score, ei, prefix, back));
        }
    }
    let (_, chosen, prefix, back) = best.expect("a violating edge is always reachable");

    let state_label = |i: usize| {
        format!(
            "{}/{}",
            topo.nodes[states[i].node].name, tags[states[i].tag as usize]
        )
    };
    let hop = |ei: usize| -> WitnessHop {
        let e = &edges[ei];
        match e.label {
            EdgeLabel::Dispatch {
                install,
                chan,
                site,
            } => {
                let asp = &asps[installs[install].deploy];
                let (cname, ov) = &asp.channels[chan];
                let st = &asp.summary.channels[chan].sites[site];
                WitnessHop {
                    from: format!("{}/{}#{}", topo.nodes[states[e.from].node].name, cname, ov),
                    to: state_label(e.to),
                    kind: st.kind,
                    dest: states[e.to].dest.describe(),
                    progress: e.progress,
                    span: install_spans[install],
                }
            }
            EdgeLabel::Transit => WitnessHop {
                from: format!("{}/transit", topo.nodes[states[e.from].node].name),
                to: state_label(e.to),
                kind: SendKind::Remote,
                dest: states[e.to].dest.describe(),
                progress: e.progress,
                span: Span::dummy(),
            },
        }
    };
    let cycle_start = prefix.len();
    let mut hops: Vec<WitnessHop> = prefix.iter().copied().map(hop).collect();
    hops.push(hop(chosen));
    hops.extend(back.iter().copied().map(hop));
    let cycle_len = hops.len() - cycle_start;
    let head = edges[chosen].from;
    let message = format!(
        "possible cross-ASP packet loop: {cycle_len} hop(s) return the packet to `{}` with destination {} and no net progress",
        state_label(head),
        states[head].dest.describe()
    );
    Witness {
        code: "E007",
        kind: WitnessKind::Loop { cycle_start },
        channel: state_label(head),
        message,
        span: hops[cycle_start].span,
        hops,
    }
}
