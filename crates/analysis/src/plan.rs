//! Plan-level static verification: placement, composition, budgets,
//! and lints over a whole deployment.
//!
//! A deployment plan (parsed by `planp_lang::plan`) names a topology,
//! maps traffic classes to ASPs, and targets topology *slices*. This
//! module turns that description into checked facts **before** anything
//! installs:
//!
//! * **placement** — [`PlanCheck::new`] resolves every `deploy` to
//!   concrete install points over a [`PlanTopology`] (`on <slice>`
//!   installs everywhere in the slice; `on one(<slice>)` picks the
//!   slice node covering the most plan paths);
//! * **cross-ASP interaction** — [`PlanCheck::verify`] runs the
//!   [product model check](crate::compose) over the co-deployed ASPs'
//!   send-site summaries, rejecting joint forwarding loops (`E007`)
//!   that no single-program check can see, with minimal witnesses;
//! * **path CPU budgets** — per-channel worst-case step bounds
//!   ([`crate::cost`]) compose along every plan path into a
//!   network-wide per-packet budget, enforced against the plan's
//!   `budget steps` line (`E008`);
//! * **node state budgets** — per-ASP table-entry bounds
//!   ([`crate::state`]) compose *per node* across co-resident ASPs,
//!   enforced against the plan's `budget state` line (`E010`; an ASP
//!   with unbounded state always rejects under a state budget);
//! * **plan lints** — `P001` unreachable deploy, `P002` shadowed
//!   traffic class, `P003` uncovered class, `P004` dead install point,
//!   and `L008` (a send to a channel no co-deployed ASP handles).
//!
//! The result is a [`PlanReport`] with byte-stable JSON, mirroring the
//! per-program [`crate::verifier`] report shape.

use crate::compose::product_check;
use crate::cost::{cost_bounds, CostReport};
use crate::diag::{Diagnostic, Severity};
use crate::modelcheck::{Verdict, DEFAULT_STATE_BUDGET};
use crate::summary::{summarize, ProgramSummary};
use crate::witness::Witness;
use planp_lang::plan::{PlanAst, SliceMode};
use planp_lang::span::Span;
use planp_lang::{LangError, TProgram};
use std::collections::{BTreeSet, VecDeque};

/// One node of the plan-level topology model.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Node name.
    pub name: String,
    /// IPv4 address.
    pub addr: u32,
    /// Slice names this node belongs to.
    pub slices: Vec<String>,
}

/// The static topology a plan is verified against: nodes, adjacency,
/// and the expected end-to-end paths. Runtime bridges
/// `netsim::TopoSpec` into this shape (analysis stays simulator-free).
#[derive(Debug, Clone)]
pub struct PlanTopology {
    /// Topology registry name; must match the plan's `topology` line.
    pub name: String,
    /// Nodes in simulator creation order.
    pub nodes: Vec<PlanNode>,
    /// Undirected adjacency over node indices.
    pub adj: Vec<Vec<usize>>,
    /// Expected `(ingress, egress)` traffic paths.
    pub paths: Vec<(usize, usize)>,
}

impl PlanTopology {
    /// Assembles a topology model from parts.
    pub fn new(
        name: impl Into<String>,
        nodes: Vec<PlanNode>,
        adj: Vec<Vec<usize>>,
        paths: Vec<(usize, usize)>,
    ) -> Self {
        PlanTopology {
            name: name.into(),
            nodes,
            adj,
            paths,
        }
    }

    /// The node holding address `a`, if any.
    pub fn node_by_addr(&self, a: u32) -> Option<usize> {
        self.nodes.iter().position(|n| n.addr == a)
    }

    /// Node indices in slice `slice`; a node's own name doubles as a
    /// singleton slice (matching `TopoSpec::slice`).
    pub fn slice(&self, slice: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name == slice || n.slices.iter().any(|s| s == slice))
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-node next hop toward `target` under shortest-path (BFS)
    /// routing — `None` for unreachable nodes and for `target` itself.
    pub fn toward(&self, target: usize) -> Vec<Option<usize>> {
        let mut next = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut q = VecDeque::new();
        seen[target] = true;
        q.push_back(target);
        while let Some(u) = q.pop_front() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    next[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        next
    }

    /// The next hop from `from` toward `to`.
    pub fn next_hop(&self, from: usize, to: usize) -> Option<usize> {
        self.toward(to)[from]
    }

    /// The full route `from → … → to` (inclusive), or `None` if
    /// unreachable.
    pub fn route(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let next = self.toward(to);
        let mut route = vec![from];
        let mut at = from;
        while at != to {
            at = next[at]?;
            route.push(at);
        }
        Some(route)
    }
}

/// Plan-scope acceptance policy, the plan-level analogue of the
/// per-program download [`crate::Policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanPolicy {
    /// Reject the plan unless joint termination is proved (`E007`).
    pub require_joint_termination: bool,
    /// Reject any path whose composed worst-case step budget exceeds
    /// this (`E008`). Set by the plan's `budget steps` line.
    pub max_path_steps: Option<u64>,
    /// Reject any node whose co-resident ASPs compose a table-entry
    /// bound over this (`E010`). Set by the plan's `budget state` line.
    pub max_node_state_entries: Option<u64>,
    /// Product-state exploration budget.
    pub product_budget: usize,
}

impl PlanPolicy {
    /// The default: joint termination must be proved.
    pub fn strict() -> Self {
        PlanPolicy {
            require_joint_termination: true,
            max_path_steps: None,
            max_node_state_entries: None,
            product_budget: DEFAULT_STATE_BUDGET,
        }
    }

    /// Authenticated deployments: joint loops are reported but do not
    /// reject (explicit step budgets still do, as for `E004`).
    pub fn authenticated() -> Self {
        PlanPolicy {
            require_joint_termination: false,
            ..PlanPolicy::strict()
        }
    }

    /// Resolves a plan-source policy name.
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "strict" => Some(PlanPolicy::strict()),
            "authenticated" => Some(PlanPolicy::authenticated()),
            _ => None,
        }
    }
}

/// One compiled ASP as the plan verifier sees it: channel names, the
/// send-site summary, and the per-channel cost bounds.
#[derive(Debug, Clone)]
pub struct PlanAsp {
    /// ASP name (as referenced by the plan's `deploy` lines).
    pub name: String,
    /// `(channel name, overload index)` per channel, parallel to the
    /// summary.
    pub channels: Vec<(String, u32)>,
    /// Send-site abstraction per channel.
    pub summary: ProgramSummary,
    /// Worst-case step/send bounds per channel.
    pub cost: CostReport,
}

impl PlanAsp {
    /// Summarizes a compiled program for plan-level checking.
    pub fn from_program(name: impl Into<String>, prog: &TProgram) -> Self {
        PlanAsp {
            name: name.into(),
            channels: prog
                .channels
                .iter()
                .map(|c| (c.name.clone(), c.overload))
                .collect(),
            summary: summarize(prog),
            cost: cost_bounds(prog),
        }
    }

    /// The worst-case single-dispatch step bound over all channels.
    pub fn max_steps(&self) -> u64 {
        self.cost.max_steps()
    }

    /// The composed table-entry bound over all of this ASP's tables
    /// (`None` means some table is unbounded). See [`crate::state`].
    pub fn entry_bound(&self) -> Option<u64> {
        self.summary.state.entry_bound()
    }
}

/// One resolved install point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Install {
    /// Index into the plan's `deploys` (and into the aligned ASP list).
    pub deploy: usize,
    /// Topology node index the ASP installs on.
    pub node: usize,
}

/// The composed worst-case budget of one plan path.
#[derive(Debug, Clone)]
pub struct PathBudget {
    /// Ingress node name.
    pub from: String,
    /// Egress node name.
    pub to: String,
    /// Route length in links.
    pub hops: usize,
    /// Worst-case VM steps a packet can cost along the route (the
    /// per-node max over co-resident ASP bounds, summed over every
    /// node past the ingress).
    pub steps: u64,
}

/// The composed worst-case table-entry footprint of one node.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Topology node name.
    pub node: String,
    /// Sum of the co-resident ASPs' composed per-table entry bounds,
    /// or `None` when some resident ASP's state growth is unbounded.
    pub entries: Option<u64>,
}

/// A placed, verifiable deployment: the output of [`PlanCheck::new`],
/// ready for (repeatable) [`PlanCheck::verify`] runs.
#[derive(Debug, Clone)]
pub struct PlanCheck {
    /// The parsed plan.
    pub plan: PlanAst,
    /// The topology model it deploys over.
    pub topo: PlanTopology,
    /// Compiled ASPs, aligned with `plan.deploys`.
    pub asps: Vec<PlanAsp>,
    /// Resolved install points.
    pub installs: Vec<Install>,
    /// Resolved plan policy.
    pub policy: PlanPolicy,
}

impl PlanCheck {
    /// Resolves placement: checks the topology matches the plan, the
    /// ASP list is aligned with the deploys, and maps every `deploy`
    /// onto concrete install points.
    ///
    /// # Errors
    ///
    /// Rejects topology/plan name mismatches, misaligned ASP lists,
    /// and unknown policy names.
    pub fn new(plan: PlanAst, topo: PlanTopology, asps: Vec<PlanAsp>) -> Result<Self, LangError> {
        if topo.name != plan.topology {
            return Err(LangError::verify(
                format!(
                    "plan `{}` targets topology `{}` but was given `{}`",
                    plan.name, plan.topology, topo.name
                ),
                Span::dummy(),
            ));
        }
        if asps.len() != plan.deploys.len() {
            return Err(LangError::verify(
                format!(
                    "plan `{}` has {} deploy(s) but {} compiled ASP(s) were supplied",
                    plan.name,
                    plan.deploys.len(),
                    asps.len()
                ),
                Span::dummy(),
            ));
        }
        for (d, a) in plan.deploys.iter().zip(&asps) {
            if d.asp != a.name {
                return Err(LangError::verify(
                    format!("deploy expects ASP `{}` but got `{}`", d.asp, a.name),
                    d.span,
                ));
            }
        }
        let mut policy = match plan.policy.as_deref() {
            None => PlanPolicy::strict(),
            Some(name) => PlanPolicy::named(name).ok_or_else(|| {
                LangError::verify(format!("unknown plan policy `{name}`"), Span::dummy())
            })?,
        };
        if plan.budget_steps.is_some() {
            policy.max_path_steps = plan.budget_steps;
        }
        if plan.budget_state.is_some() {
            policy.max_node_state_entries = plan.budget_state;
        }

        // Route coverage: how many plan paths route *through* each node
        // (ingress excluded — a node's hook never sees the traffic it
        // originates).
        let mut coverage = vec![0usize; topo.nodes.len()];
        for &(a, b) in &topo.paths {
            if let Some(route) = topo.route(a, b) {
                for &n in &route[1..] {
                    coverage[n] += 1;
                }
            }
        }

        let mut installs = Vec::new();
        for (di, d) in plan.deploys.iter().enumerate() {
            let nodes = topo.slice(&d.slice);
            match d.mode {
                SliceMode::All => {
                    installs.extend(nodes.into_iter().map(|n| Install {
                        deploy: di,
                        node: n,
                    }));
                }
                SliceMode::One => {
                    // The slice node covering the most plan paths;
                    // ties break toward the lowest node index.
                    if let Some(&n) = nodes
                        .iter()
                        .max_by_key(|&&n| (coverage[n], std::cmp::Reverse(n)))
                    {
                        installs.push(Install {
                            deploy: di,
                            node: n,
                        });
                    }
                }
            }
        }

        Ok(PlanCheck {
            plan,
            topo,
            asps,
            installs,
            policy,
        })
    }

    /// Runs the plan-level verification: product model check, path
    /// budget composition, and the plan lints.
    pub fn verify(&self) -> PlanReport {
        let spans: Vec<Span> = self
            .installs
            .iter()
            .map(|i| self.plan.deploys[i.deploy].span)
            .collect();
        let compose = product_check(
            &self.topo,
            &self.asps,
            &self.installs,
            &spans,
            self.policy.product_budget,
        );

        let mut diagnostics = Vec::new();

        // --- path budgets (E008) ---------------------------------
        let mut budgets = Vec::new();
        for &(a, b) in &self.topo.paths {
            let Some(route) = self.topo.route(a, b) else {
                continue;
            };
            let mut steps = 0u64;
            let mut worst: Option<(u64, usize)> = None;
            for &n in &route[1..] {
                let node_worst = self
                    .installs
                    .iter()
                    .enumerate()
                    .filter(|(_, ins)| ins.node == n)
                    .map(|(ii, ins)| (self.asps[ins.deploy].max_steps(), ii))
                    .max();
                if let Some((c, ii)) = node_worst {
                    steps = steps.saturating_add(c);
                    if worst.is_none_or(|(w, _)| c > w) {
                        worst = Some((c, ii));
                    }
                }
            }
            budgets.push(PathBudget {
                from: self.topo.nodes[a].name.clone(),
                to: self.topo.nodes[b].name.clone(),
                hops: route.len() - 1,
                steps,
            });
            if let Some(limit) = self.policy.max_path_steps {
                if steps > limit {
                    let span = worst.map(|(_, ii)| spans[ii]).unwrap_or_else(Span::dummy);
                    diagnostics.push(
                        Diagnostic::error(
                            "E008",
                            span,
                            format!(
                                "path {} -> {} composes a worst-case budget of {steps} steps, \
                                 exceeding the plan budget of {limit}",
                                self.topo.nodes[a].name, self.topo.nodes[b].name
                            ),
                        )
                        .note(format!(
                            "the budget sums, per node past the ingress, the costliest \
                             co-resident channel bound ({} node(s) on this route)",
                            route.len() - 1
                        )),
                    );
                }
            }
        }

        // --- node state budgets (E010) ----------------------------
        let mut node_state = Vec::new();
        for (n, nd) in self.topo.nodes.iter().enumerate() {
            let resident: Vec<usize> = (0..self.installs.len())
                .filter(|&ii| self.installs[ii].node == n)
                .collect();
            if resident.is_empty() {
                continue;
            }
            let mut entries = Some(0u64);
            let mut worst: Option<(u64, usize)> = None;
            let mut unbounded: Option<usize> = None;
            for &ii in &resident {
                match self.asps[self.installs[ii].deploy].entry_bound() {
                    Some(e) => {
                        entries = entries.map(|t| t.saturating_add(e));
                        if worst.is_none_or(|(w, _)| e > w) {
                            worst = Some((e, ii));
                        }
                    }
                    None => {
                        entries = None;
                        unbounded.get_or_insert(ii);
                    }
                }
            }
            node_state.push(NodeState {
                node: nd.name.clone(),
                entries,
            });
            if let Some(limit) = self.policy.max_node_state_entries {
                match entries {
                    None => {
                        let ii = unbounded.expect("entries is None only via an unbounded ASP");
                        diagnostics.push(
                            Diagnostic::error(
                                "E010",
                                spans[ii],
                                format!(
                                    "node {} installs `{}`, whose table growth is unbounded, \
                                     under a plan state budget of {limit} entries",
                                    nd.name, self.asps[self.installs[ii].deploy].name
                                ),
                            )
                            .note(
                                "an ASP without a finite entry bound cannot satisfy any state \
                                 budget; evict with a constant capacity or key its tables on \
                                 a finite domain",
                            ),
                        );
                    }
                    Some(total) if total > limit => {
                        let span = worst.map(|(_, ii)| spans[ii]).unwrap_or_else(Span::dummy);
                        diagnostics.push(
                            Diagnostic::error(
                                "E010",
                                span,
                                format!(
                                    "node {} composes a worst-case state footprint of {total} \
                                     table entries across {} co-resident install(s), exceeding \
                                     the plan budget of {limit}",
                                    nd.name,
                                    resident.len()
                                ),
                            )
                            .note(
                                "the budget sums each co-resident ASP's composed per-table \
                                 entry bound",
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }

        // --- joint-loop rejection (E007) --------------------------
        if self.policy.require_joint_termination {
            for w in &compose.witnesses {
                diagnostics.push(w.to_diagnostic());
            }
            if compose.exhausted {
                diagnostics.push(Diagnostic::error(
                    "E007",
                    Span::dummy(),
                    format!(
                        "joint exploration exhausted its {}-state budget before proving \
                         termination",
                        self.policy.product_budget
                    ),
                ));
            }
        }

        self.lint_into(&mut diagnostics);

        diagnostics.sort_by_key(|d| (d.span.start, d.span.end, d.code));

        PlanReport {
            plan: self.plan.name.clone(),
            topology: self.topo.name.clone(),
            policy: self.policy,
            joint: compose.verdict,
            states: compose.states,
            transitions: compose.transitions,
            budget: self.policy.product_budget,
            exhausted: compose.exhausted,
            witnesses: compose.witnesses,
            budgets,
            node_state,
            installs: self
                .installs
                .iter()
                .map(|i| {
                    (
                        self.topo.nodes[i.node].name.clone(),
                        self.asps[i.deploy].name.clone(),
                    )
                })
                .collect(),
            diagnostics,
        }
    }

    /// The plan lints: P001 unreachable deploy, P002 shadowed class,
    /// P003 uncovered class, P004 dead install point, L008 unhandled
    /// cross-channel send.
    fn lint_into(&self, diagnostics: &mut Vec<Diagnostic>) {
        let covered: Vec<bool> = {
            let mut c = vec![false; self.topo.nodes.len()];
            for &(a, b) in &self.topo.paths {
                if let Some(route) = self.topo.route(a, b) {
                    for &n in &route[1..] {
                        c[n] = true;
                    }
                }
            }
            c
        };

        // P002: a class whose match duplicates an earlier one never
        // sees traffic.
        for (j, cj) in self.plan.classes.iter().enumerate() {
            if let Some(ci) = self.plan.classes[..j].iter().find(|ci| ci.port == cj.port) {
                let what = match cj.port {
                    Some(p) => format!("port {p}"),
                    None => "the wildcard match".to_string(),
                };
                diagnostics.push(
                    Diagnostic::warning(
                        "P002",
                        cj.span,
                        format!(
                            "class `{}` is shadowed by earlier class `{}` ({what})",
                            cj.name, ci.name
                        ),
                    )
                    .note("traffic matches the first class declared; this one is dead"),
                );
            }
        }

        // P003: a class no deploy references.
        for c in &self.plan.classes {
            if !self.plan.deploys.iter().any(|d| d.class == c.name) {
                diagnostics.push(
                    Diagnostic::warning(
                        "P003",
                        c.span,
                        format!("traffic class `{}` is not covered by any deploy", c.name),
                    )
                    .note("its traffic crosses the network with no ASP attached"),
                );
            }
        }

        for (di, d) in self.plan.deploys.iter().enumerate() {
            let my_installs: Vec<&Install> =
                self.installs.iter().filter(|i| i.deploy == di).collect();

            // P001: the deploy resolves to nothing reachable.
            if my_installs.is_empty() {
                diagnostics.push(
                    Diagnostic::warning(
                        "P001",
                        d.span,
                        format!(
                            "deploy of `{}` targets slice `{}`, which has no nodes in \
                             topology `{}`",
                            d.asp, d.slice, self.topo.name
                        ),
                    )
                    .note("the ASP installs nowhere"),
                );
                continue;
            }
            if my_installs.iter().all(|i| !covered[i.node]) {
                diagnostics.push(
                    Diagnostic::warning(
                        "P001",
                        d.span,
                        format!(
                            "deploy of `{}` is unreachable: no install point of slice `{}` \
                             lies on any plan path",
                            d.asp, d.slice
                        ),
                    )
                    .note("the ASP installs, but no planned traffic ever reaches it"),
                );
                continue;
            }

            // P004: individual install points off every path.
            let dead: Vec<&str> = my_installs
                .iter()
                .filter(|i| !covered[i.node])
                .map(|i| self.topo.nodes[i.node].name.as_str())
                .collect();
            if !dead.is_empty() {
                diagnostics.push(
                    Diagnostic::warning(
                        "P004",
                        d.span,
                        format!(
                            "dead install point(s) for `{}`: {} not on any plan path",
                            d.asp,
                            dead.join(", ")
                        ),
                    )
                    .note("shrink the slice or add paths through these nodes"),
                );
            }

            // L008: a send targeting a channel no co-deployed ASP
            // handles. `network` is the IP layer itself and `timer`
            // the runtime's timer queue, so both always have a
            // handler; a class with an `app` endpoint consumes
            // whatever reaches the application.
            let has_app = self
                .plan
                .classes
                .iter()
                .find(|c| c.name == d.class)
                .is_some_and(|c| c.app.is_some());
            if has_app {
                continue;
            }
            let mut warned: BTreeSet<&str> = BTreeSet::new();
            for es in &self.asps[di].summary.channels {
                for site in &es.sites {
                    let t = site.chan.as_str();
                    if t == "network" || t == "timer" || warned.contains(t) {
                        continue;
                    }
                    let handled = self.installs.iter().any(|ins| {
                        let defines = self.asps[ins.deploy].channels.iter().any(|(n, _)| n == t);
                        defines && (ins.deploy != di || my_installs.len() >= 2)
                    });
                    if !handled {
                        warned.insert(t);
                        diagnostics.push(
                            Diagnostic::warning(
                                "L008",
                                d.span,
                                format!(
                                    "ASP `{}` sends on channel `{t}`, which no co-deployed \
                                     ASP handles in this plan",
                                    d.asp
                                ),
                            )
                            .note(format!(
                                "packets tagged `{t}` fall through to plain IP delivery; \
                                 deploy a handler or give class `{}` an app endpoint",
                                d.class
                            )),
                        );
                    }
                }
            }
        }
    }
}

/// The result of one plan-level verification run.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Plan name.
    pub plan: String,
    /// Topology name.
    pub topology: String,
    /// The policy the plan was judged under.
    pub policy: PlanPolicy,
    /// Joint-termination verdict from the product check.
    pub joint: Verdict,
    /// Product states explored.
    pub states: usize,
    /// Product transitions explored.
    pub transitions: usize,
    /// The exploration's state budget.
    pub budget: usize,
    /// True if the budget stopped exploration early.
    pub exhausted: bool,
    /// Minimal `E007` witnesses (empty when proved).
    pub witnesses: Vec<Witness>,
    /// Composed worst-case budget per plan path.
    pub budgets: Vec<PathBudget>,
    /// Composed worst-case state footprint per node with installs.
    pub node_state: Vec<NodeState>,
    /// Resolved `(node, asp)` install points.
    pub installs: Vec<(String, String)>,
    /// Errors and lint warnings, sorted by span then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl PlanReport {
    /// Whether the deployment may proceed: joint termination holds
    /// when required, and nothing raised an error-severity diagnostic.
    pub fn accepted(&self) -> bool {
        (!self.policy.require_joint_termination || self.joint.is_proved())
            && !self
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error)
    }

    /// The worst composed path budget, in VM steps.
    pub fn max_budget(&self) -> u64 {
        self.budgets.iter().map(|b| b.steps).max().unwrap_or(0)
    }

    /// Errors only.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// Appends the byte-stable JSON form to `out`. Key order is fixed:
    /// `plan`, `topology`, `accepted`, `joint`, `states`,
    /// `transitions`, `budget`, `exhausted`, `installs`, `paths`,
    /// `state`, `witnesses`, `diagnostics`.
    pub fn write_json(&self, src: &str, out: &mut String) {
        use crate::diag::push_json_str;
        out.push_str("{\"plan\":");
        push_json_str(out, &self.plan);
        out.push_str(",\"topology\":");
        push_json_str(out, &self.topology);
        out.push_str(&format!(
            ",\"accepted\":{},\"joint\":\"{}\",\"states\":{},\"transitions\":{},\
             \"budget\":{},\"exhausted\":{}",
            self.accepted(),
            self.joint.as_str(),
            self.states,
            self.transitions,
            self.budget,
            self.exhausted
        ));
        out.push_str(",\"installs\":[");
        for (i, (node, asp)) in self.installs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"node\":");
            push_json_str(out, node);
            out.push_str(",\"asp\":");
            push_json_str(out, asp);
            out.push('}');
        }
        out.push_str("],\"paths\":[");
        for (i, b) in self.budgets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"from\":");
            push_json_str(out, &b.from);
            out.push_str(",\"to\":");
            push_json_str(out, &b.to);
            out.push_str(&format!(",\"hops\":{},\"steps\":{}}}", b.hops, b.steps));
        }
        out.push_str("],\"state\":[");
        for (i, ns) in self.node_state.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"node\":");
            push_json_str(out, &ns.node);
            match ns.entries {
                Some(e) => out.push_str(&format!(",\"entries\":{e}}}")),
                None => out.push_str(",\"entries\":null}"),
            }
        }
        out.push_str("],\"witnesses\":[");
        for (i, w) in self.witnesses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            w.write_json(src, out);
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            d.write_json(src, out);
        }
        out.push_str("]}");
    }

    /// Renders a human-readable summary; witnesses and diagnostics are
    /// resolved against the plan source `src`.
    pub fn render(&self, src: &str) -> String {
        let mut out = format!(
            "plan {} over {}: {}\n  joint termination: {} ({} states, {} transitions{})\n",
            self.plan,
            self.topology,
            if self.accepted() {
                "accepted"
            } else {
                "REJECTED"
            },
            self.joint.as_str(),
            self.states,
            self.transitions,
            if self.exhausted {
                ", budget exhausted"
            } else {
                ""
            }
        );
        out.push_str("  installs:");
        for (node, asp) in &self.installs {
            out.push_str(&format!(" {node}:{asp}"));
        }
        out.push('\n');
        for b in &self.budgets {
            out.push_str(&format!(
                "  path {} -> {}: {} hop(s), worst-case {} steps\n",
                b.from, b.to, b.hops, b.steps
            ));
        }
        for ns in &self.node_state {
            match ns.entries {
                Some(e) => out.push_str(&format!(
                    "  node {}: worst-case state <= {e} entries\n",
                    ns.node
                )),
                None => out.push_str(&format!("  node {}: state unbounded\n", ns.node)),
            }
        }
        for w in &self.witnesses {
            out.push_str(&w.render(src));
            out.push('\n');
        }
        for d in &self.diagnostics {
            out.push_str(&d.render(src));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelcheck::model_check;
    use planp_lang::{compile_front, parse_plan};

    /// Each of these proves termination + delivery on its own (it
    /// re-pins the destination to one fixed host, which the single
    /// checker treats as progress once pinned) — yet deployed on
    /// opposite relays they bounce packets between each other forever.
    const BOUNCE_A: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if ipDst(#1 p) = thisHost()
  then (deliver(p); (ps, ss))
  else (OnRemote(network, (ipDestSet(#1 p, 10.0.3.1), #2 p, #3 p)); (ps + 1, ss))
";
    const BOUNCE_B: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if ipDst(#1 p) = thisHost()
  then (deliver(p); (ps, ss))
  else (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps + 1, ss))
";
    const FORWARDER: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
";

    fn ip(a: u32, b: u32, c: u32, d: u32) -> u32 {
        (a << 24) | (b << 16) | (c << 8) | d
    }

    fn node(name: &str, addr: u32, slices: &[&str]) -> PlanNode {
        PlanNode {
            name: name.to_string(),
            addr,
            slices: slices.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// ha — r1 — r2 — hb, paths both ways.
    fn relay_pair() -> PlanTopology {
        PlanTopology::new(
            "relay_pair",
            vec![
                node("ha", ip(10, 0, 0, 1), &["src"]),
                node("r1", ip(10, 0, 0, 254), &["relays"]),
                node("r2", ip(10, 0, 3, 254), &["relays"]),
                node("hb", ip(10, 0, 3, 1), &["dst"]),
            ],
            vec![vec![1], vec![0, 2], vec![1, 3], vec![2]],
            vec![(0, 3), (3, 0)],
        )
    }

    fn asp(name: &str, src: &str) -> PlanAsp {
        PlanAsp::from_program(name, &compile_front(src).unwrap())
    }

    fn check(plan_src: &str, topo: PlanTopology, asps: Vec<PlanAsp>) -> PlanCheck {
        PlanCheck::new(parse_plan(plan_src).unwrap(), topo, asps).unwrap()
    }

    #[test]
    fn bounce_asps_prove_alone() {
        for src in [BOUNCE_A, BOUNCE_B] {
            let prog = compile_front(src).unwrap();
            let sum = summarize(&prog);
            let r = model_check(&prog, &sum, DEFAULT_STATE_BUDGET);
            assert!(r.termination.is_proved(), "single-program termination");
            assert!(r.delivery.is_proved(), "single-program delivery");
        }
    }

    #[test]
    fn bounce_pair_jointly_loops() {
        let plan = "plan buggy_bounce
topology relay_pair
class data
deploy bounce_a for data on r1
deploy bounce_b for data on r2
";
        let pc = check(
            plan,
            relay_pair(),
            vec![asp("bounce_a", BOUNCE_A), asp("bounce_b", BOUNCE_B)],
        );
        assert_eq!(pc.installs.len(), 2);
        let report = pc.verify();
        assert_eq!(report.joint, Verdict::Violated);
        assert!(!report.accepted());
        assert_eq!(report.witnesses.len(), 1);
        let w = &report.witnesses[0];
        assert_eq!(w.code, "E007");
        // The cycle alternates between the two relays.
        let froms: Vec<&str> = w.hops.iter().map(|h| h.from.as_str()).collect();
        assert!(
            froms.iter().any(|f| f.starts_with("r1/network")),
            "{froms:?}"
        );
        assert!(
            froms.iter().any(|f| f.starts_with("r2/network")),
            "{froms:?}"
        );
        // Witness hop spans point at the plan's deploy lines.
        assert!(plan[w.span.start as usize..]
            .split('\n')
            .next()
            .unwrap()
            .starts_with("deploy"));
        // E007 also lands in the diagnostics under the strict policy.
        assert!(report.errors().iter().any(|d| d.code == "E007"));
    }

    #[test]
    fn forwarder_plan_proves_with_finite_budgets() {
        let plan = "plan relay
topology relay_pair
class data
deploy forwarder for data on relays
";
        let report = check(plan, relay_pair(), vec![asp("forwarder", FORWARDER)]).verify();
        assert_eq!(report.joint, Verdict::Proved);
        assert!(report.accepted(), "{}", report.render(plan));
        assert_eq!(report.budgets.len(), 2);
        assert!(report.max_budget() > 0);
        // Each direction crosses both relays plus the egress host.
        assert_eq!(report.budgets[0].hops, 3);
    }

    #[test]
    fn budget_line_rejects_with_e008() {
        let plan = "plan relay
topology relay_pair
budget steps 1
class data
deploy forwarder for data on relays
";
        let report = check(plan, relay_pair(), vec![asp("forwarder", FORWARDER)]).verify();
        assert!(!report.accepted());
        assert!(report.errors().iter().any(|d| d.code == "E008"));
        // The verdict itself is still proved — only the budget failed.
        assert_eq!(report.joint, Verdict::Proved);
    }

    /// Packet-keyed but evicting with a declared capacity: the state
    /// analysis gives it a Declared(32) entry bound.
    const STATEFUL: &str = "channel network(ps : int, ss : (host, int) hash_table, \
                            p : ip*udp*blob)\n\
                            initstate mkTable(32) is\n\
                            (tblSet(ss, ipSrc(#1 p), 1); tblDel(ss, ipSrc(#1 p));\n\
                             OnRemote(network, p); (ps + 1, ss))";

    /// Packet-keyed with no eviction anywhere: unbounded growth.
    const LEAKY: &str = "channel network(ps : int, ss : (host, int) hash_table, \
                         p : ip*udp*blob) is\n\
                         (tblSet(ss, ipSrc(#1 p), 1); OnRemote(network, p); (ps + 1, ss))";

    #[test]
    fn budget_state_line_rejects_with_e010() {
        let plan = "plan relay
topology relay_pair
budget state 1
class data
deploy stateful for data on relays
";
        let report = check(plan, relay_pair(), vec![asp("stateful", STATEFUL)]).verify();
        assert!(!report.accepted(), "{}", report.render(plan));
        assert!(report.errors().iter().any(|d| d.code == "E010"));
        // Both relays carry the install, each composing 32 entries.
        assert_eq!(report.node_state.len(), 2);
        assert!(report.node_state.iter().all(|ns| ns.entries == Some(32)));
        // The verdict itself is still proved — only the state budget failed.
        assert_eq!(report.joint, Verdict::Proved);
    }

    #[test]
    fn budget_state_within_budget_accepts() {
        let plan = "plan relay
topology relay_pair
budget state 64
class data
deploy stateful for data on relays
";
        let report = check(plan, relay_pair(), vec![asp("stateful", STATEFUL)]).verify();
        assert!(report.accepted(), "{}", report.render(plan));
        assert!(!report.diagnostics.iter().any(|d| d.code == "E010"));
        let rendered = report.render(plan);
        assert!(
            rendered.contains("node r1: worst-case state <= 32 entries"),
            "{rendered}"
        );
    }

    #[test]
    fn unbounded_asp_rejects_under_any_state_budget() {
        let plan = "plan relay
topology relay_pair
budget state 1000000
class data
deploy leaky for data on relays
";
        let report = check(plan, relay_pair(), vec![asp("leaky", LEAKY)]).verify();
        assert!(!report.accepted());
        let errs = report.errors();
        let e = errs.iter().find(|d| d.code == "E010").expect("E010");
        assert!(e.message.contains("unbounded"), "{}", e.message);
        assert!(report.node_state.iter().all(|ns| ns.entries.is_none()));

        // Without a `budget state` line the footprint is still reported
        // but nothing rejects.
        let lax = "plan relay
topology relay_pair
class data
deploy leaky for data on relays
";
        let report = check(lax, relay_pair(), vec![asp("leaky", LEAKY)]).verify();
        assert!(report.accepted(), "{}", report.render(lax));
        assert!(report.render(lax).contains("node r1: state unbounded"));
    }

    #[test]
    fn one_mode_picks_most_covered_node() {
        let plan = "plan relay
topology relay_pair
class data
deploy forwarder for data on one(relays)
";
        let pc = check(plan, relay_pair(), vec![asp("forwarder", FORWARDER)]);
        // Both relays cover both paths; the tie breaks to r1.
        assert_eq!(pc.installs, vec![Install { deploy: 0, node: 1 }]);
    }

    #[test]
    fn plan_lints_fire() {
        let plan = "plan lints
topology relay_pair
class data port 80
class dup port 80
class uncovered port 81
deploy forwarder for data on relays
deploy forwarder for data on nosuch
deploy forwarder for data on src
";
        let fw = || asp("forwarder", FORWARDER);
        let report = check(plan, relay_pair(), vec![fw(), fw(), fw()]).verify();
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"P002"), "{codes:?}"); // dup shadows data
        assert!(codes.contains(&"P003"), "{codes:?}"); // uncovered has no deploy
        assert!(codes.contains(&"P001"), "{codes:?}"); // nosuch + src both unreachable
                                                       // src (the ingress) is never on a path route past the ingress.
        assert!(report.accepted(), "lints are warnings");
    }

    #[test]
    fn l008_flags_unhandled_channel_send() {
        // A single-node deploy that tags packets onto a channel nobody
        // else handles.
        let tagger = "channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(orphan, p); (ps + 1, ss))
channel orphan(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(orphan, p); (ps + 1, ss))
";
        let plan = "plan orphaned
topology relay_pair
class data
deploy tagger for data on r1
";
        let report = check(plan, relay_pair(), vec![asp("tagger", tagger)]).verify();
        assert!(
            report.diagnostics.iter().any(|d| d.code == "L008"),
            "{}",
            report.render(plan)
        );

        // The same ASP on *both* relays handles its own channel.
        let plan2 = "plan paired
topology relay_pair
class data
deploy tagger for data on relays
";
        let report2 = check(plan2, relay_pair(), vec![asp("tagger", tagger)]).verify();
        assert!(!report2.diagnostics.iter().any(|d| d.code == "L008"));
    }

    #[test]
    fn json_is_byte_stable() {
        let plan = "plan buggy_bounce
topology relay_pair
class data
deploy bounce_a for data on r1
deploy bounce_b for data on r2
";
        let pc = check(
            plan,
            relay_pair(),
            vec![asp("bounce_a", BOUNCE_A), asp("bounce_b", BOUNCE_B)],
        );
        let mut a = String::new();
        pc.verify().write_json(plan, &mut a);
        let mut b = String::new();
        pc.verify().write_json(plan, &mut b);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"plan\":\"buggy_bounce\""));
        assert!(a.contains("\"accepted\":false"));
        assert!(a.contains("\"joint\":\"violated\""));
    }
}
