//! Worst-case protocol-state effects: the sixth static analysis.
//!
//! The paper's download-time checks bound *CPU* (termination, cost) but
//! say nothing about *router memory*, yet every `tblSet` with a key
//! derived from packet contents grows a table by one entry per new
//! flow. This module runs an abstract interpretation over the typed AST
//! computing, per channel overload, a **state effect**:
//!
//! * which tables are written (tables are identified by where they live
//!   in the protocol/channel state, resolved through projections and
//!   `let` aliases);
//! * whether each write's key domain is *finite* (constants, globals,
//!   `thisHost()`, and tuples thereof) or *packet-derived* (anything
//!   that can differ across dispatches: packet fields, clock, RNG,
//!   table reads);
//! * the worst-case number of inserts and evictions per dispatch
//!   (composed like the [cost bounds](crate::cost): sequence = sum,
//!   branch = max, handler = sum).
//!
//! Per table, the entry bound is three-tiered ([`EntryBound`]):
//!
//! * all write keys finite → **proved**: the table can never hold more
//!   entries than the summed key-domain widths, statically;
//! * packet-derived keys but the program evicts (`tblDel`/`tblClear`
//!   reaches the table on some path) and the table declares a capacity
//!   (`mkTable(n)`) → **declared**: `n` is a contract the analysis
//!   cannot prove, so the runtime monitors it live
//!   (`state_bound_exceeded` telemetry);
//! * packet-derived keys with no eviction anywhere → **unbounded**,
//!   the `E009` material.
//!
//! The verifier folds this into download verdicts (`E009`, `E010` under
//! [`crate::Policy::with_state_budget`]) and the plan layer composes
//! per-ASP entry bounds against a plan-level `budget state` line. The
//! lints `S001`–`S004` ([`state_lints`]) ride on the same facts.

use crate::diag::Diagnostic;
use crate::duplication::compute_may_copy;
use crate::summary::ProgramSummary;
use planp_lang::prims::{self, PrimClass};
use planp_lang::span::Span;
use planp_lang::tast::{ExnId, TExpr, TExprKind, TProgram};
use planp_lang::types::Type;
use std::collections::{BTreeMap, HashMap};

/// Capacity a default-initialized table gets (mirrors the VM's
/// `Value::default_of` for `hash_table` types).
pub const DEFAULT_TABLE_CAPACITY: u64 = 16;

/// Saturation cap for finite key-domain widths; anything wider is
/// reported as the cap rather than overflowing.
const WIDTH_CAP: u64 = 1 << 16;

/// Where a table lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StateRoot {
    /// The shared protocol state (slot 0 of every channel).
    Proto,
    /// The per-overload channel state of channel index `usize` (slot 1).
    Chan(usize),
    /// A table the analysis could not identify: reached through a
    /// function parameter, or allocated mid-dispatch by `mkTable`.
    Unknown,
}

/// One table the program touches, with its statically derived facts.
#[derive(Debug, Clone, PartialEq)]
pub struct TableState {
    /// Which state slot the table lives in.
    pub root: StateRoot,
    /// Projection path from the root (`#4 ps` is `[3]`).
    pub path: Vec<u32>,
    /// Human-readable name, e.g. `ps`, `#4 ps`, `network#0:ss`.
    pub display: String,
    /// Declared capacity: the `mkTable(n)` hint of the initializer, or
    /// [`DEFAULT_TABLE_CAPACITY`] for default-initialized state. `None`
    /// when the initializer could not be resolved (or the root is
    /// unknown).
    pub capacity: Option<u64>,
    /// Number of `tblSet` sites targeting this table.
    pub writes: u32,
    /// Number of read sites (`tblGet`/`tblHas`/`tblSize`).
    pub reads: u32,
    /// Number of `tblGet` sites among the reads.
    pub gets: u32,
    /// True if any write keys the table on a packet-derived value.
    pub packet_keyed: bool,
    /// Summed key-domain widths of the finite write sites.
    pub finite_width: u64,
    /// True if any `tblDel`/`tblClear` reaches this table.
    pub eviction: bool,
    /// Span of the first write site (for `S001`).
    pub first_write: Option<Span>,
    /// Span of the first packet-keyed write site (the `E009` witness).
    pub first_packet_write: Option<Span>,
    /// Span of the first `tblGet` site (for `S002`).
    pub first_get: Option<Span>,
    /// The derived entry bound.
    pub bound: EntryBound,
}

/// How many entries a table can accumulate over a node's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryBound {
    /// Statically proved: every write key draws from a finite domain of
    /// at most this many values.
    Proved(u64),
    /// Declared, not proved: keys are packet-derived but the program
    /// evicts, so the `mkTable` capacity is taken as a contract the
    /// runtime cross-checks live.
    Declared(u64),
    /// Packet-derived keys with no eviction on any path.
    Unbounded,
}

impl EntryBound {
    /// The numeric bound, `None` when unbounded.
    pub fn entries(&self) -> Option<u64> {
        match self {
            EntryBound::Proved(n) | EntryBound::Declared(n) => Some(*n),
            EntryBound::Unbounded => None,
        }
    }

    /// True unless the bound is [`EntryBound::Unbounded`].
    pub fn is_finite(&self) -> bool {
        !matches!(self, EntryBound::Unbounded)
    }
}

/// Worst-case per-dispatch state operations, composed like the cost
/// bounds: sequence = saturating sum, branch = per-field max.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateCounts {
    /// `tblSet` calls (upper bound per dispatch).
    pub inserts: u64,
    /// `tblDel`/`tblClear` calls (upper bound per dispatch).
    pub evicts: u64,
}

impl StateCounts {
    fn then(self, o: StateCounts) -> StateCounts {
        StateCounts {
            inserts: self.inserts.saturating_add(o.inserts),
            evicts: self.evicts.saturating_add(o.evicts),
        }
    }

    fn or(self, o: StateCounts) -> StateCounts {
        StateCounts {
            inserts: self.inserts.max(o.inserts),
            evicts: self.evicts.max(o.evicts),
        }
    }
}

/// Per-channel state effect.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelState {
    /// Channel name.
    pub name: String,
    /// Overload index within the name group.
    pub overload: u32,
    /// Worst-case inserts/evicts per dispatch.
    pub counts: StateCounts,
    /// Span of the first `tblSet` whose *value* is derived from mutable
    /// state — re-running the dispatch on a duplicated packet writes a
    /// different value (`S003` material).
    pub state_dep_write: Option<Span>,
    /// Span of the first `tblGet` whose `NotFound` escapes the channel
    /// (`S004` material: after a crash-recovery reinstall the table is
    /// empty, so the dispatch fails until state is rebuilt).
    pub unhandled_get: Option<Span>,
}

/// The program-wide state effect: the analysis result folded into
/// [`ProgramSummary`](crate::summary::ProgramSummary).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateReport {
    /// Parallel to `TProgram::channels`.
    pub channels: Vec<ChannelState>,
    /// Every table the program touches, ordered by `(root, path)`.
    pub tables: Vec<TableState>,
}

impl StateReport {
    /// The summed entry bound over all tables — `None` if any table is
    /// unbounded.
    pub fn entry_bound(&self) -> Option<u64> {
        self.tables
            .iter()
            .try_fold(0u64, |acc, t| Some(acc.saturating_add(t.bound.entries()?)))
    }

    /// True when every table's bound is statically *proved* (no
    /// declared-only tier involved).
    pub fn all_proved(&self) -> bool {
        self.tables
            .iter()
            .all(|t| matches!(t.bound, EntryBound::Proved(_)))
    }

    /// Tables with no finite bound (the `E009` witnesses).
    pub fn unbounded_tables(&self) -> impl Iterator<Item = &TableState> {
        self.tables.iter().filter(|t| !t.bound.is_finite())
    }

    /// The worst per-dispatch insert bound over all channels.
    pub fn max_inserts(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.counts.inserts)
            .max()
            .unwrap_or(0)
    }

    /// The per-dispatch insert bound of channel `index` (`0` when out of
    /// range — stateless programs have no channels entry to exceed).
    pub fn inserts_for(&self, index: usize) -> u64 {
        self.channels
            .get(index)
            .map(|c| c.counts.inserts)
            .unwrap_or(0)
    }
}

/// Abstract values of the state interpretation.
#[derive(Debug, Clone, PartialEq)]
enum SVal {
    /// The packet parameter itself.
    Pkt,
    /// Can differ across dispatches: packet contents, clock, RNG,
    /// link-state queries.
    Varying,
    /// Derived from mutable table state (a `tblGet` result, a table
    /// size, …).
    StateRead,
    /// Draws from a domain of at most `n` distinct values over the
    /// node's lifetime (literals, globals, `thisHost()`).
    Finite(u64),
    /// A piece of mutable state, addressed root + projection path.
    State(StateRoot, Vec<u32>),
    /// A tuple of abstract components.
    Tup(Vec<SVal>),
    /// Unknown (function parameters).
    Opaque,
}

impl SVal {
    /// Key-domain width when finite; `None` for packet-derived keys.
    fn key_width(&self) -> Option<u64> {
        match self {
            SVal::Finite(n) => Some(*n),
            SVal::Tup(items) => items
                .iter()
                .try_fold(1u64, |acc, i| i.key_width().map(|w| acc.saturating_mul(w)))
                .map(|w| w.min(WIDTH_CAP)),
            _ => None,
        }
    }

    /// True if the value is (or contains) something read from mutable
    /// state.
    fn reads_state(&self) -> bool {
        match self {
            SVal::StateRead | SVal::State(..) => true,
            SVal::Tup(items) => items.iter().any(SVal::reads_state),
            _ => false,
        }
    }

    /// True if the value can differ across dispatches.
    fn varies(&self) -> bool {
        match self {
            SVal::Pkt | SVal::Varying | SVal::StateRead | SVal::Opaque | SVal::State(..) => true,
            SVal::Finite(_) => false,
            SVal::Tup(items) => items.iter().any(SVal::varies),
        }
    }

    /// Join for branch merges. Two finite domains always *sum* — even
    /// when the abstractions are equal, the underlying values can
    /// differ (two distinct constants both abstract to `Finite(1)`).
    fn join(self, o: SVal) -> SVal {
        match (self, o) {
            (SVal::Finite(a), SVal::Finite(b)) => SVal::Finite(a.saturating_add(b).min(WIDTH_CAP)),
            (a, b) if a == b => a,
            (SVal::Tup(a), SVal::Tup(b)) if a.len() == b.len() => {
                SVal::Tup(a.into_iter().zip(b).map(|(x, y)| x.join(y)).collect())
            }
            (a, b) => {
                if a.reads_state() || b.reads_state() {
                    SVal::StateRead
                } else if a.varies() || b.varies() {
                    SVal::Varying
                } else {
                    SVal::Opaque
                }
            }
        }
    }
}

/// Result of mixing argument abstractions through a pure operator.
fn mix(args: &[SVal]) -> SVal {
    if args.iter().any(SVal::reads_state) {
        return SVal::StateRead;
    }
    let mut width = 1u64;
    for a in args {
        match a.key_width() {
            Some(w) => width = width.saturating_mul(w).min(WIDTH_CAP),
            None => {
                return if args.iter().any(SVal::varies) {
                    SVal::Varying
                } else {
                    SVal::Opaque
                }
            }
        }
    }
    SVal::Finite(width)
}

type TableId = (StateRoot, Vec<u32>);

#[derive(Debug, Default)]
struct TableAcc {
    writes: u32,
    reads: u32,
    gets: u32,
    packet_keyed: bool,
    finite_width: u64,
    eviction: bool,
    first_write: Option<Span>,
    first_packet_write: Option<Span>,
    first_get: Option<Span>,
}

/// Per-function precomputed facts.
#[derive(Debug, Clone, Copy, Default)]
struct FunInfo {
    counts: StateCounts,
    state_dep_write: bool,
    unhandled_get: bool,
}

/// Accumulator for the body currently being walked (a channel or a
/// function).
#[derive(Debug, Default)]
struct BodyAcc {
    state_dep_write: Option<Span>,
    unhandled_gets: Vec<(Option<TableId>, Span)>,
}

struct Cx {
    notfound: Option<ExnId>,
    fun_infos: Vec<FunInfo>,
    tables: BTreeMap<TableId, TableAcc>,
}

impl Cx {
    fn table(&mut self, id: TableId) -> &mut TableAcc {
        self.tables.entry(id).or_default()
    }

    /// Walks `e`, returning its abstract value and per-dispatch counts.
    /// `handled` counts enclosing handlers that catch `NotFound`.
    fn walk(
        &mut self,
        e: &TExpr,
        env: &mut HashMap<u32, SVal>,
        acc: &mut BodyAcc,
        handled: u32,
    ) -> (SVal, StateCounts) {
        use TExprKind::*;
        let zero = StateCounts::default();
        match &e.kind {
            Int(_) | Bool(_) | Str(_) | Char(_) | Unit | Host(_) => (SVal::Finite(1), zero),
            Global { .. } => (SVal::Finite(1), zero),
            Local { slot, .. } => (env.get(slot).cloned().unwrap_or(SVal::Opaque), zero),
            Tuple(items) => {
                let mut vals = Vec::with_capacity(items.len());
                let mut c = zero;
                for it in items {
                    let (v, ic) = self.walk(it, env, acc, handled);
                    vals.push(v);
                    c = c.then(ic);
                }
                (SVal::Tup(vals), c)
            }
            List(items) | Seq(items) => {
                let mut c = zero;
                let mut last = SVal::Finite(1);
                for it in items {
                    let (v, ic) = self.walk(it, env, acc, handled);
                    last = v;
                    c = c.then(ic);
                }
                let v = if matches!(&e.kind, Seq(_)) {
                    last
                } else {
                    SVal::Opaque
                };
                (v, c)
            }
            Proj(i, inner) => {
                let (v, c) = self.walk(inner, env, acc, handled);
                let v = match v {
                    SVal::Pkt => SVal::Varying,
                    SVal::State(root, mut path) => {
                        path.push(*i);
                        SVal::State(root, path)
                    }
                    SVal::Tup(items) => items.get(*i as usize).cloned().unwrap_or(SVal::Opaque),
                    other => other,
                };
                (v, c)
            }
            Let {
                slot, init, body, ..
            } => {
                let (iv, ic) = self.walk(init, env, acc, handled);
                let prev = env.insert(*slot, iv);
                let (bv, bc) = self.walk(body, env, acc, handled);
                match prev {
                    Some(p) => {
                        env.insert(*slot, p);
                    }
                    None => {
                        env.remove(slot);
                    }
                }
                (bv, ic.then(bc))
            }
            If(c, t, f) => {
                let (_, cc) = self.walk(c, env, acc, handled);
                let (tv, tc) = self.walk(t, env, acc, handled);
                let (fv, fc) = self.walk(f, env, acc, handled);
                (tv.join(fv), cc.then(tc.or(fc)))
            }
            Binop(_, a, b) => {
                let (av, ac) = self.walk(a, env, acc, handled);
                let (bv, bc) = self.walk(b, env, acc, handled);
                (mix(&[av, bv]), ac.then(bc))
            }
            Unop(_, a) => {
                let (av, ac) = self.walk(a, env, acc, handled);
                (mix(&[av]), ac)
            }
            Raise(_) => (SVal::Opaque, zero),
            Handle(body, exn, handler) => {
                // A wildcard or NotFound handler shields `tblGet`s in the
                // body; counts sum conservatively (body may run up to the
                // raise, then the handler).
                let shields = exn.is_none() || *exn == self.notfound;
                let inner = if shields { handled + 1 } else { handled };
                let (bv, bc) = self.walk(body, env, acc, inner);
                let (hv, hc) = self.walk(handler, env, acc, handled);
                (bv.join(hv), bc.then(hc))
            }
            OnRemote { pkt, .. } => {
                let (_, c) = self.walk(pkt, env, acc, handled);
                (SVal::Finite(1), c)
            }
            OnNeighbor { host, pkt, .. } => {
                let (_, hc) = self.walk(host, env, acc, handled);
                let (_, pc) = self.walk(pkt, env, acc, handled);
                (SVal::Finite(1), hc.then(pc))
            }
            CallFun { index, args, .. } => {
                let mut c = zero;
                for a in args {
                    let (_, ac) = self.walk(a, env, acc, handled);
                    c = c.then(ac);
                }
                let info = self
                    .fun_infos
                    .get(*index as usize)
                    .copied()
                    .unwrap_or_default();
                if info.state_dep_write && acc.state_dep_write.is_none() {
                    acc.state_dep_write = Some(e.span);
                }
                if info.unhandled_get && handled == 0 {
                    acc.unhandled_gets.push((None, e.span));
                }
                (SVal::Opaque, c.then(info.counts))
            }
            CallPrim { prim, args } => {
                let mut vals = Vec::with_capacity(args.len());
                let mut c = zero;
                for a in args {
                    let (v, ac) = self.walk(a, env, acc, handled);
                    vals.push(v);
                    c = c.then(ac);
                }
                let sig = prims::table().sig(*prim);
                match sig.name {
                    "tblSet" => {
                        let id = target_of(&vals[0]);
                        let width = vals[1].key_width();
                        let value_reads_state = vals[2].reads_state();
                        let t = self.table(id);
                        t.writes += 1;
                        if t.first_write.is_none() {
                            t.first_write = Some(e.span);
                        }
                        match width {
                            Some(w) => t.finite_width = t.finite_width.saturating_add(w),
                            None => {
                                t.packet_keyed = true;
                                if t.first_packet_write.is_none() {
                                    t.first_packet_write = Some(e.span);
                                }
                            }
                        }
                        if value_reads_state && acc.state_dep_write.is_none() {
                            acc.state_dep_write = Some(e.span);
                        }
                        (
                            SVal::Finite(1),
                            c.then(StateCounts {
                                inserts: 1,
                                evicts: 0,
                            }),
                        )
                    }
                    "tblDel" | "tblClear" => {
                        self.table(target_of(&vals[0])).eviction = true;
                        (
                            SVal::Finite(1),
                            c.then(StateCounts {
                                inserts: 0,
                                evicts: 1,
                            }),
                        )
                    }
                    "tblGet" => {
                        let id = target_of(&vals[0]);
                        let t = self.table(id.clone());
                        t.reads += 1;
                        t.gets += 1;
                        if t.first_get.is_none() {
                            t.first_get = Some(e.span);
                        }
                        if handled == 0 {
                            acc.unhandled_gets.push((Some(id), e.span));
                        }
                        (SVal::StateRead, c)
                    }
                    "tblHas" | "tblSize" => {
                        self.table(target_of(&vals[0])).reads += 1;
                        (SVal::StateRead, c)
                    }
                    "mkTable" => (SVal::State(StateRoot::Unknown, Vec::new()), c),
                    "thisHost" => (SVal::Finite(1), c),
                    _ => {
                        let v = match sig.class {
                            PrimClass::Pure | PrimClass::Alloc => mix(&vals),
                            PrimClass::Env => SVal::Varying,
                            PrimClass::Io | PrimClass::StateWrite => SVal::Finite(1),
                        };
                        (v, c)
                    }
                }
            }
        }
    }
}

/// The table a `tbl*` primitive operates on.
fn target_of(v: &SVal) -> TableId {
    match v {
        SVal::State(root, path) => (*root, path.clone()),
        _ => (StateRoot::Unknown, Vec::new()),
    }
}

/// Table positions inside a state type, as projection paths.
fn type_table_paths(ty: &Type, path: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
    match ty {
        Type::Table(..) => out.push(path.clone()),
        Type::Tuple(items) => {
            for (i, t) in items.iter().enumerate() {
                path.push(i as u32);
                type_table_paths(t, path, out);
                path.pop();
            }
        }
        _ => {}
    }
}

/// Resolves the `mkTable` capacity hint reachable through `path` in an
/// initializer expression; `None` when the shape is too dynamic.
fn resolve_cap(e: &TExpr, path: &[u32]) -> Option<u64> {
    match &e.kind {
        TExprKind::CallPrim { prim, args } if path.is_empty() => {
            if prims::table().sig(*prim).name != "mkTable" {
                return None;
            }
            match args.first().map(|a| &a.kind) {
                Some(TExprKind::Int(n)) => Some((*n).max(0) as u64),
                _ => None,
            }
        }
        TExprKind::Tuple(items) => {
            let (&i, rest) = path.split_first()?;
            resolve_cap(items.get(i as usize)?, rest)
        }
        TExprKind::Let { body, .. } => resolve_cap(body, path),
        TExprKind::Seq(items) => resolve_cap(items.last()?, path),
        _ => None,
    }
}

/// Declared capacities for every table position of the program's state,
/// keyed by table identity.
fn capacities(prog: &TProgram) -> BTreeMap<TableId, Option<u64>> {
    let mut caps = BTreeMap::new();
    let fill = |root: StateRoot,
                ty: &Type,
                init: Option<&TExpr>,
                caps: &mut BTreeMap<TableId, Option<u64>>| {
        let mut paths = Vec::new();
        type_table_paths(ty, &mut Vec::new(), &mut paths);
        for p in paths {
            let cap = match init {
                Some(e) => resolve_cap(e, &p),
                None => Some(DEFAULT_TABLE_CAPACITY),
            };
            caps.insert((root, p), cap);
        }
    };
    fill(
        StateRoot::Proto,
        &prog.proto_ty,
        prog.proto_init.as_ref(),
        &mut caps,
    );
    for (i, ch) in prog.channels.iter().enumerate() {
        fill(
            StateRoot::Chan(i),
            &ch.ss_ty,
            ch.initstate.as_ref(),
            &mut caps,
        );
    }
    caps
}

/// Human-readable name for a table identity.
fn display_name(prog: &TProgram, root: StateRoot, path: &[u32]) -> String {
    let mut s = match root {
        StateRoot::Proto => prog
            .channels
            .first()
            .map(|c| c.ps_name.clone())
            .unwrap_or_else(|| "ps".to_string()),
        StateRoot::Chan(i) => {
            let ch = &prog.channels[i];
            format!("{}#{}:{}", ch.name, ch.overload, ch.ss_name)
        }
        StateRoot::Unknown => "?".to_string(),
    };
    for i in path {
        s = format!("#{} {}", i + 1, s);
    }
    s
}

/// Computes the program's state effect.
pub fn state_effects(prog: &TProgram) -> StateReport {
    let mut cx = Cx {
        notfound: prog.exn_id("NotFound"),
        fun_infos: Vec::with_capacity(prog.funs.len()),
        tables: BTreeMap::new(),
    };
    // Functions first, in declaration order (PLAN-P has no recursion);
    // parameters are opaque, so tables passed into functions degrade to
    // the unknown root.
    for f in &prog.funs {
        let mut env = HashMap::new();
        for (slot, _) in f.params.iter().enumerate() {
            env.insert(slot as u32, SVal::Opaque);
        }
        let mut acc = BodyAcc::default();
        let (_, counts) = cx.walk(&f.body, &mut env, &mut acc, 0);
        cx.fun_infos.push(FunInfo {
            counts,
            state_dep_write: acc.state_dep_write.is_some(),
            unhandled_get: !acc.unhandled_gets.is_empty(),
        });
    }
    let mut channels = Vec::with_capacity(prog.channels.len());
    for (i, ch) in prog.channels.iter().enumerate() {
        let mut env = HashMap::new();
        env.insert(0, SVal::State(StateRoot::Proto, Vec::new()));
        env.insert(1, SVal::State(StateRoot::Chan(i), Vec::new()));
        env.insert(2, SVal::Pkt);
        let mut acc = BodyAcc::default();
        let (_, counts) = cx.walk(&ch.body, &mut env, &mut acc, 0);
        channels.push((
            ChannelState {
                name: ch.name.clone(),
                overload: ch.overload,
                counts,
                state_dep_write: acc.state_dep_write,
                unhandled_get: None,
            },
            acc.unhandled_gets,
        ));
    }
    let caps = capacities(prog);
    let written = |id: &Option<TableId>| match id {
        Some(id) => cx.tables.get(id).map(|t| t.writes > 0).unwrap_or(false),
        None => true,
    };
    let channels = channels
        .into_iter()
        .map(|(mut cs, gets)| {
            cs.unhandled_get = gets.iter().find(|(id, _)| written(id)).map(|(_, s)| *s);
            cs
        })
        .collect();
    let tables = cx
        .tables
        .into_iter()
        .map(|((root, path), acc)| {
            let capacity = caps.get(&(root, path.clone())).copied().flatten();
            let bound = if acc.writes == 0 {
                EntryBound::Proved(0)
            } else if !acc.packet_keyed {
                EntryBound::Proved(acc.finite_width.min(WIDTH_CAP))
            } else if acc.eviction {
                match capacity {
                    Some(c) => EntryBound::Declared(c),
                    None => EntryBound::Unbounded,
                }
            } else {
                EntryBound::Unbounded
            };
            TableState {
                display: display_name(prog, root, &path),
                root,
                path,
                capacity,
                writes: acc.writes,
                reads: acc.reads,
                gets: acc.gets,
                packet_keyed: acc.packet_keyed,
                finite_width: acc.finite_width,
                eviction: acc.eviction,
                first_write: acc.first_write,
                first_packet_write: acc.first_packet_write,
                first_get: acc.first_get,
                bound,
            }
        })
        .collect();
    StateReport { channels, tables }
}

/// The state lints:
///
/// | code | finding |
/// |------|---------|
/// | S001 | table written but never read |
/// | S002 | `tblGet` on a table that is never written (always raises `NotFound`) |
/// | S003 | non-idempotent state write in a channel reachable from a duplicating send |
/// | S004 | a state read whose `NotFound` escapes the channel (fails after crash recovery) |
///
/// Findings are sorted by source position then code, like
/// [`crate::lint`].
pub fn state_lints(prog: &TProgram, sum: &ProgramSummary) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let st = &sum.state;
    for t in &st.tables {
        if t.writes > 0 && t.reads == 0 {
            if let Some(span) = t.first_write {
                out.push(
                    Diagnostic::warning(
                        "S001",
                        span,
                        format!("table `{}` is written but never read", t.display),
                    )
                    .note("every insert is dead weight; drop the writes or add a reader"),
                );
            }
        }
        if t.gets > 0 && t.writes == 0 {
            if let Some(span) = t.first_get {
                out.push(
                    Diagnostic::warning(
                        "S002",
                        span,
                        format!(
                            "`tblGet` on table `{}`, which is never written — it always \
                             raises NotFound",
                            t.display
                        ),
                    )
                    .note("tables start empty; without a tblSet this lookup cannot succeed"),
                );
            }
        }
    }
    // S003: a channel whose dispatches can arrive as duplicated copies
    // (it is the target of a send from a may-copy channel) must keep its
    // state writes idempotent — a value derived from mutable state is
    // re-derived differently on the copy.
    let dup = compute_may_copy(prog, sum);
    let mut exposed = vec![false; prog.channels.len()];
    for (i, es) in sum.channels.iter().enumerate() {
        if !dup.may_copy.get(i).copied().unwrap_or(false) {
            continue;
        }
        for site in &es.sites {
            if let Some(e) = exposed.get_mut(site.target) {
                *e = true;
            }
        }
    }
    for (i, cs) in st.channels.iter().enumerate() {
        if exposed[i] {
            if let Some(span) = cs.state_dep_write {
                out.push(
                    Diagnostic::warning(
                        "S003",
                        span,
                        format!(
                            "channel `{}` may receive duplicated packets but this state \
                             write depends on mutable state",
                            cs.name
                        ),
                    )
                    .note(
                        "a duplicate dispatch re-reads the table after the first copy \
                         mutated it, so the copies write different values; derive the \
                         value from the packet alone",
                    ),
                );
            }
        }
        if let Some(span) = cs.unhandled_get {
            out.push(
                Diagnostic::warning(
                    "S004",
                    span,
                    format!(
                        "state read in channel `{}` raises NotFound out of the channel",
                        cs.name
                    ),
                )
                .note(
                    "crash recovery reinstalls the program with empty tables; until the \
                     state is rebuilt every dispatch through this read fails — handle \
                     NotFound with a refetch or default path",
                ),
            );
        }
    }
    out.sort_by_key(|d| (d.span.start, d.span.end, d.code));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use planp_lang::compile_front;

    fn effects(src: &str) -> StateReport {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        state_effects(&tp)
    }

    fn lints(src: &str) -> Vec<&'static str> {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let sum = summarize(&tp);
        state_lints(&tp, &sum).iter().map(|d| d.code).collect()
    }

    const STATELESS: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                             (OnRemote(network, p); (ps + 1, ss))";

    #[test]
    fn stateless_program_has_no_tables() {
        let r = effects(STATELESS);
        assert!(r.tables.is_empty());
        assert_eq!(r.entry_bound(), Some(0));
        assert!(r.all_proved());
        assert_eq!(r.max_inserts(), 0);
    }

    const LEAK: &str = "channel network(ps : unit, ss : (host, int) hash_table, \
                        p : ip*udp*blob) is\n\
                        (tblSet(ss, ipSrc(#1 p), 1); OnRemote(network, p); (ps, ss))";

    #[test]
    fn packet_keyed_write_without_eviction_is_unbounded() {
        let r = effects(LEAK);
        assert_eq!(r.tables.len(), 1);
        let t = &r.tables[0];
        assert_eq!(t.root, StateRoot::Chan(0));
        assert!(t.packet_keyed);
        assert!(!t.eviction);
        assert_eq!(t.bound, EntryBound::Unbounded);
        assert!(t.first_packet_write.is_some());
        assert_eq!(r.entry_bound(), None);
        assert_eq!(r.max_inserts(), 1);
        assert_eq!(r.channels[0].counts.inserts, 1);
    }

    const EVICTING: &str = "channel network(ps : unit, ss : (host, int) hash_table, \
                            p : ip*udp*blob)\n\
                            initstate mkTable(32) is\n\
                            (tblSet(ss, ipSrc(#1 p), 1); tblDel(ss, ipSrc(#1 p));\n\
                             OnRemote(network, p); (ps, ss))";

    #[test]
    fn eviction_with_declared_capacity_is_declared_bound() {
        let r = effects(EVICTING);
        let t = &r.tables[0];
        assert!(t.packet_keyed);
        assert!(t.eviction);
        assert_eq!(t.capacity, Some(32));
        assert_eq!(t.bound, EntryBound::Declared(32));
        assert_eq!(r.entry_bound(), Some(32));
        assert!(!r.all_proved());
        assert_eq!(r.channels[0].counts.evicts, 1);
    }

    const FINITE: &str = "val a : host = 10.0.0.1\n\
                          channel network(ps : unit, ss : (host, int) hash_table, \
                          p : ip*udp*blob) is\n\
                          (tblSet(ss, a, 1); tblSet(ss, thisHost(), 2); \
                           OnRemote(network, p); (ps, ss))";

    #[test]
    fn finite_keys_prove_a_bound() {
        let r = effects(FINITE);
        let t = &r.tables[0];
        assert!(!t.packet_keyed);
        assert_eq!(t.bound, EntryBound::Proved(2));
        assert_eq!(r.entry_bound(), Some(2));
        assert!(r.all_proved());
        // Default-initialized state still reports the default capacity.
        assert_eq!(t.capacity, Some(DEFAULT_TABLE_CAPACITY));
    }

    #[test]
    fn branch_joins_sum_finite_widths_and_max_inserts() {
        let src = "val a : host = 10.0.0.1\n\
                   val b : host = 10.0.0.2\n\
                   channel network(ps : unit, ss : (host, int) hash_table, \
                   p : ip*udp*blob) is\n\
                   (tblSet(ss, if udpDst(#2 p) = 1 then a else b, 1); \
                    OnRemote(network, p); (ps, ss))";
        let r = effects(src);
        let t = &r.tables[0];
        assert!(!t.packet_keyed, "a two-way join of constants stays finite");
        assert_eq!(t.bound, EntryBound::Proved(2));
        assert_eq!(r.max_inserts(), 1);
    }

    #[test]
    fn proto_state_is_shared_across_overloads() {
        let src = "val a : host = 10.0.0.1\n\
                   channel network(ps : (host, int) hash_table, ss : unit, \
                   p : ip*udp*blob) is\n\
                   (tblSet(ps, a, 1); OnRemote(network, p); (ps, ss))\n\
                   channel network(ps : (host, int) hash_table, ss : unit, \
                   p : ip*tcp*blob) is\n\
                   (tblSet(ps, a, 2); OnRemote(network, p); (ps, ss))";
        let r = effects(src);
        assert_eq!(r.tables.len(), 1, "both overloads hit the same proto table");
        assert_eq!(r.tables[0].root, StateRoot::Proto);
        assert_eq!(r.tables[0].writes, 2);
        assert_eq!(r.tables[0].bound, EntryBound::Proved(2));
    }

    #[test]
    fn let_alias_and_projection_resolve_the_table() {
        let src = "channel network(ps : int * ((host, int) hash_table), ss : unit, \
                   p : ip*udp*blob)\n\
                   is\n\
                   let val buf : (host, int) hash_table = #2 ps in\n\
                     (tblSet(buf, ipSrc(#1 p), 1); OnRemote(network, p); (ps, ss))\n\
                   end";
        let r = effects(src);
        assert_eq!(r.tables.len(), 1);
        let t = &r.tables[0];
        assert_eq!(t.root, StateRoot::Proto);
        assert_eq!(t.path, vec![1]);
        assert_eq!(t.display, "#2 ps");
        assert_eq!(t.capacity, Some(DEFAULT_TABLE_CAPACITY));
    }

    #[test]
    fn lint_s001_written_never_read() {
        assert_eq!(lints(LEAK), vec!["S001"]);
    }

    #[test]
    fn lint_s002_read_only_table() {
        let src = "channel network(ps : unit, ss : (host, int) hash_table, \
                   p : ip*udp*blob) is\n\
                   ((tblGet(ss, ipSrc(#1 p)) handle NotFound => 0); \
                    OnRemote(network, p); (ps, ss))";
        assert_eq!(lints(src), vec!["S002"]);
    }

    #[test]
    fn lint_s004_unhandled_state_read() {
        let src = "channel network(ps : unit, ss : (host, int) hash_table, \
                   p : ip*udp*blob) is\n\
                   (tblSet(ss, ipSrc(#1 p), tblGet(ss, ipSrc(#1 p)) + 1); \
                    OnRemote(network, p); (ps, ss))";
        let codes = lints(src);
        assert!(codes.contains(&"S004"), "{codes:?}");
        // A wildcard handler shields it.
        let handled = "channel network(ps : unit, ss : (host, int) hash_table, \
                       p : ip*udp*blob) is\n\
                       ((tblSet(ss, ipSrc(#1 p), tblGet(ss, ipSrc(#1 p)) + 1); \
                         OnRemote(network, p); (ps, ss))\n\
                        handle _ => (OnRemote(network, p); (ps, ss)))";
        assert!(!lints(handled).contains(&"S004"), "{:?}", lints(handled));
    }

    #[test]
    fn lint_s003_duplicated_non_idempotent_write() {
        // `network` multicasts toward `sink` (a may-copy send); `sink`
        // writes a value derived from its own table.
        let src = "channel sink(ps : unit, ss : (host, int) hash_table, \
                   p : ip*udp*blob) is\n\
                   ((tblSet(ss, ipSrc(#1 p), tblGet(ss, ipSrc(#1 p)) + 1) \
                     handle NotFound => tblSet(ss, ipSrc(#1 p), 1)); \
                    OnRemote(sink, p); (ps, ss))\n\
                   channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(sink, (ipDestSet(#1 p, 224.0.0.1), #2 p, #3 p)); (ps, ss))";
        let codes = lints(src);
        assert!(codes.contains(&"S003"), "{codes:?}");
    }

    #[test]
    fn counts_compose_like_cost_bounds() {
        let src = "val a : host = 10.0.0.1\n\
                   channel network(ps : unit, ss : (host, int) hash_table, \
                   p : ip*udp*blob) is\n\
                   (if udpDst(#2 p) = 1 then (tblSet(ss, a, 1); tblSet(ss, a, 2); ())\n\
                    else tblSet(ss, a, 3);\n\
                    OnRemote(network, p); (ps, ss))";
        let r = effects(src);
        assert_eq!(r.channels[0].counts.inserts, 2, "branch max, sequence sum");
    }
}
