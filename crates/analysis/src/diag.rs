//! Structured diagnostics with source-snippet rendering and byte-stable
//! JSON output.
//!
//! Every finding of the lint passes ([`crate::lint`]) and every
//! policy-required verifier rejection is representable as a
//! [`Diagnostic`]: a stable code, a severity, a source [`Span`], a
//! message, and optional notes. Tooling renders diagnostics either as
//! human text with line/column carets (the `planpc --lint` and
//! `planp_lint` output) or as deterministic JSON (the `--json` machine
//! form, byte-identical for identical input).

use planp_lang::span::{line_col, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not affect acceptance (unless warnings are denied).
    Warning,
    /// The program was rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One structured finding, pointing at a span of PLAN-P source.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`L001`…, `E001`…).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Location of the problem.
    pub span: Span,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
    /// Supplementary notes rendered under the snippet.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a warning.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Creates an error.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Appends a note (builder style).
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic with a caret snippet resolved against
    /// `src`:
    ///
    /// ```text
    /// warning[L004] at 2:4: condition is always true
    ///   2 | if true then (ps, ss) else (ps, ss)
    ///     |    ^^^^
    ///   note: the else branch is unreachable
    /// ```
    pub fn render(&self, src: &str) -> String {
        let lc = line_col(src, self.span.start);
        let mut out = format!(
            "{}[{}] at {}: {}",
            self.severity, self.code, lc, self.message
        );
        if let Some(snippet) = render_snippet(src, self.span) {
            out.push('\n');
            out.push_str(&snippet);
        }
        for note in &self.notes {
            out.push('\n');
            out.push_str("  note: ");
            out.push_str(note);
        }
        out
    }

    /// Appends the byte-stable JSON form to `out`. Key order is fixed:
    /// `code`, `severity`, `line`, `col`, `start`, `end`, `message`,
    /// `notes`.
    pub fn write_json(&self, src: &str, out: &mut String) {
        let lc = line_col(src, self.span.start);
        out.push_str("{\"code\":");
        push_json_str(out, self.code);
        out.push_str(",\"severity\":");
        push_json_str(out, &self.severity.to_string());
        out.push_str(&format!(
            ",\"line\":{},\"col\":{},\"start\":{},\"end\":{},\"message\":",
            lc.line, lc.col, self.span.start, self.span.end
        ));
        push_json_str(out, &self.message);
        out.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(out, n);
        }
        out.push_str("]}");
    }
}

/// The source-free rendering: `severity[code]: message`. Use
/// [`Diagnostic::render`] when the source text is available — it adds
/// the line/column position and a caret snippet.
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Renders the source line containing `span.start` with a caret line
/// underneath; `None` when the span does not resolve into `src` (e.g. a
/// dummy span against unrelated source).
pub fn render_snippet(src: &str, span: Span) -> Option<String> {
    let start = span.start as usize;
    if start > src.len() || src.is_empty() {
        return None;
    }
    let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = src[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(src.len());
    let text = &src[line_start..line_end];
    if text.is_empty() {
        return None;
    }
    let lc = line_col(src, span.start);
    let gutter = lc.line.to_string();
    let col = (start - line_start).min(text.len());
    // Carets cover the span, clipped to the first line.
    let width = (span.end.saturating_sub(span.start) as usize)
        .min(text.len() - col)
        .max(1);
    let mut out = format!("  {gutter} | {text}\n");
    out.push_str(&format!(
        "  {} | {}{}",
        " ".repeat(gutter.len()),
        " ".repeat(col),
        "^".repeat(width)
    ));
    Some(out)
}

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_caret_and_note() {
        let src = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\nif true then (ps, ss) else (ps, ss)";
        let span = Span::new(61, 65); // `true`
        let d = Diagnostic::warning("L004", span, "condition is always true")
            .note("the else branch is unreachable");
        let r = d.render(src);
        assert!(r.starts_with("warning[L004] at 2:4: condition is always true"));
        assert!(r.contains("| if true then"));
        assert!(r.contains("^^^^"));
        assert!(r.contains("note: the else branch is unreachable"));
    }

    #[test]
    fn json_is_byte_stable() {
        let src = "val x : int = 1";
        let d = Diagnostic::warning("L001", Span::new(0, 15), "unused `val` binding `x`")
            .note("remove it or reference it");
        let mut a = String::new();
        d.write_json(src, &mut a);
        let mut b = String::new();
        d.write_json(src, &mut b);
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"code\":\"L001\",\"severity\":\"warning\",\"line\":1,\"col\":1,\"start\":0,\"end\":15,\
             \"message\":\"unused `val` binding `x`\",\"notes\":[\"remove it or reference it\"]}"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn snippet_handles_dummy_span() {
        assert!(render_snippet("", Span::dummy()).is_none());
        assert!(render_snippet("abc", Span::new(100, 101)).is_none());
    }
}
