//! Counterexample witnesses for the explicit-state model checker
//! ([`crate::modelcheck`]).
//!
//! A witness is the concrete chain of channel dispatches and send sites
//! that closes a packet loop or drops a packet — the *why* behind an
//! exhaustive-checker rejection. Witnesses render as human text with a
//! caret snippet at each hop (through the same machinery as
//! [`crate::diag`]) and export as byte-stable JSON, so every reported
//! violation can be replayed and machine-checked.

use crate::diag::{push_json_str, render_snippet, Diagnostic};
use crate::summary::SendKind;
use planp_lang::span::{line_col, Span};

/// One dispatch hop of a counterexample trace: a send site firing on
/// one channel and re-entering another (or the same) channel.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessHop {
    /// Dispatching channel, as `name#overload`.
    pub from: String,
    /// Channel the packet re-enters, as `name#overload`.
    pub to: String,
    /// Send flavor.
    pub kind: SendKind,
    /// Rendered abstract destination of the packet *after* the hop.
    pub dest: String,
    /// True if the hop makes progress toward a fixed destination (and
    /// thus cannot, by itself, sustain a loop).
    pub progress: bool,
    /// Source location of the send site.
    pub span: Span,
}

impl WitnessHop {
    fn kind_str(&self) -> &'static str {
        match self.kind {
            SendKind::Remote => "OnRemote",
            SendKind::Neighbor => "OnNeighbor",
        }
    }

    /// One-line summary of the hop (used for diagnostic notes).
    pub fn describe(&self, n: usize) -> String {
        format!(
            "hop {n}: {} -> {} via {}, destination = {} ({})",
            self.from,
            self.to,
            self.kind_str(),
            self.dest,
            if self.progress { "progress" } else { "restart" }
        )
    }
}

/// What a [`Witness`] demonstrates.
#[derive(Debug, Clone, PartialEq)]
pub enum WitnessKind {
    /// The packet re-enters a previously visited state:
    /// `hops[cycle_start..]` form the loop, the hops before it the
    /// shortest prefix reaching it from an entry channel.
    Loop {
        /// Index into [`Witness::hops`] where the cycle begins.
        cycle_start: usize,
    },
    /// An execution path neither forwards nor delivers the packet.
    Drop,
    /// An exception may escape the channel, killing the packet.
    Exception,
}

impl WitnessKind {
    /// Stable machine name (`loop`, `drop`, `exception`).
    pub fn as_str(&self) -> &'static str {
        match self {
            WitnessKind::Loop { .. } => "loop",
            WitnessKind::Drop => "drop",
            WitnessKind::Exception => "exception",
        }
    }
}

/// A minimal counterexample reconstructed from the explored state
/// graph: code `E005` for termination violations (packet loops), `E006`
/// for delivery violations (drops and escaping exceptions).
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// Diagnostic code: `E005` (termination) or `E006` (delivery).
    pub code: &'static str,
    /// What the witness demonstrates.
    pub kind: WitnessKind,
    /// The channel the violation anchors to, as `name#overload`.
    pub channel: String,
    /// Human-readable description.
    pub message: String,
    /// Anchor location: the restart send closing the loop, or the
    /// branch arm that drops the packet.
    pub span: Span,
    /// The dispatch chain (empty for drop/exception witnesses, where
    /// the violating channel is itself an entry point).
    pub hops: Vec<WitnessHop>,
}

impl Witness {
    /// Converts the witness into a [`Diagnostic`] carrying the hop
    /// chain as notes.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let mut d = Diagnostic::error(self.code, self.span, self.message.clone());
        for (i, h) in self.hops.iter().enumerate() {
            d = d.note(h.describe(i + 1));
        }
        if let WitnessKind::Loop { cycle_start } = self.kind {
            d = d.note(format!(
                "hops {}..{} repeat forever",
                cycle_start + 1,
                self.hops.len()
            ));
        }
        d
    }

    /// Renders the witness with a caret snippet at each hop:
    ///
    /// ```text
    /// error[E005] at 2:4: possible packet loop: …
    ///   hop 1: a#0 -> b#0 via OnRemote, destination = 10.0.0.2 (restart)
    ///   2 | (OnRemote(b, …
    ///     |  ^^^^^^^^
    ///   hops 1..2 repeat forever
    /// ```
    pub fn render(&self, src: &str) -> String {
        let lc = line_col(src, self.span.start);
        let mut out = format!("error[{}] at {}: {}", self.code, lc, self.message);
        if self.hops.is_empty() {
            if let Some(snippet) = render_snippet(src, self.span) {
                out.push('\n');
                out.push_str(&snippet);
            }
        }
        for (i, h) in self.hops.iter().enumerate() {
            out.push('\n');
            out.push_str("  ");
            out.push_str(&h.describe(i + 1));
            if let Some(snippet) = render_snippet(src, h.span) {
                out.push('\n');
                out.push_str(&snippet);
            }
        }
        if let WitnessKind::Loop { cycle_start } = self.kind {
            out.push('\n');
            out.push_str(&format!(
                "  hops {}..{} repeat forever",
                cycle_start + 1,
                self.hops.len()
            ));
        }
        out
    }

    /// Appends the byte-stable JSON form to `out`. Key order is fixed:
    /// `code`, `kind`, `channel`, `cycle_start` (loop witnesses only),
    /// `message`, `line`, `col`, `start`, `end`, `hops`.
    pub fn write_json(&self, src: &str, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"code\":");
        push_json_str(out, self.code);
        out.push_str(",\"kind\":");
        push_json_str(out, self.kind.as_str());
        out.push_str(",\"channel\":");
        push_json_str(out, &self.channel);
        if let WitnessKind::Loop { cycle_start } = self.kind {
            let _ = write!(out, ",\"cycle_start\":{cycle_start}");
        }
        out.push_str(",\"message\":");
        push_json_str(out, &self.message);
        let lc = line_col(src, self.span.start);
        let _ = write!(
            out,
            ",\"line\":{},\"col\":{},\"start\":{},\"end\":{}",
            lc.line, lc.col, self.span.start, self.span.end
        );
        out.push_str(",\"hops\":[");
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hlc = line_col(src, h.span.start);
            out.push_str("{\"from\":");
            push_json_str(out, &h.from);
            out.push_str(",\"to\":");
            push_json_str(out, &h.to);
            out.push_str(",\"kind\":");
            push_json_str(out, h.kind_str());
            out.push_str(",\"dest\":");
            push_json_str(out, &h.dest);
            let _ = write!(
                out,
                ",\"progress\":{},\"line\":{},\"col\":{},\"start\":{},\"end\":{}}}",
                h.progress, hlc.line, hlc.col, h.span.start, h.span.end
            );
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Witness {
        Witness {
            code: "E005",
            kind: WitnessKind::Loop { cycle_start: 0 },
            channel: "network#0".into(),
            message: "possible packet loop".into(),
            span: Span::new(59, 67),
            hops: vec![WitnessHop {
                from: "network#0".into(),
                to: "network#0".into(),
                kind: SendKind::Remote,
                dest: "10.0.0.2".into(),
                progress: false,
                span: Span::new(59, 67),
            }],
        }
    }

    #[test]
    fn json_is_byte_stable() {
        let src = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n(OnRemote(network, p); (ps, ss))";
        let w = sample();
        let mut a = String::new();
        w.write_json(src, &mut a);
        let mut b = String::new();
        w.write_json(src, &mut b);
        assert_eq!(a, b);
        assert!(a.contains("\"code\":\"E005\""), "{a}");
        assert!(a.contains("\"cycle_start\":0"), "{a}");
        assert!(a.contains("\"progress\":false"), "{a}");
    }

    #[test]
    fn render_shows_hops_and_cycle() {
        let src = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n(OnRemote(network, p); (ps, ss))";
        let r = sample().render(src);
        assert!(
            r.contains("hop 1: network#0 -> network#0 via OnRemote"),
            "{r}"
        );
        assert!(r.contains("^"), "{r}");
        assert!(r.contains("repeat forever"), "{r}");
    }

    #[test]
    fn diagnostic_carries_hop_notes() {
        let d = sample().to_diagnostic();
        assert_eq!(d.code, "E005");
        assert_eq!(d.notes.len(), 2);
        assert!(d.notes[0].starts_with("hop 1:"));
        assert!(d.notes[1].contains("repeat forever"));
    }
}
