//! Path-sensitive effect summaries of channel bodies.
//!
//! Every safety analysis in this crate is driven by the same abstract walk
//! over the typed AST. For each channel (and each function, inlined at
//! call sites) we compute:
//!
//! * the set of **send sites** — every `OnRemote`/`OnNeighbor` that might
//!   execute, with an abstraction of the packet's destination address;
//! * `min_out` — the minimum number of outputs (sends **or** `deliver`
//!   calls) over all execution paths (for the guaranteed-delivery check);
//! * `max_sends` — the maximum number of network sends over all paths
//!   (for the duplication fix-point), saturating at 3;
//! * the set of exceptions that may **escape** (for the all-exceptions-
//!   handled check).
//!
//! The destination abstraction mirrors the paper's observation that for
//! most protocols the only addresses available are the source and
//! destination of the IP header plus program constants (section 2.1).

use planp_lang::ast::BinOp;
use planp_lang::prims::{self, PrimId};
use planp_lang::span::Span;
use planp_lang::tast::*;
use planp_lang::types::Type;
use std::collections::{BTreeSet, HashMap};

/// Abstraction of a packet's destination address at a send site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestAbs {
    /// The destination is the arriving packet's destination, unchanged.
    /// Under the acyclic-routing assumption such a send makes progress:
    /// the packet strictly approaches its destination and is delivered on
    /// arrival.
    Unchanged,
    /// The destination was set to the arriving packet's *source*.
    OrigSrc,
    /// The destination was set to a program constant.
    Const(u32),
    /// The analysis cannot bound the destination.
    Unknown,
}

impl DestAbs {
    /// Joins two abstractions (used at `if`/`handle` merges).
    pub fn join(self, other: DestAbs) -> DestAbs {
        if self == other {
            self
        } else {
            DestAbs::Unknown
        }
    }

    /// True if the destination is a known IPv4 multicast group
    /// (`224.0.0.0/4`) — such a send is inherently copying.
    pub fn is_multicast_const(self) -> bool {
        matches!(self, DestAbs::Const(a) if (a >> 28) == 0xE)
    }
}

/// Whether a send site forwards toward the packet destination or jumps to
/// an explicit neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendKind {
    /// `OnRemote` — routed toward the packet's IP destination.
    Remote,
    /// `OnNeighbor` — handed to an explicit neighbor node.
    Neighbor,
}

/// One potential send, as seen by the analyses.
#[derive(Debug, Clone)]
pub struct SendSite {
    /// Target channel name.
    pub chan: String,
    /// Resolved index of the target channel in [`TProgram::channels`].
    pub target: usize,
    /// Destination abstraction (for `Neighbor` sends this abstracts the
    /// neighbor host argument).
    pub dest: DestAbs,
    /// Destination abstraction of the *sent packet's own* IP header.
    /// For `Remote` sends this equals [`SendSite::dest`]; for `Neighbor`
    /// sends `dest` abstracts the neighbor-host argument while
    /// `pkt_dest` tracks where the packet itself is addressed — which is
    /// what the next hop's dispatch sees.
    pub pkt_dest: DestAbs,
    /// True if the sent packet's IP *source* field is provably still the
    /// arriving packet's source. The model checker composes this across
    /// hops to decide whether an `ipSrc`-derived destination is a fixed
    /// address or an unknown one.
    pub src_orig: bool,
    /// Send flavor.
    pub kind: SendKind,
    /// Source location, for diagnostics.
    pub span: Span,
}

impl SendSite {
    /// True if this send is a *progress* send: an `OnRemote` that keeps
    /// the packet's destination unchanged. Progress sends terminate under
    /// the acyclic-routing assumption.
    pub fn is_progress(&self) -> bool {
        self.kind == SendKind::Remote && self.dest == DestAbs::Unchanged
    }
}

/// The effect summary of one channel body or function body.
#[derive(Debug, Clone, Default)]
pub struct ExprSummary {
    /// All send sites that might execute (including sites inside called
    /// functions).
    pub sites: Vec<SendSite>,
    /// Minimum number of outputs (sends + delivers) over all paths.
    pub min_out: u32,
    /// Maximum number of network sends over all paths (saturating at 3).
    pub max_sends: u32,
    /// Exceptions ([`ExnId`] indices) that may escape.
    pub raises: BTreeSet<u32>,
}

/// Summaries for a whole program.
#[derive(Debug, Clone)]
pub struct ProgramSummary {
    /// Parallel to [`TProgram::funs`].
    pub funs: Vec<ExprSummary>,
    /// Parallel to [`TProgram::channels`].
    pub channels: Vec<ExprSummary>,
    /// The state-effect analysis: tables written, key-domain finiteness,
    /// per-dispatch insert bounds (see [`crate::state`]).
    pub state: crate::state::StateReport,
}

/// Computes summaries for every function and channel of `prog`.
pub fn summarize(prog: &TProgram) -> ProgramSummary {
    let mut cx = Cx::new(prog);
    let mut funs = Vec::with_capacity(prog.funs.len());
    for f in &prog.funs {
        // Parameters are opaque.
        let mut env = HashMap::new();
        for (slot, _) in f.params.iter().enumerate() {
            env.insert(slot as u32, AbsVal::Opaque);
        }
        let sum = cx.walk_root(&f.body, env);
        cx.fun_sums.push(sum.clone());
        funs.push(sum);
    }
    let mut channels = Vec::with_capacity(prog.channels.len());
    for ch in &prog.channels {
        let mut env = HashMap::new();
        env.insert(0, AbsVal::Opaque); // protocol state
        env.insert(1, AbsVal::Opaque); // channel state
        env.insert(2, AbsVal::Pkt); // the packet parameter
        channels.push(cx.walk_root(&ch.body, env));
    }
    ProgramSummary {
        funs,
        channels,
        state: crate::state::state_effects(prog),
    }
}

/// Saturating cap for send counts; 3 is enough to distinguish 0, 1, and
/// "2 or more".
const CAP: u32 = 3;

/// Abstract values tracked by the destination analysis.
#[derive(Debug, Clone, PartialEq)]
enum AbsVal {
    /// The channel's packet parameter, untouched.
    Pkt,
    /// An IP header value.
    Ip {
        /// Destination abstraction.
        dest: DestAbs,
        /// True if the source field is still the original packet's source.
        src_orig: bool,
    },
    /// A host address.
    HostA(DestAbs),
    /// A tuple of abstract values.
    Tup(Vec<AbsVal>),
    /// Anything else.
    Opaque,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Pkt, Pkt) => Pkt,
            (
                Ip {
                    dest: d1,
                    src_orig: s1,
                },
                Ip {
                    dest: d2,
                    src_orig: s2,
                },
            ) => Ip {
                dest: d1.join(d2),
                src_orig: s1 && s2,
            },
            (HostA(a), HostA(b)) => HostA(a.join(b)),
            (Tup(a), Tup(b)) if a.len() == b.len() => {
                Tup(a.into_iter().zip(b).map(|(x, y)| x.join(y)).collect())
            }
            // The original packet joined with a rebuilt packet tuple:
            // the packet's header is `Ip { Unchanged, original src }`, so
            // the merged destination is still trackable. This is what
            // lets `if … then p else (iph, hdr, transformed)` keep its
            // progress-send classification.
            (Pkt, Tup(parts)) | (Tup(parts), Pkt) => {
                let mut out = vec![AbsVal::Opaque; parts.len()];
                if let Some(first) = parts.into_iter().next() {
                    out[0] = first.join(Ip {
                        dest: DestAbs::Unchanged,
                        src_orig: true,
                    });
                }
                Tup(out)
            }
            _ => Opaque,
        }
    }
}

/// Result of walking one expression.
struct Node {
    min_out: u32,
    max_sends: u32,
    raises: BTreeSet<u32>,
    abs: AbsVal,
}

impl Node {
    fn pure(abs: AbsVal) -> Node {
        Node {
            min_out: 0,
            max_sends: 0,
            raises: BTreeSet::new(),
            abs,
        }
    }

    fn then(mut self, next: Node) -> Node {
        self.min_out += next.min_out;
        self.max_sends = (self.max_sends + next.max_sends).min(CAP);
        self.raises.extend(next.raises);
        self.abs = next.abs;
        self
    }
}

struct Cx<'p> {
    prog: &'p TProgram,
    fun_sums: Vec<ExprSummary>,
    sites: Vec<SendSite>,
    div_exn: u32,
    prim_raise_cache: HashMap<PrimId, Vec<u32>>,
}

impl<'p> Cx<'p> {
    fn new(prog: &'p TProgram) -> Self {
        let div_exn = prog.exn_id("Div").expect("Div is predeclared").0;
        Cx {
            prog,
            fun_sums: Vec::new(),
            sites: Vec::new(),
            div_exn,
            prim_raise_cache: HashMap::new(),
        }
    }

    fn walk_root(&mut self, body: &TExpr, env: HashMap<u32, AbsVal>) -> ExprSummary {
        self.sites.clear();
        let mut env = env;
        let node = self.walk(body, &mut env);
        ExprSummary {
            sites: std::mem::take(&mut self.sites),
            min_out: node.min_out,
            max_sends: node.max_sends,
            raises: node.raises,
        }
    }

    fn prim_raises(&mut self, id: PrimId) -> Vec<u32> {
        if let Some(v) = self.prim_raise_cache.get(&id) {
            return v.clone();
        }
        let sig = prims::table().sig(id);
        let v: Vec<u32> = sig
            .raises
            .iter()
            .filter_map(|n| self.prog.exn_id(n).map(|e| e.0))
            .collect();
        self.prim_raise_cache.insert(id, v.clone());
        v
    }

    fn resolve_target(&self, chan: &str, overload: u32) -> usize {
        self.prog.chan_groups[chan][overload as usize]
    }

    fn walk(&mut self, e: &TExpr, env: &mut HashMap<u32, AbsVal>) -> Node {
        use TExprKind::*;
        match &e.kind {
            Int(_) | Bool(_) | Str(_) | Char(_) | Unit => Node::pure(AbsVal::Opaque),
            Host(a) => Node::pure(AbsVal::HostA(DestAbs::Const(*a))),
            Local { slot, .. } => Node::pure(env.get(slot).cloned().unwrap_or(AbsVal::Opaque)),
            Global { index, .. } => {
                let g = &self.prog.globals[*index as usize];
                let abs = if g.ty == Type::Host {
                    if let TExprKind::Host(a) = g.init.kind {
                        AbsVal::HostA(DestAbs::Const(a))
                    } else {
                        AbsVal::HostA(DestAbs::Unknown)
                    }
                } else {
                    AbsVal::Opaque
                };
                Node::pure(abs)
            }
            Tuple(items) => {
                let mut node = Node::pure(AbsVal::Opaque);
                let mut parts = Vec::with_capacity(items.len());
                for item in items {
                    let n = self.walk(item, env);
                    parts.push(n.abs.clone());
                    node = node.then(n);
                }
                node.abs = AbsVal::Tup(parts);
                node
            }
            Proj(i, inner) => {
                let n = self.walk(inner, env);
                let abs = match &n.abs {
                    AbsVal::Pkt if *i == 0 => AbsVal::Ip {
                        dest: DestAbs::Unchanged,
                        src_orig: true,
                    },
                    AbsVal::Tup(parts) => parts.get(*i as usize).cloned().unwrap_or(AbsVal::Opaque),
                    _ => AbsVal::Opaque,
                };
                Node { abs, ..n }
            }
            CallFun { index, args } => {
                let mut node = Node::pure(AbsVal::Opaque);
                for a in args {
                    node = node.then(self.walk(a, env));
                }
                let fs = self.fun_sums[*index as usize].clone();
                node.min_out += fs.min_out;
                node.max_sends = (node.max_sends + fs.max_sends).min(CAP);
                node.raises.extend(fs.raises.iter().copied());
                self.sites.extend(fs.sites.iter().cloned());
                node.abs = AbsVal::Opaque;
                node
            }
            CallPrim { prim, args } => {
                let mut node = Node::pure(AbsVal::Opaque);
                let mut arg_abs = Vec::with_capacity(args.len());
                for a in args {
                    let n = self.walk(a, env);
                    arg_abs.push(n.abs.clone());
                    node = node.then(n);
                }
                for r in self.prim_raises(*prim) {
                    node.raises.insert(r);
                }
                let name = prims::table().sig(*prim).name;
                if name == "deliver" {
                    node.min_out += 1;
                }
                node.abs = prim_abs(name, &arg_abs);
                node
            }
            If(c, t, f) => {
                let cn = self.walk(c, env);
                let tn = self.walk(t, env);
                let fn_ = self.walk(f, env);
                Node {
                    min_out: cn.min_out + tn.min_out.min(fn_.min_out),
                    max_sends: (cn.max_sends + tn.max_sends.max(fn_.max_sends)).min(CAP),
                    raises: {
                        let mut r = cn.raises;
                        r.extend(tn.raises);
                        r.extend(fn_.raises);
                        r
                    },
                    abs: tn.abs.join(fn_.abs),
                }
            }
            Let {
                slot, init, body, ..
            } => {
                let init_n = self.walk(init, env);
                let saved = env.insert(*slot, init_n.abs.clone());
                let body_n = self.walk(body, env);
                match saved {
                    Some(v) => {
                        env.insert(*slot, v);
                    }
                    None => {
                        env.remove(slot);
                    }
                }
                Node {
                    min_out: init_n.min_out + body_n.min_out,
                    max_sends: (init_n.max_sends + body_n.max_sends).min(CAP),
                    raises: {
                        let mut r = init_n.raises;
                        r.extend(body_n.raises);
                        r
                    },
                    abs: body_n.abs,
                }
            }
            Seq(items) => {
                let mut node = Node::pure(AbsVal::Opaque);
                for item in items {
                    node = node.then(self.walk(item, env));
                }
                node
            }
            Binop(op, a, b) => {
                let mut node = self.walk(a, env).then(self.walk(b, env));
                // Division by a nonzero constant cannot raise `Div`.
                let const_nonzero = matches!(b.kind, TExprKind::Int(n) if n != 0);
                if matches!(op, BinOp::Div | BinOp::Mod) && !const_nonzero {
                    node.raises.insert(self.div_exn);
                }
                node.abs = AbsVal::Opaque;
                node
            }
            Unop(_, a) => {
                let mut node = self.walk(a, env);
                node.abs = AbsVal::Opaque;
                node
            }
            Raise(id) => {
                let mut raises = BTreeSet::new();
                raises.insert(id.0);
                Node {
                    min_out: 0,
                    max_sends: 0,
                    raises,
                    abs: AbsVal::Opaque,
                }
            }
            Handle(body, pat, handler) => {
                let bn = self.walk(body, env);
                let hn = self.walk(handler, env);
                let mut caught = bn.raises.clone();
                match pat {
                    None => caught.clear(),
                    Some(exn) => {
                        caught.remove(&exn.0);
                    }
                }
                let body_may_raise = !bn.raises.is_empty();
                let mut raises = caught;
                raises.extend(hn.raises.clone());
                Node {
                    // If the body cannot raise, the handler is dead code.
                    min_out: if body_may_raise {
                        bn.min_out.min(hn.min_out)
                    } else {
                        bn.min_out
                    },
                    max_sends: (bn.max_sends + if body_may_raise { hn.max_sends } else { 0 })
                        .min(CAP),
                    raises,
                    abs: bn.abs.join(hn.abs),
                }
            }
            List(items) => {
                let mut node = Node::pure(AbsVal::Opaque);
                for item in items {
                    node = node.then(self.walk(item, env));
                }
                node.abs = AbsVal::Opaque;
                node
            }
            OnRemote {
                chan,
                overload,
                pkt,
            } => {
                let pn = self.walk(pkt, env);
                let dest = dest_of(&pn.abs);
                self.sites.push(SendSite {
                    chan: chan.clone(),
                    target: self.resolve_target(chan, *overload),
                    dest,
                    pkt_dest: dest,
                    src_orig: src_of(&pn.abs),
                    kind: SendKind::Remote,
                    span: e.span,
                });
                Node {
                    min_out: pn.min_out + 1,
                    max_sends: (pn.max_sends + 1).min(CAP),
                    raises: pn.raises,
                    abs: AbsVal::Opaque,
                }
            }
            OnNeighbor {
                chan,
                overload,
                host,
                pkt,
            } => {
                let hn = self.walk(host, env);
                let pn = self.walk(pkt, env);
                let dest = match &hn.abs {
                    AbsVal::HostA(d) => *d,
                    _ => DestAbs::Unknown,
                };
                self.sites.push(SendSite {
                    chan: chan.clone(),
                    target: self.resolve_target(chan, *overload),
                    dest,
                    pkt_dest: dest_of(&pn.abs),
                    src_orig: src_of(&pn.abs),
                    kind: SendKind::Neighbor,
                    span: e.span,
                });
                Node {
                    min_out: hn.min_out + pn.min_out + 1,
                    max_sends: (hn.max_sends + pn.max_sends + 1).min(CAP),
                    raises: {
                        let mut r = hn.raises;
                        r.extend(pn.raises);
                        r
                    },
                    abs: AbsVal::Opaque,
                }
            }
        }
    }
}

/// True if a sent packet expression provably carries the arriving
/// packet's original source address in its IP source field.
fn src_of(abs: &AbsVal) -> bool {
    match abs {
        AbsVal::Pkt => true,
        AbsVal::Tup(parts) => matches!(parts.first(), Some(AbsVal::Ip { src_orig: true, .. })),
        AbsVal::Ip { src_orig, .. } => *src_orig,
        _ => false,
    }
}

/// Destination abstraction of a sent packet expression.
fn dest_of(abs: &AbsVal) -> DestAbs {
    match abs {
        AbsVal::Pkt => DestAbs::Unchanged,
        AbsVal::Tup(parts) => match parts.first() {
            Some(AbsVal::Ip { dest, .. }) => *dest,
            _ => DestAbs::Unknown,
        },
        AbsVal::Ip { dest, .. } => *dest,
        _ => DestAbs::Unknown,
    }
}

/// Abstract transfer functions for header-manipulating primitives.
fn prim_abs(name: &str, args: &[AbsVal]) -> AbsVal {
    match name {
        "ipSrc" => match &args[0] {
            AbsVal::Ip { src_orig: true, .. } => AbsVal::HostA(DestAbs::OrigSrc),
            _ => AbsVal::HostA(DestAbs::Unknown),
        },
        "ipDst" => match &args[0] {
            AbsVal::Ip { dest, .. } => AbsVal::HostA(*dest),
            _ => AbsVal::HostA(DestAbs::Unknown),
        },
        "ipDestSet" => {
            let dest = match &args[1] {
                AbsVal::HostA(d) => *d,
                _ => DestAbs::Unknown,
            };
            let src_orig = matches!(&args[0], AbsVal::Ip { src_orig: true, .. });
            AbsVal::Ip { dest, src_orig }
        }
        "ipSrcSet" => {
            let dest = match &args[0] {
                AbsVal::Ip { dest, .. } => *dest,
                _ => DestAbs::Unknown,
            };
            AbsVal::Ip {
                dest,
                src_orig: false,
            }
        }
        // Payload/header transformations preserve nothing we track.
        _ => AbsVal::Opaque,
    }
}

/// Computes the maximum, over all execution paths of `body`, of the total
/// *weight* of executed send sites, where `weigh` assigns each send site a
/// weight. Function calls contribute `fun_weights[f]`. Saturates at `CAP`.
///
/// This is the workhorse of the duplication fix-point: with weight 1 for
/// every send it computes the plain maximum send count; with weight 2 for
/// sends targeting duplicating channels it computes the paper's "at most
/// one copying send per path" measure.
pub fn max_path_weight(
    prog: &TProgram,
    body: &TExpr,
    fun_weights: &[u32],
    weigh: &dyn Fn(usize, DestAbs) -> u32,
) -> u32 {
    // Destination abstractions depend on the environment; rather than
    // re-threading the abstract env, we reuse `summarize`-style analysis
    // conservatively: recompute locally with a fresh env each call.
    let mut env: HashMap<u32, AbsVal> = HashMap::new();
    env.insert(2, AbsVal::Pkt);
    wmax(prog, body, fun_weights, weigh, &mut env).min(CAP)
}

fn wmax(
    prog: &TProgram,
    e: &TExpr,
    fw: &[u32],
    weigh: &dyn Fn(usize, DestAbs) -> u32,
    env: &mut HashMap<u32, AbsVal>,
) -> u32 {
    use TExprKind::*;
    match &e.kind {
        Int(_)
        | Bool(_)
        | Str(_)
        | Char(_)
        | Unit
        | Host(_)
        | Local { .. }
        | Global { .. }
        | Raise(_) => 0,
        Tuple(items) | Seq(items) | List(items) => items
            .iter()
            .map(|i| wmax(prog, i, fw, weigh, env))
            .sum::<u32>()
            .min(CAP),
        Proj(_, inner) | Unop(_, inner) => wmax(prog, inner, fw, weigh, env),
        CallFun { index, args } => {
            let argw: u32 = args.iter().map(|a| wmax(prog, a, fw, weigh, env)).sum();
            (argw + fw[*index as usize]).min(CAP)
        }
        CallPrim { args, .. } => args
            .iter()
            .map(|a| wmax(prog, a, fw, weigh, env))
            .sum::<u32>()
            .min(CAP),
        If(c, t, f) => {
            let cw = wmax(prog, c, fw, weigh, env);
            let tw = wmax(prog, t, fw, weigh, env);
            let fw_ = wmax(prog, f, fw, weigh, env);
            (cw + tw.max(fw_)).min(CAP)
        }
        Let {
            slot, init, body, ..
        } => {
            let iw = wmax(prog, init, fw, weigh, env);
            // Track the abstract value for destination resolution.
            let abs = abs_only(prog, init, env);
            let saved = env.insert(*slot, abs);
            let bw = wmax(prog, body, fw, weigh, env);
            match saved {
                Some(v) => {
                    env.insert(*slot, v);
                }
                None => {
                    env.remove(slot);
                }
            }
            (iw + bw).min(CAP)
        }
        Binop(_, a, b) => (wmax(prog, a, fw, weigh, env) + wmax(prog, b, fw, weigh, env)).min(CAP),
        Handle(body, _, handler) => {
            (wmax(prog, body, fw, weigh, env) + wmax(prog, handler, fw, weigh, env)).min(CAP)
        }
        OnRemote {
            chan,
            overload,
            pkt,
        } => {
            let pw = wmax(prog, pkt, fw, weigh, env);
            let abs = abs_only(prog, pkt, env);
            let dest = dest_of(&abs);
            let target = prog.chan_groups[chan][*overload as usize];
            (pw + weigh(target, dest)).min(CAP)
        }
        OnNeighbor {
            chan,
            overload,
            host,
            pkt,
        } => {
            let hw = wmax(prog, host, fw, weigh, env);
            let pw = wmax(prog, pkt, fw, weigh, env);
            let abs = abs_only(prog, host, env);
            let dest = match abs {
                AbsVal::HostA(d) => d,
                _ => DestAbs::Unknown,
            };
            let target = prog.chan_groups[chan][*overload as usize];
            (hw + pw + weigh(target, dest)).min(CAP)
        }
    }
}

/// Effect-free abstract evaluation (destination tracking only).
fn abs_only(prog: &TProgram, e: &TExpr, env: &mut HashMap<u32, AbsVal>) -> AbsVal {
    use TExprKind::*;
    match &e.kind {
        Host(a) => AbsVal::HostA(DestAbs::Const(*a)),
        Local { slot, .. } => env.get(slot).cloned().unwrap_or(AbsVal::Opaque),
        Global { index, .. } => {
            let g = &prog.globals[*index as usize];
            if g.ty == Type::Host {
                if let TExprKind::Host(a) = g.init.kind {
                    return AbsVal::HostA(DestAbs::Const(a));
                }
                return AbsVal::HostA(DestAbs::Unknown);
            }
            AbsVal::Opaque
        }
        Tuple(items) => AbsVal::Tup(items.iter().map(|i| abs_only(prog, i, env)).collect()),
        Proj(i, inner) => match abs_only(prog, inner, env) {
            AbsVal::Pkt if *i == 0 => AbsVal::Ip {
                dest: DestAbs::Unchanged,
                src_orig: true,
            },
            AbsVal::Tup(parts) => parts.get(*i as usize).cloned().unwrap_or(AbsVal::Opaque),
            _ => AbsVal::Opaque,
        },
        CallPrim { prim, args } => {
            let arg_abs: Vec<AbsVal> = args.iter().map(|a| abs_only(prog, a, env)).collect();
            prim_abs(prims::table().sig(*prim).name, &arg_abs)
        }
        If(_, t, f) => abs_only(prog, t, env).join(abs_only(prog, f, env)),
        Let {
            slot, init, body, ..
        } => {
            let abs = abs_only(prog, init, env);
            let saved = env.insert(*slot, abs);
            let out = abs_only(prog, body, env);
            match saved {
                Some(v) => {
                    env.insert(*slot, v);
                }
                None => {
                    env.remove(slot);
                }
            }
            out
        }
        Seq(items) => items
            .last()
            .map(|l| abs_only(prog, l, env))
            .unwrap_or(AbsVal::Opaque),
        Handle(body, _, handler) => abs_only(prog, body, env).join(abs_only(prog, handler, env)),
        _ => AbsVal::Opaque,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planp_lang::compile_front;

    fn summarize_src(src: &str) -> (TProgram, ProgramSummary) {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let sum = summarize(&tp);
        (tp, sum)
    }

    #[test]
    fn forward_unchanged_is_progress() {
        let (_, sum) = summarize_src(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps, ss))",
        );
        let s = &sum.channels[0];
        assert_eq!(s.sites.len(), 1);
        assert!(s.sites[0].is_progress());
        assert_eq!(s.min_out, 1);
        assert_eq!(s.max_sends, 1);
        assert!(s.raises.is_empty());
    }

    #[test]
    fn dest_set_to_constant() {
        let (_, sum) = summarize_src(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, 10.0.0.9), #2 p, #3 p)); (ps, ss))",
        );
        let a = (10u32 << 24) | 9;
        assert_eq!(sum.channels[0].sites[0].dest, DestAbs::Const(a));
        assert!(!sum.channels[0].sites[0].is_progress());
    }

    #[test]
    fn dest_set_to_source() {
        let (_, sum) = summarize_src(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))",
        );
        assert_eq!(sum.channels[0].sites[0].dest, DestAbs::OrigSrc);
    }

    #[test]
    fn dest_set_to_own_dst_is_unchanged() {
        let (_, sum) = summarize_src(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, ipDst(#1 p)), #2 p, #3 p)); (ps, ss))",
        );
        assert_eq!(sum.channels[0].sites[0].dest, DestAbs::Unchanged);
        assert!(sum.channels[0].sites[0].is_progress());
    }

    #[test]
    fn let_bound_header_tracked() {
        let (_, sum) = summarize_src(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             let val iph : ip = #1 p in\n\
               (OnRemote(network, (ipDestSet(iph, 10.1.1.1), #2 p, #3 p)); (ps, ss))\n\
             end",
        );
        let a = (10u32 << 24) | (1 << 16) | (1 << 8) | 1;
        assert_eq!(sum.channels[0].sites[0].dest, DestAbs::Const(a));
    }

    #[test]
    fn global_host_constant_resolves() {
        let (_, sum) = summarize_src(
            "val srv : host = 10.2.2.2\n\
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, srv), #2 p, #3 p)); (ps, ss))",
        );
        assert!(matches!(sum.channels[0].sites[0].dest, DestAbs::Const(_)));
    }

    #[test]
    fn branch_min_and_max() {
        let (_, sum) = summarize_src(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             if ps > 0 then (OnRemote(network, p); (ps, ss)) else (ps, ss)",
        );
        let s = &sum.channels[0];
        assert_eq!(s.min_out, 0);
        assert_eq!(s.max_sends, 1);
    }

    #[test]
    fn deliver_counts_for_min_out_not_sends() {
        let (_, sum) = summarize_src(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (deliver(p); (ps, ss))",
        );
        let s = &sum.channels[0];
        assert_eq!(s.min_out, 1);
        assert_eq!(s.max_sends, 0);
    }

    #[test]
    fn raises_escape_and_are_caught() {
        let (_, sum) = summarize_src(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is\n\
             ((tblGet(ss, ipSrc(#1 p)), ss) handle NotFound => (0, ss))",
        );
        assert!(sum.channels[0].raises.is_empty());
        let (tp, sum) = summarize_src(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is\n\
             (tblGet(ss, ipSrc(#1 p)), ss)",
        );
        let nf = tp.exn_id("NotFound").unwrap().0;
        assert_eq!(sum.channels[0].raises, BTreeSet::from([nf]));
    }

    #[test]
    fn wildcard_handle_catches_everything() {
        let (_, sum) = summarize_src(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             ((ps div 0, ss) handle _ => (0, ss))",
        );
        assert!(sum.channels[0].raises.is_empty());
    }

    #[test]
    fn div_may_raise_unless_divisor_is_constant() {
        // Non-constant divisor: may raise.
        let (tp, sum) = summarize_src(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps div blobLen(#3 p), ss)",
        );
        let div = tp.exn_id("Div").unwrap().0;
        assert!(sum.channels[0].raises.contains(&div));
        // Constant nonzero divisor: provably safe.
        let (_, sum) = summarize_src(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps div 2, ss)",
        );
        assert!(sum.channels[0].raises.is_empty());
    }

    #[test]
    fn function_sends_inlined() {
        let (_, sum) = summarize_src(
            "channel relay(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)\n\
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(relay, p); OnRemote(relay, p); (ps, ss))",
        );
        // find the network channel summary (index 1)
        let s = &sum.channels[1];
        assert_eq!(s.sites.len(), 2);
        assert_eq!(s.max_sends, 2);
        assert_eq!(s.min_out, 2);
    }

    #[test]
    fn multicast_constant_detected() {
        let d = DestAbs::Const((224u32 << 24) | 5);
        assert!(d.is_multicast_const());
        assert!(!DestAbs::Const(10 << 24).is_multicast_const());
    }

    #[test]
    fn max_path_weight_counts_sends() {
        let (tp, _) = summarize_src(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (if ps > 0 then OnRemote(network, p) else (OnRemote(network, p); OnRemote(network, p));\n\
              (ps, ss))",
        );
        let w = max_path_weight(&tp, &tp.channels[0].body, &[], &|_, _| 1);
        assert_eq!(w, 2);
    }

    #[test]
    fn src_rewrite_defeats_orig_src_tracking() {
        // After ipSrcSet, ipSrc no longer returns the original source —
        // the abstraction must not claim OrigSrc.
        let (_, sum) = summarize_src(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is
             let val iph2 : ip = ipSrcSet(#1 p, 10.0.0.9) in
               (OnRemote(network, (ipDestSet(iph2, ipSrc(iph2)), #2 p, #3 p)); (ps, ss))
             end",
        );
        assert_eq!(sum.channels[0].sites[0].dest, DestAbs::Unknown);
    }

    #[test]
    fn src_rewrite_preserves_dest_tracking() {
        // ipSrcSet does not touch the destination: still a progress send.
        let (_, sum) = summarize_src(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is
             (OnRemote(network, (ipSrcSet(#1 p, 10.0.0.9), #2 p, #3 p)); (ps, ss))",
        );
        assert!(sum.channels[0].sites[0].is_progress());
    }

    #[test]
    fn branch_join_of_packet_and_rebuilt_tuple_stays_tracked() {
        // `if c then p else (iph, udph, transformed)` — the audio router
        // shape — keeps the Unchanged classification through the join.
        let (_, sum) = summarize_src(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is
             let val out : ip*udp*blob =
               if ps > 0 then p else (#1 p, #2 p, audio16to8(#3 p))
             in (OnRemote(network, out); (ps, ss)) end",
        );
        assert!(sum.channels[0].sites[0].is_progress());
    }

    #[test]
    fn branch_join_of_diverging_destinations_is_unknown() {
        let (_, sum) = summarize_src(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is
             let val out : ip*udp*blob =
               if ps > 0 then (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)
               else (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)
             in (OnRemote(network, out); (ps, ss)) end",
        );
        assert_eq!(sum.channels[0].sites[0].dest, DestAbs::Unknown);
    }

    #[test]
    fn sends_inside_functions_have_unknown_destinations() {
        // Function parameters are opaque, so a destination-changing send
        // inside a function cannot be tracked — conservative Unknown.
        let (_, sum) = summarize_src(
            "channel sink(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))
             fun fwd(q : ip*udp*blob) : unit = OnRemote(sink, q)
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is
             (fwd(p); (ps, ss))",
        );
        let s = &sum.channels[1];
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].dest, DestAbs::Unknown);
    }

    #[test]
    fn on_neighbor_dest_abstraction() {
        let (_, sum) = summarize_src(
            "channel mon(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)\n\
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(mon, 10.0.0.3, p); (ps, ss))",
        );
        let s = &sum.channels[1];
        assert_eq!(s.sites[0].kind, SendKind::Neighbor);
        assert!(matches!(s.sites[0].dest, DestAbs::Const(_)));
        assert!(!s.sites[0].is_progress());
    }
}
