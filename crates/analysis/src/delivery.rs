//! Guaranteed-packet-delivery analysis (paper section 2.1).
//!
//! Under the assumption that the underlying network is reliable, a
//! program guarantees delivery if:
//!
//! 1. packets do not cycle (the [termination](crate::termination) proof);
//! 2. the program handles all exceptions — no channel body can terminate
//!    with an unhandled exception;
//! 3. on every execution path of every channel, the packet is forwarded
//!    (`OnRemote`/`OnNeighbor`) or delivered (`deliver`) at least once —
//!    i.e. the program never silently drops a packet.

use crate::diag::Diagnostic;
use crate::summary::ProgramSummary;
use crate::termination::{check_termination, Outcome};
use planp_lang::tast::TProgram;

/// Checks guaranteed delivery.
pub fn check_delivery(prog: &TProgram, sum: &ProgramSummary) -> Outcome {
    let mut errors = Vec::new();

    // Termination findings keep their own code (E001); the diagnostics
    // below are delivery-specific (E002).
    if let Outcome::Rejected(errs) = check_termination(prog, sum) {
        errors.extend(errs);
    }

    for (c, s) in sum.channels.iter().enumerate() {
        let ch = &prog.channels[c];
        if !s.raises.is_empty() {
            let names: Vec<&str> = s
                .raises
                .iter()
                .map(|&i| prog.exns[i as usize].as_str())
                .collect();
            errors.push(Diagnostic::error(
                "E002",
                ch.span,
                format!(
                    "channel `{}` may terminate with unhandled exception(s): {}",
                    ch.name,
                    names.join(", ")
                ),
            ));
        }
        if s.min_out == 0 {
            errors.push(Diagnostic::error(
                "E002",
                ch.span,
                format!(
                    "channel `{}` has an execution path that neither forwards nor delivers the packet",
                    ch.name
                ),
            ));
        }
    }

    if errors.is_empty() {
        Outcome::Proved
    } else {
        Outcome::Rejected(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use planp_lang::compile_front;

    fn run(src: &str) -> Outcome {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let sum = summarize(&tp);
        check_delivery(&tp, &sum)
    }

    #[test]
    fn forward_on_all_paths_proved() {
        assert!(
            run("channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             if ps > 0 then (OnRemote(network, p); (ps, ss))\n\
             else (deliver(p); (ps, ss))")
            .is_proved()
        );
    }

    #[test]
    fn silent_drop_rejected() {
        let out = run("channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             if ps > 0 then (OnRemote(network, p); (ps, ss)) else (ps, ss)");
        let Outcome::Rejected(errs) = out else {
            panic!()
        };
        assert!(errs[0].message.contains("neither forwards nor delivers"));
    }

    #[test]
    fn unhandled_exception_rejected() {
        let out = run(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is\n\
             (print(tblGet(ss, ipSrc(#1 p))); OnRemote(network, p); (ps, ss))",
        );
        let Outcome::Rejected(errs) = out else {
            panic!()
        };
        assert!(errs[0].message.contains("NotFound"), "{}", errs[0].message);
    }

    #[test]
    fn handled_exception_proved() {
        assert!(run(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is\n\
             (print(tblGet(ss, ipSrc(#1 p)) handle NotFound => 0);\n\
              OnRemote(network, p); (ps, ss))"
        )
        .is_proved());
    }

    #[test]
    fn cycle_also_breaks_delivery() {
        let out = run(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))",
        );
        assert!(!out.is_proved());
    }

    #[test]
    fn deliver_alone_satisfies_delivery() {
        assert!(run(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (deliver(p); (ps, ss))"
        )
        .is_proved());
    }
}
