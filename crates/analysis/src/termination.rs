//! Global-termination analysis (paper section 2.1).
//!
//! Local termination holds by construction (no recursion, no unbounded
//! loops — re-verified cheaply here). Global termination is about packets
//! cycling *through the network*: every `OnRemote` is a recursive call on
//! a remote machine.
//!
//! The argument, following the paper: assume IP routing tables are
//! acyclic. Then an `OnRemote` that leaves the packet's destination
//! **unchanged** makes progress — each hop strictly approaches the
//! destination, and on arrival the packet is delivered rather than
//! re-forwarded. The only way to loop forever is through sends that
//! *change* the destination (or `OnNeighbor` jumps, which restart
//! processing at another node).
//!
//! We therefore build a graph whose nodes are channels and whose edges are
//! send sites, and reject the program iff some cycle contains at least one
//! **restart** edge (a non-progress send). Pure-progress cycles are fine:
//! the packet is making monotone progress toward a fixed destination the
//! whole time. This explores the same (channel × destination) state space
//! the paper describes (size ~ r·d·2^d), collapsed onto channels with a
//! progress/restart edge labelling.

use crate::diag::Diagnostic;
use crate::summary::ProgramSummary;
use planp_lang::tast::TProgram;

/// Outcome of one analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The property is proved.
    Proved,
    /// The property could not be proved; structured diagnostics (codes
    /// `E001`–`E004`) explain why.
    Rejected(Vec<Diagnostic>),
}

impl Outcome {
    /// True if the property was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Outcome::Proved)
    }
}

/// Checks global termination.
pub fn check_termination(prog: &TProgram, sum: &ProgramSummary) -> Outcome {
    let n = prog.channels.len();

    // Edges: (from, to, is_restart, span).
    let mut edges = Vec::new();
    for (c, s) in sum.channels.iter().enumerate() {
        for site in &s.sites {
            edges.push((c, site.target, !site.is_progress(), site.span));
        }
    }

    // Immediate self-restart is a cycle of length one.
    // General case: strongly connected components over *all* edges; a
    // restart edge inside an SCC closes a cycle containing it.
    let mut adj = vec![Vec::new(); n];
    for &(u, v, _, _) in &edges {
        adj[u].push(v);
    }
    let comp = scc(&adj);

    let mut errors = Vec::new();
    for &(u, v, restart, span) in &edges {
        if restart && comp[u] == comp[v] {
            let from = &prog.channels[u].name;
            let to = &prog.channels[v].name;
            errors.push(Diagnostic::error(
                "E001",
                span,
                format!(
                    "possible packet cycle: destination-changing send from channel `{from}` reaches `{to}` which can send back to `{from}`"
                ),
            ));
        }
    }
    if errors.is_empty() {
        Outcome::Proved
    } else {
        Outcome::Rejected(errors)
    }
}

/// Kosaraju strongly-connected components; returns the component id of
/// each node. A node is in the same component as another iff they lie on
/// a common cycle (or are the same node). Self-loops put `u` on a cycle
/// with itself, which the edge check above captures because
/// `comp[u] == comp[u]`. Shared with the explicit-state model checker
/// ([`crate::modelcheck`]), which runs it over the explored state graph.
pub(crate) fn scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack = vec![(s, 0usize)];
        seen[s] = true;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < adj[u].len() {
                let v = adj[u][*i];
                *i += 1;
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Transpose.
    let mut radj = vec![Vec::new(); n];
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            radj[v].push(u);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut c = 0;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = c;
        while let Some(u) = stack.pop() {
            for &v in &radj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = c;
                    stack.push(v);
                }
            }
        }
        c += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use planp_lang::compile_front;

    fn run(src: &str) -> Outcome {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let sum = summarize(&tp);
        check_termination(&tp, &sum)
    }

    #[test]
    fn plain_forwarding_terminates() {
        assert!(run(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps, ss))"
        )
        .is_proved());
    }

    #[test]
    fn one_shot_redirect_terminates() {
        // The gateway redirects to a constant server; the `relay` channel
        // it targets only forwards unchanged — no cycle.
        assert!(
            run("channel relay(ps : unit, ss : unit, p : ip*tcp*blob) is\n\
             (OnRemote(relay, p); (ps, ss))\n\
             channel network(ps : unit, ss : unit, p : ip*tcp*blob) is\n\
             (OnRemote(relay, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))")
            .is_proved()
        );
    }

    #[test]
    fn self_redirect_rejected() {
        // `network` changes the destination and sends back to itself: the
        // packet could bounce between constants forever.
        let out = run(
            "channel network(ps : unit, ss : unit, p : ip*tcp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))",
        );
        let Outcome::Rejected(errs) = out else {
            panic!("expected rejection")
        };
        assert!(errs[0].message.contains("cycle"));
    }

    #[test]
    fn bounce_to_source_rejected() {
        let out = run(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))",
        );
        assert!(!out.is_proved());
    }

    #[test]
    fn two_channel_ping_pong_rejected() {
        let out = run("channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(b, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))\n\
             channel b(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(a, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))");
        assert!(!out.is_proved());
    }

    #[test]
    fn redirect_chain_terminates() {
        // a --change--> b --unchanged--> b: no cycle through the restart.
        assert!(run("channel b(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(b, p); (ps, ss))\n\
             channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(b, (ipDestSet(#1 p, 10.0.0.7), #2 p, #3 p)); (ps, ss))")
        .is_proved());
    }

    #[test]
    fn neighbor_self_loop_rejected() {
        let out = run(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(network, 10.0.0.2, p); (ps, ss))",
        );
        assert!(!out.is_proved());
    }

    #[test]
    fn neighbor_to_terminal_channel_ok() {
        assert!(run(
            "channel mon(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))\n\
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(mon, 10.0.0.3, p); (ps, ss))"
        )
        .is_proved());
    }

    #[test]
    fn non_sending_channel_trivially_terminates() {
        assert!(
            run("channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)").is_proved()
        );
    }
}
