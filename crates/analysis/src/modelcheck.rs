//! Explicit-state safety model checker (paper section 2.1, the
//! `r·d·2^d` exploration made literal).
//!
//! The [SCC screen](crate::termination) collapses the paper's
//! (channel × abstract destination) state space onto channels with a
//! progress/restart edge labelling — sound, fast, but path-insensitive:
//! it cannot tell a send that *changes* the destination from one that
//! *re-asserts the same* destination, and it cannot say why a program
//! was rejected. This module enumerates the states themselves:
//!
//! * a **state** is (channel overload, abstract destination value,
//!   source-still-original), seeded with every channel receiving a
//!   fresh packet;
//! * a **transition** applies one send site's destination transfer:
//!   `Unchanged` keeps the state's value, `Const(a)` pins it, `OrigSrc`
//!   resolves to the original source *iff* the source field is provably
//!   untouched, anything else widens to `Unknown`;
//! * a transition is a **progress hop** iff it is an `OnRemote` whose
//!   concrete destination value cannot differ from the pre-state's
//!   (same constant, same original address, or literally unchanged) —
//!   such hops strictly approach a fixed address under the
//!   acyclic-routing assumption and deliver on arrival;
//! * **termination is violated** iff the reachable state graph has a
//!   cycle containing a non-progress hop (found by SCC over states);
//!   **delivery** additionally requires no droppable path and no
//!   escaping exception on any reachable channel.
//!
//! The exploration runs a frontier worklist with visited-state hashing
//! under a configurable state budget; exceeding the budget yields
//! [`Verdict::Inconclusive`] and the caller falls back to the screen.
//! On a violation the checker reconstructs a *minimal* counterexample
//! [`Witness`] — shortest entry prefix plus shortest cycle, by BFS over
//! the explored graph — for rendering (codes `E005`/`E006`) and for
//! concrete replay through the simulator.
//!
//! The refinement is one-directional by construction: every
//! state-graph cycle projects onto a channel-graph cycle and every
//! non-progress state hop comes from a screen-restart site, so a
//! screen *accept* implies an exhaustive *accept* — the checker can
//! only prove programs the approximation rejects, never the reverse
//! (cross-validated by the test suite).

use crate::summary::{DestAbs, ProgramSummary, SendKind};
use crate::termination::scc;
use crate::witness::{Witness, WitnessHop, WitnessKind};
use planp_lang::prims;
use planp_lang::span::Span;
use planp_lang::tast::{TExpr, TExprKind, TProgram};
use std::collections::{HashMap, VecDeque};

/// Default cap on explored states; the bundled ASPs need well under a
/// hundred, so the default leaves room for generated programs while
/// bounding a hostile download's verification cost.
pub const DEFAULT_STATE_BUDGET: usize = 1 << 16;

/// Abstract value of the in-flight packet's destination field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DestVal {
    /// Still the destination the packet entered the network with.
    OrigDst,
    /// The packet's original source address (a fixed address).
    OrigSrc,
    /// A program constant.
    Const(u32),
    /// Not statically bounded.
    Unknown,
}

impl DestVal {
    /// Human rendering (`the original destination`, `10.0.0.2`, …).
    pub fn describe(self) -> String {
        match self {
            DestVal::OrigDst => "the original destination".to_string(),
            DestVal::OrigSrc => "the original source".to_string(),
            DestVal::Const(a) => format!(
                "{}.{}.{}.{}",
                (a >> 24) & 255,
                (a >> 16) & 255,
                (a >> 8) & 255,
                a & 255
            ),
            DestVal::Unknown => "an unknown address".to_string(),
        }
    }
}

/// One explored state of the packet's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct State {
    /// Channel overload index the packet is dispatched on.
    pub channel: usize,
    /// Abstract destination of the arriving packet.
    pub dest: DestVal,
    /// True while the packet's IP source field provably still holds the
    /// original sender.
    pub src_orig: bool,
}

/// Verdict of one property under exhaustive checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds on every reachable state.
    Proved,
    /// A counterexample exists (see [`ModelCheckReport::witnesses`]).
    Violated,
    /// The state budget was exhausted before the exploration finished;
    /// fall back to the screening analysis.
    Inconclusive,
}

impl Verdict {
    /// Stable machine name (`proved`, `violated`, `inconclusive`).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Proved => "proved",
            Verdict::Violated => "violated",
            Verdict::Inconclusive => "inconclusive",
        }
    }

    /// True if the property was proved.
    pub fn is_proved(self) -> bool {
        self == Verdict::Proved
    }
}

/// One explored transition: send site `site` of channel `chan` firing.
#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    chan: usize,
    site: usize,
    progress: bool,
}

/// What the exhaustive exploration found.
#[derive(Debug, Clone)]
pub struct ModelCheckReport {
    /// Global-termination verdict.
    pub termination: Verdict,
    /// Guaranteed-delivery verdict.
    pub delivery: Verdict,
    /// States explored (the paper's `r·d·2^d`, reachable part only).
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// The state budget the exploration ran under.
    pub budget: usize,
    /// True if the budget stopped the exploration early.
    pub exhausted: bool,
    /// Counterexamples: at most one minimal `E005` loop witness, then
    /// one `E006` witness per droppable or exception-escaping channel.
    pub witnesses: Vec<Witness>,
}

impl ModelCheckReport {
    /// The termination (`E005`) witnesses.
    pub fn loop_witnesses(&self) -> impl Iterator<Item = &Witness> {
        self.witnesses.iter().filter(|w| w.code == "E005")
    }

    /// The delivery-only (`E006`) witnesses.
    pub fn delivery_witnesses(&self) -> impl Iterator<Item = &Witness> {
        self.witnesses.iter().filter(|w| w.code == "E006")
    }

    /// Appends the byte-stable JSON form to `out`: fixed key order
    /// `termination`, `delivery`, `states`, `transitions`, `budget`,
    /// `exhausted`, `witnesses`.
    pub fn write_json(&self, src: &str, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"termination\":\"{}\",\"delivery\":\"{}\",\"states\":{},\"transitions\":{},\"budget\":{},\"exhausted\":{},\"witnesses\":[",
            self.termination.as_str(),
            self.delivery.as_str(),
            self.states,
            self.transitions,
            self.budget,
            self.exhausted
        );
        for (i, w) in self.witnesses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            w.write_json(src, out);
        }
        out.push_str("]}");
    }
}

/// Runs the exhaustive exploration over `prog`'s send sites.
pub fn model_check(prog: &TProgram, sum: &ProgramSummary, budget: usize) -> ModelCheckReport {
    let n = prog.channels.len();
    let chan_label = |c: usize| format!("{}#{}", prog.channels[c].name, prog.channels[c].overload);

    // Frontier worklist with visited-state hashing. States are interned
    // in discovery order; all iteration below follows vector order, so
    // the exploration (and every witness) is deterministic.
    let mut states: Vec<State> = Vec::new();
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut exhausted = false;

    // Every channel can receive a fresh packet: destination untouched,
    // source untouched.
    for c in 0..n {
        if states.len() >= budget {
            exhausted = true;
            break;
        }
        let s = State {
            channel: c,
            dest: DestVal::OrigDst,
            src_orig: true,
        };
        index.insert(s, states.len());
        states.push(s);
    }

    let mut head = 0;
    while head < states.len() && !exhausted {
        let u = head;
        head += 1;
        let s = states[u];
        for (si, site) in sum.channels[s.channel].sites.iter().enumerate() {
            let dest2 = match site.pkt_dest {
                DestAbs::Unchanged => s.dest,
                DestAbs::OrigSrc => {
                    if s.src_orig {
                        DestVal::OrigSrc
                    } else {
                        DestVal::Unknown
                    }
                }
                DestAbs::Const(a) => DestVal::Const(a),
                DestAbs::Unknown => DestVal::Unknown,
            };
            let src2 = site.src_orig && s.src_orig;
            // Progress: an OnRemote whose concrete destination value
            // cannot differ from the pre-state's. `Unchanged` keeps the
            // in-flight header even when its value is unknown; otherwise
            // the abstract values must agree and be a *fixed* address
            // (two Unknowns may be different concrete addresses).
            let progress = site.kind == SendKind::Remote
                && (site.pkt_dest == DestAbs::Unchanged
                    || (dest2 == s.dest && dest2 != DestVal::Unknown));
            let t = State {
                channel: site.target,
                dest: dest2,
                src_orig: src2,
            };
            let v = match index.get(&t) {
                Some(&v) => v,
                None => {
                    if states.len() >= budget {
                        exhausted = true;
                        break;
                    }
                    index.insert(t, states.len());
                    states.push(t);
                    states.len() - 1
                }
            };
            edges.push(Edge {
                from: u,
                to: v,
                chan: s.channel,
                site: si,
                progress,
            });
        }
    }

    let mut witnesses = Vec::new();
    let termination = if exhausted {
        Verdict::Inconclusive
    } else {
        // A loop needs a cycle through at least one non-progress hop:
        // SCC over the explored graph, then test each such edge.
        let mut adj = vec![Vec::new(); states.len()];
        for e in &edges {
            adj[e.from].push(e.to);
        }
        let comp = scc(&adj);
        let violating: Vec<usize> = (0..edges.len())
            .filter(|&i| !edges[i].progress && comp[edges[i].from] == comp[edges[i].to])
            .collect();
        if violating.is_empty() {
            Verdict::Proved
        } else {
            witnesses.push(loop_witness(
                &states,
                &edges,
                &violating,
                n,
                sum,
                &chan_label,
            ));
            Verdict::Violated
        }
    };

    // Delivery: a loop breaks it, and so does any droppable path or
    // escaping exception on a reachable channel (every channel is an
    // entry point, so these hold regardless of the budget).
    let mut definite_delivery_violation = false;
    for (c, s) in sum.channels.iter().enumerate() {
        let ch = &prog.channels[c];
        if !s.raises.is_empty() {
            let names: Vec<&str> = s
                .raises
                .iter()
                .map(|&i| prog.exns[i as usize].as_str())
                .collect();
            definite_delivery_violation = true;
            witnesses.push(Witness {
                code: "E006",
                kind: WitnessKind::Exception,
                channel: chan_label(c),
                message: format!(
                    "channel `{}` may terminate with unhandled exception(s): {}",
                    ch.name,
                    names.join(", ")
                ),
                span: ch.span,
                hops: Vec::new(),
            });
        }
        if s.min_out == 0 {
            definite_delivery_violation = true;
            witnesses.push(Witness {
                code: "E006",
                kind: WitnessKind::Drop,
                channel: chan_label(c),
                message: format!(
                    "channel `{}` has an execution path that neither forwards nor delivers the packet",
                    ch.name
                ),
                span: find_drop_span(prog, c),
                hops: Vec::new(),
            });
        }
    }
    let delivery = if definite_delivery_violation {
        Verdict::Violated
    } else {
        termination
    };

    ModelCheckReport {
        termination,
        delivery,
        states: states.len(),
        transitions: edges.len(),
        budget,
        exhausted,
        witnesses,
    }
}

/// BFS over the explored graph from `sources`, following edges in
/// insertion order. Returns per-state `(distance, incoming edge)` with
/// `usize::MAX` marking unreached states.
fn bfs(
    n_states: usize,
    edges: &[Edge],
    out_edges: &[Vec<usize>],
    sources: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    let mut dist = vec![usize::MAX; n_states];
    let mut parent = vec![usize::MAX; n_states];
    let mut q = VecDeque::new();
    for &s in sources {
        if dist[s] == usize::MAX {
            dist[s] = 0;
            q.push_back(s);
        }
    }
    while let Some(u) = q.pop_front() {
        for &ei in &out_edges[u] {
            let v = edges[ei].to;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = ei;
                q.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Follows `parent` pointers back from `target` collecting the edge
/// chain, in forward order.
fn path_to(parent: &[usize], edges: &[Edge], target: usize) -> Vec<usize> {
    let mut path = Vec::new();
    let mut at = target;
    while parent[at] != usize::MAX {
        let ei = parent[at];
        path.push(ei);
        at = edges[ei].from;
    }
    path.reverse();
    path
}

/// Builds the minimal loop witness: over all violating edges, the one
/// minimizing (entry prefix) + 1 + (cycle back to the edge source),
/// ties broken by exploration order.
fn loop_witness(
    states: &[State],
    edges: &[Edge],
    violating: &[usize],
    n_channels: usize,
    sum: &ProgramSummary,
    chan_label: &dyn Fn(usize) -> String,
) -> Witness {
    let mut out_edges = vec![Vec::new(); states.len()];
    for (i, e) in edges.iter().enumerate() {
        out_edges[e.from].push(i);
    }
    let initials: Vec<usize> = (0..n_channels.min(states.len())).collect();
    let (dist0, parent0) = bfs(states.len(), edges, &out_edges, &initials);

    let mut best: Option<(usize, usize, Vec<usize>, Vec<usize>)> = None;
    for &ei in violating {
        let e = edges[ei];
        if dist0[e.from] == usize::MAX {
            continue; // unreachable from an entry state (cannot happen)
        }
        let (db, pb) = bfs(states.len(), edges, &out_edges, &[e.to]);
        if db[e.from] == usize::MAX {
            continue; // same SCC guarantees a path back
        }
        let score = dist0[e.from] + 1 + db[e.from];
        if best.as_ref().is_none_or(|(s, _, _, _)| score < *s) {
            let prefix = path_to(&parent0, edges, e.from);
            let back = path_to(&pb, edges, e.from);
            best = Some((score, ei, prefix, back));
        }
    }
    let (_, chosen, prefix, back) = best.expect("a violating edge is always reachable");

    let hop = |ei: usize| -> WitnessHop {
        let e = &edges[ei];
        let site = &sum.channels[e.chan].sites[e.site];
        WitnessHop {
            from: chan_label(e.chan),
            to: chan_label(site.target),
            kind: site.kind,
            dest: states[e.to].dest.describe(),
            progress: e.progress,
            span: site.span,
        }
    };
    let cycle_start = prefix.len();
    let mut hops: Vec<WitnessHop> = prefix.iter().copied().map(hop).collect();
    hops.push(hop(chosen));
    hops.extend(back.iter().copied().map(hop));
    let cycle_len = hops.len() - cycle_start;
    let head = states[edges[chosen].from];
    let message = format!(
        "possible packet loop: {cycle_len} hop(s) return the packet to channel `{}` with destination {} and no net progress",
        chan_label(head.channel),
        head.dest.describe()
    );
    Witness {
        code: "E005",
        kind: WitnessKind::Loop { cycle_start },
        channel: chan_label(head.channel),
        message,
        span: hops[cycle_start].span,
        hops,
    }
}

/// True if `e` contains any network output (send or `deliver`),
/// including through called functions.
fn contains_output(e: &TExpr, fun_out: &[bool]) -> bool {
    let mut any = false;
    e.walk(&mut |x| match &x.kind {
        TExprKind::OnRemote { .. } | TExprKind::OnNeighbor { .. } => any = true,
        TExprKind::CallPrim { prim, .. } if prims::table().sig(*prim).name == "deliver" => {
            any = true
        }
        TExprKind::CallFun { index, .. }
            if fun_out.get(*index as usize).copied().unwrap_or(false) =>
        {
            any = true
        }
        _ => {}
    });
    any
}

/// Locates the branch arm responsible for a droppable path: the first
/// `if` whose one arm produces an output while the other produces none.
/// Falls back to the channel declaration span.
fn find_drop_span(prog: &TProgram, c: usize) -> Span {
    let mut fun_out = Vec::with_capacity(prog.funs.len());
    for f in &prog.funs {
        let o = contains_output(&f.body, &fun_out);
        fun_out.push(o);
    }
    let ch = &prog.channels[c];
    let mut found: Option<Span> = None;
    ch.body.walk(&mut |e| {
        if found.is_some() {
            return;
        }
        if let TExprKind::If(_, t, f) = &e.kind {
            let to = contains_output(t, &fun_out);
            let fo = contains_output(f, &fun_out);
            if to && !fo {
                found = Some(f.span);
            } else if fo && !to {
                found = Some(t.span);
            }
        }
    });
    found.unwrap_or(ch.span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use planp_lang::compile_front;

    fn run(src: &str) -> ModelCheckReport {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let sum = summarize(&tp);
        model_check(&tp, &sum, DEFAULT_STATE_BUDGET)
    }

    const PINNED_RELAY: &str = "channel relay(ps : unit, ss : unit, p : ip*udp*blob) is\n\
         (OnRemote(relay, (ipDestSet(#1 p, 10.0.3.1), #2 p, #3 p)); (ps, ss))\n\
         channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
         (OnRemote(relay, (ipDestSet(#1 p, 10.0.3.1), #2 p, #3 p)); (ps, ss))";

    #[test]
    fn plain_forwarding_proved() {
        let r = run(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps, ss))",
        );
        assert!(r.termination.is_proved(), "{r:?}");
        assert!(r.delivery.is_proved(), "{r:?}");
        assert!(r.witnesses.is_empty());
        // One channel, entry state plus nothing new: the self-send
        // reproduces (network, OrigDst).
        assert_eq!(r.states, 1);
        assert_eq!(r.transitions, 1);
    }

    #[test]
    fn destination_repinning_proved_where_scc_rejects() {
        // The SCC screen sees a destination-changing send inside the
        // relay→relay cycle and rejects; tracking the destination VALUE
        // shows every hop re-asserts the same constant — progress.
        let tp = compile_front(PINNED_RELAY).unwrap();
        let sum = summarize(&tp);
        assert!(!crate::termination::check_termination(&tp, &sum).is_proved());
        let r = model_check(&tp, &sum, DEFAULT_STATE_BUDGET);
        assert!(r.termination.is_proved(), "{r:?}");
        assert!(r.delivery.is_proved(), "{r:?}");
    }

    #[test]
    fn bounce_to_source_proved_where_scc_rejects() {
        // dest := ipSrc(p) with the source untouched: the packet heads
        // to one fixed address (the original sender) and is delivered.
        let r = run(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))",
        );
        assert!(r.termination.is_proved(), "{r:?}");
    }

    #[test]
    fn const_ping_pong_violated_with_minimal_witness() {
        let r = run("channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(b, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))\n\
             channel b(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(a, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))");
        assert_eq!(r.termination, Verdict::Violated);
        assert_eq!(r.delivery, Verdict::Violated);
        let w = r.loop_witnesses().next().expect("loop witness");
        let WitnessKind::Loop { cycle_start } = w.kind else {
            panic!("loop kind")
        };
        // Minimal: the entry state (a, original dest) is not on the
        // cycle — one prefix hop pins the destination, then the packet
        // ping-pongs between the two pinned states.
        assert_eq!(cycle_start, 1);
        assert_eq!(w.hops.len(), 3);
        assert_eq!(w.hops[0].from, "a#0");
        assert_eq!(w.hops[0].to, "b#0");
        assert_eq!(w.hops[1].from, "b#0");
        assert_eq!(w.hops[1].to, "a#0");
        assert_eq!(w.hops[1].dest, "10.0.0.1");
        assert_eq!(w.hops[2].to, "b#0");
        assert!(w.hops.iter().all(|h| !h.progress));
    }

    #[test]
    fn neighbor_self_loop_violated() {
        let r = run(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(network, 10.0.0.2, p); (ps, ss))",
        );
        assert_eq!(r.termination, Verdict::Violated);
        let w = r.loop_witnesses().next().unwrap();
        assert_eq!(w.hops.len(), 1);
        assert_eq!(w.hops[0].kind, SendKind::Neighbor);
    }

    #[test]
    fn silent_drop_gets_e006_with_branch_span() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             if ps > 0 then (OnRemote(network, p); (ps, ss)) else (ps, ss)";
        let r = run(src);
        assert!(r.termination.is_proved());
        assert_eq!(r.delivery, Verdict::Violated);
        let w = r.delivery_witnesses().next().unwrap();
        assert_eq!(w.kind, WitnessKind::Drop);
        // The witness anchors on the else arm, not the whole channel.
        let arm = &src[w.span.start as usize..w.span.end as usize];
        assert_eq!(arm, "(ps, ss)");
    }

    #[test]
    fn escaping_exception_gets_e006() {
        let r = run(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is\n\
             (print(tblGet(ss, ipSrc(#1 p))); OnRemote(network, p); (ps, ss))",
        );
        assert_eq!(r.delivery, Verdict::Violated);
        let w = r.delivery_witnesses().next().unwrap();
        assert_eq!(w.kind, WitnessKind::Exception);
        assert!(w.message.contains("NotFound"), "{}", w.message);
    }

    #[test]
    fn budget_exhaustion_is_inconclusive() {
        let tp = compile_front(PINNED_RELAY).unwrap();
        let sum = summarize(&tp);
        let r = model_check(&tp, &sum, 1);
        assert!(r.exhausted);
        assert_eq!(r.termination, Verdict::Inconclusive);
        assert_eq!(r.delivery, Verdict::Inconclusive);
        assert_eq!(r.budget, 1);
    }

    #[test]
    fn witness_json_is_byte_stable_across_runs() {
        let src = "channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(b, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))\n\
             channel b(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(a, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))";
        let render = || {
            let tp = compile_front(src).unwrap();
            let sum = summarize(&tp);
            let r = model_check(&tp, &sum, DEFAULT_STATE_BUDGET);
            let mut out = String::new();
            r.write_json(src, &mut out);
            out
        };
        let a = render();
        let b = render();
        assert_eq!(a, b);
        assert!(a.contains("\"termination\":\"violated\""), "{a}");
    }
}
