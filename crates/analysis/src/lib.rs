//! # planp-analysis — static safety analyses for PLAN-P programs
//!
//! Implements the verification story of section 2.1 of *"Adapting
//! Distributed Applications Using Extensible Networks"*:
//!
//! * **local termination** — holds by construction (the front end rules
//!   out recursion and unbounded loops);
//! * **[global termination](termination)** — packets cannot cycle through
//!   the network, proved by state exploration over channels × abstract
//!   destinations, under the assumption that IP routing is acyclic;
//! * **[guaranteed delivery](delivery)** — no cycles, no escaping
//!   exceptions, and every path forwards or delivers;
//! * **[linear duplication](duplication)** — a fix-point proof that
//!   packet copies do not compound exponentially;
//! * **[per-packet cost bounds](cost)** — a worst-case bound on VM steps
//!   and send effects per packet, per channel overload, enforceable
//!   against a step budget ([`Policy::with_step_budget`]);
//! * **[per-site bounds](profile)** — the cost bound refined to
//!   individual expression sites, joined by the telemetry profiler
//!   against observed per-site steps (the utilization heatmap), plus
//!   static superinstruction-candidate detection for the future
//!   compilation tier;
//! * **[lints](lint)** — advisory [diagnostics](diag) (unused bindings,
//!   constant conditions, escaping exceptions, unreachable channels,
//!   shadowing) with caret rendering and byte-stable JSON;
//! * **[state effects](state)** — an abstract interpretation bounding
//!   table growth: which tables are written, whether key domains are
//!   finite or packet-derived, max inserts per dispatch, and per-table
//!   entry bounds. Feeds the `E009`/`E010` state-safety verdicts
//!   ([`Policy::with_state_budget`]), the plan-level `budget state`
//!   composition, and the `S001`–`S004` state lints;
//! * **[exhaustive model checking](modelcheck)** — an explicit-state
//!   exploration of (channel × destination value × source-intact)
//!   states that refines the SCC screen's termination/delivery
//!   verdicts and reconstructs minimal counterexample
//!   [witnesses](witness) (codes `E005`/`E006`), replayable through
//!   the simulator;
//! * **[deployment plans](plan)** — placement of ASPs over named
//!   topologies with compositional guarantees: a [product model
//!   check](compose) of co-deployed ASPs catching joint forwarding
//!   loops no single-program check sees (`E007`), composed per-path
//!   CPU budgets (`E008`), and plan-scope lints (`P001`–`P004`,
//!   `L008`).
//!
//! The [`verifier`] module packages these behind a download [`Policy`],
//! as the paper's late-checking router component does: unverifiable
//! programs are rejected unless the download is authenticated.
//!
//! ## Example
//!
//! ```
//! use planp_analysis::{verify, Policy};
//!
//! let prog = planp_lang::compile_front(
//!     "channel network(ps : unit, ss : unit, p : ip*udp*blob) is
//!        (OnRemote(network, p); (ps, ss))",
//! ).unwrap();
//! let report = verify(&prog, Policy::strict());
//! assert!(report.accepted());
//! ```

#![warn(missing_docs)]

pub mod compose;
pub mod cost;
pub mod delivery;
pub mod diag;
pub mod duplication;
pub mod lint;
pub mod modelcheck;
pub mod plan;
pub mod profile;
pub mod state;
pub mod summary;
pub mod termination;
pub mod verifier;
pub mod witness;

pub use compose::{product_check, ComposeResult};
pub use cost::{cost_bounds, ChannelCost, CostBound, CostReport};
pub use diag::{Diagnostic, Severity};
pub use duplication::{compute_may_copy, DuplicationInfo};
pub use lint::lint;
pub use modelcheck::{model_check, ModelCheckReport, Verdict, DEFAULT_STATE_BUDGET};
pub use plan::{
    Install, NodeState, PathBudget, PlanAsp, PlanCheck, PlanNode, PlanPolicy, PlanReport,
    PlanTopology,
};
pub use profile::{
    site_bounds, superinstruction_candidates, ChannelSites, SiteInfo, SiteReport,
    SuperinstructionCandidate,
};
pub use state::{
    state_effects, state_lints, ChannelState, EntryBound, StateCounts, StateReport, StateRoot,
    TableState,
};
pub use summary::{summarize, DestAbs, ProgramSummary, SendKind, SendSite};
pub use termination::Outcome;
pub use verifier::{verify, verify_with_summary, AnalysisStats, Policy, VerifyReport};
pub use witness::{Witness, WitnessHop, WitnessKind};
