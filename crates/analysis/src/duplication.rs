//! Safe (linear) packet-duplication analysis (paper section 2.1).
//!
//! The property: packet duplication is at most linear — processing one
//! packet can fan out into several, but the fan-out must not compound
//! hop after hop into exponential growth.
//!
//! Following the paper, this is a fix-point computation that assigns a
//! boolean (`may_copy`) to each channel per iteration:
//!
//! * a channel **may copy** if some execution path performs two or more
//!   network sends, or at least one send whose *target* may copy, or a
//!   send to a known multicast group (the network fans those out);
//! * the program is **safe** if no execution path contains more than one
//!   send whose target may copy — i.e. copies are made at most once along
//!   any packet's lifetime, so growth is linear.
//!
//! The fix-point is monotone over the finite lattice of boolean vectors,
//! so it converges in at most `channels + 1` iterations (the paper's
//! bound is `2^c` state explorations; ours is tighter because we iterate
//! the vector directly).

use crate::diag::Diagnostic;
use crate::summary::{max_path_weight, DestAbs, ProgramSummary};
use crate::termination::Outcome;
use planp_lang::tast::TProgram;

/// Result of the fix-point: which channels may produce more than one
/// downstream packet per input packet.
#[derive(Debug, Clone)]
pub struct DuplicationInfo {
    /// `may_copy[c]` for each channel index.
    pub may_copy: Vec<bool>,
    /// Number of fix-point iterations performed.
    pub iterations: usize,
}

/// Runs the may-copy fix-point.
pub fn compute_may_copy(prog: &TProgram, _sum: &ProgramSummary) -> DuplicationInfo {
    let n = prog.channels.len();
    let mut may_copy = vec![false; n];
    let mut iterations = 0;

    loop {
        iterations += 1;
        let mut changed = false;
        // Weight of a send: 2 if the target may copy or the destination is
        // a multicast group, else 1. A path of weight >= 2 means the
        // channel can turn one packet into more than one.
        let snapshot = may_copy.clone();
        let weigh = |target: usize, dest: DestAbs| -> u32 {
            if snapshot[target] || dest.is_multicast_const() {
                2
            } else {
                1
            }
        };
        // Function bodies first (ordered, non-recursive).
        let mut fun_weights = Vec::with_capacity(prog.funs.len());
        for f in &prog.funs {
            let w = max_path_weight(prog, &f.body, &fun_weights, &weigh);
            fun_weights.push(w);
        }
        for (c, ch) in prog.channels.iter().enumerate() {
            let w = max_path_weight(prog, &ch.body, &fun_weights, &weigh);
            let copies = w >= 2;
            if copies && !may_copy[c] {
                may_copy[c] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Monotone over a finite lattice; n + 1 iterations suffice.
        assert!(
            iterations <= n + 1,
            "duplication fix-point failed to converge"
        );
    }

    DuplicationInfo {
        may_copy,
        iterations,
    }
}

/// Checks linear duplication: at most one *copying* send per execution
/// path, in every channel.
pub fn check_duplication(prog: &TProgram, sum: &ProgramSummary) -> Outcome {
    let info = compute_may_copy(prog, sum);

    // Weight counts only copying sends.
    let weigh = |target: usize, dest: DestAbs| -> u32 {
        if info.may_copy[target] || dest.is_multicast_const() {
            1
        } else {
            0
        }
    };
    let mut fun_weights = Vec::with_capacity(prog.funs.len());
    for f in &prog.funs {
        let w = max_path_weight(prog, &f.body, &fun_weights, &weigh);
        fun_weights.push(w);
    }

    let mut errors = Vec::new();
    for (c, ch) in prog.channels.iter().enumerate() {
        let copying_sends = max_path_weight(prog, &ch.body, &fun_weights, &weigh);
        if copying_sends >= 2 {
            errors.push(Diagnostic::error(
                "E003",
                ch.span,
                format!(
                    "channel `{}` can execute {copying_sends} sends to copying channels on one path — packet duplication may be exponential",
                    ch.name
                ),
            ));
        }
        // A copying channel inside a cycle with itself compounds; the
        // termination analysis already rejects destination-changing
        // cycles, and progress-only cycles deliver, so per-path linearity
        // plus termination gives global linearity.
        let _ = c;
    }

    if errors.is_empty() {
        Outcome::Proved
    } else {
        Outcome::Rejected(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use planp_lang::compile_front;

    fn front(src: &str) -> (TProgram, ProgramSummary) {
        let tp = compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"));
        let sum = summarize(&tp);
        (tp, sum)
    }

    #[test]
    fn single_forward_is_linear() {
        let (tp, sum) = front(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps, ss))",
        );
        let info = compute_may_copy(&tp, &sum);
        assert_eq!(info.may_copy, vec![false]);
        assert!(check_duplication(&tp, &sum).is_proved());
    }

    #[test]
    fn double_send_to_terminal_is_linear() {
        // Two copies handed to a channel that never re-sends: linear fan-out.
        let (tp, sum) = front(
            "channel sink(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))\n\
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(sink, 10.0.0.2, p); OnNeighbor(sink, 10.0.0.3, p); (ps, ss))",
        );
        let info = compute_may_copy(&tp, &sum);
        // `network` itself copies…
        assert_eq!(info.may_copy, vec![false, true]);
        // …but no path has two sends to *copying* channels.
        assert!(check_duplication(&tp, &sum).is_proved());
    }

    #[test]
    fn double_send_to_copying_channel_rejected() {
        // `fan` duplicates; `network` sends to `fan` twice: 1 → 2 → 4 → …
        let (tp, sum) = front(
            "channel sink(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))\n\
             channel fan(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(sink, 10.0.0.2, p); OnNeighbor(sink, 10.0.0.3, p); (ps, ss))\n\
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(fan, 10.0.0.4, p); OnNeighbor(fan, 10.0.0.5, p); (ps, ss))",
        );
        let info = compute_may_copy(&tp, &sum);
        assert!(info.may_copy[1] && info.may_copy[2]);
        let out = check_duplication(&tp, &sum);
        let Outcome::Rejected(errs) = out else {
            panic!("expected rejection")
        };
        assert!(errs[0].message.contains("exponential"));
    }

    #[test]
    fn may_copy_propagates_through_chain() {
        let (tp, sum) = front(
            "channel sink(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))\n\
             channel fan(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(sink, 10.0.0.2, p); OnNeighbor(sink, 10.0.0.3, p); (ps, ss))\n\
             channel relay(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(fan, 10.0.0.4, p); (ps, ss))",
        );
        let info = compute_may_copy(&tp, &sum);
        // relay forwards once to a copying channel → relay itself may copy.
        assert_eq!(info.may_copy, vec![false, true, true]);
        assert!(info.iterations >= 2);
        // Still linear: each path has at most one copying send.
        assert!(check_duplication(&tp, &sum).is_proved());
    }

    #[test]
    fn multicast_send_counts_as_copying() {
        let (tp, sum) = front(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, (ipDestSet(#1 p, 224.0.0.5), #2 p, #3 p));\n\
              OnRemote(network, (ipDestSet(#1 p, 224.0.0.6), #2 p, #3 p));\n\
              (ps, ss))",
        );
        let out = check_duplication(&tp, &sum);
        assert!(!out.is_proved());
    }

    #[test]
    fn branching_sends_are_not_cumulative() {
        // One send per path even though two sites exist.
        let (tp, sum) = front(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (if ps > 0 then OnRemote(network, p) else OnRemote(network, p); (ps, ss))",
        );
        let info = compute_may_copy(&tp, &sum);
        assert_eq!(info.may_copy, vec![false]);
        assert!(check_duplication(&tp, &sum).is_proved());
    }
}
