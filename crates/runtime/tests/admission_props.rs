//! Property suite for deadline admission: across a seeded 200-packet
//! trace, a packet whose lineage deadline has passed is never
//! dispatched to the VM — it dies at node ingress if it expired in
//! flight, or at the layer's admission gate if it expired waiting in
//! the CPU queue — and the outcome is byte-identical across engines
//! and across reruns.

use bytes::Bytes;
use netsim::packet::{addr, Packet};
use netsim::{App, CpuModel, LinkSpec, NodeApi, Sim, SimTime};
use planp_analysis::Policy;
use planp_runtime::{install_planp, load, Admission, Engine, LayerConfig};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

const FORWARDER: &str = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                         (OnRemote(network, p); (ps, ss))";

const PACKETS: u64 = 200;

/// How each packet's deadline was chosen, decided by the node RNG:
/// 0 = already unmeetable (expires in flight, before arrival),
/// 1 = tight (500 µs total — expires in the router's CPU queue once the
///     backlog passes it), 2 = none.
struct DeadlineSource {
    dst: u32,
    sent: u64,
    by_cat: Rc<RefCell<[u64; 3]>>,
}

impl App for DeadlineSource {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(Duration::from_micros(20), 0);
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        if self.sent >= PACKETS {
            return;
        }
        self.sent += 1;
        let mut pkt = Packet::udp(
            api.addr(),
            self.dst,
            1000,
            2000,
            Bytes::from(vec![self.sent as u8; 64]),
        );
        let now_ns = api.now().as_nanos();
        let cat = api.rand_below(3) as usize;
        self.by_cat.borrow_mut()[cat] += 1;
        pkt.lineage.deadline_ns = match cat {
            0 => now_ns + 1,
            1 => now_ns + 500_000,
            _ => 0,
        };
        api.send(pkt);
        api.set_timer(Duration::from_micros(20), 0);
    }
}

struct Sink {
    got: Rc<RefCell<u64>>,
}
impl App for Sink {
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {
        *self.got.borrow_mut() += 1;
    }
}

/// One seeded run: (matched, layer expired, layer shed, router shed
/// bucket, delivered, per-category sends).
fn run(engine: Engine, seed: u64) -> (u64, u64, u64, u64, u64, [u64; 3]) {
    let image = load(FORWARDER, Policy::no_delivery()).expect("forwarder loads");
    let mut sim = Sim::new(seed);
    let a = sim.add_host("a", addr(10, 0, 0, 1));
    let r = sim.add_router("r", addr(10, 0, 0, 254));
    let b = sim.add_host("b", addr(10, 0, 1, 1));
    sim.add_link(LinkSpec::ethernet_100(), &[a, r]);
    sim.add_link(LinkSpec::ethernet_100(), &[r, b]);
    sim.compute_routes();
    // A slow router CPU: the 20 µs arrival spacing against 100 µs of
    // service builds a backlog that outlives the tight deadlines, so
    // some packets expire *between* ingress and dispatch.
    sim.set_cpu(
        r,
        CpuModel {
            per_packet: Duration::from_micros(100),
            queue_cap: 256,
        },
    );
    let handle = install_planp(
        &mut sim,
        r,
        &image,
        LayerConfig {
            engine,
            admission: Some(Admission {
                enforce_deadline: true,
                ..Admission::default()
            }),
            ..LayerConfig::default()
        },
    )
    .expect("install");
    let got = Rc::new(RefCell::new(0u64));
    sim.add_app(b, Box::new(Sink { got: got.clone() }));
    let by_cat = Rc::new(RefCell::new([0u64; 3]));
    sim.add_app(
        a,
        Box::new(DeadlineSource {
            dst: addr(10, 0, 1, 1),
            sent: 0,
            by_cat: by_cat.clone(),
        }),
    );
    sim.run_until(SimTime::from_secs(2));

    let stats = handle.stats.borrow();
    let cats = *by_cat.borrow();
    let out = (
        stats.matched,
        stats.deadline_expired,
        stats.shed,
        sim.node(r).shed,
        *got.borrow(),
        cats,
    );
    drop(stats);
    out
}

#[test]
fn expired_packets_never_reach_the_vm() {
    for seed in [3u64, 17, 1999] {
        let (matched, expired, shed, router_shed, delivered, cats) = run(Engine::Jit, seed);
        assert_eq!(cats.iter().sum::<u64>(), PACKETS, "seed {seed}");
        // Every packet either ran a channel or died of its deadline —
        // nothing was lost to queues or routing.
        assert_eq!(matched + router_shed, PACKETS, "seed {seed}");
        assert_eq!(shed, 0, "seed {seed}: no brownout, no in-flight cap");
        // Unmeetable deadlines died at ingress, before the layer; the
        // layer's own gate caught exactly the queue-expired remainder.
        assert_eq!(router_shed - expired, cats[0], "seed {seed}");
        assert!(expired >= 1, "seed {seed}: some tight deadline must age out");
        // A dispatched forwarder run is a delivery: the VM never saw an
        // expired packet, so deliveries and dispatches agree exactly.
        assert_eq!(delivered, matched, "seed {seed}");
    }
}

#[test]
fn deadline_outcome_is_engine_and_rerun_invariant() {
    for seed in [3u64, 17, 1999] {
        let jit = run(Engine::Jit, seed);
        assert_eq!(jit, run(Engine::Jit, seed), "seed {seed}: rerun drifted");
        assert_eq!(
            jit,
            run(Engine::Interp, seed),
            "seed {seed}: engines disagree"
        );
    }
}
