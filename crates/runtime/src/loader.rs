//! The program download path (figure 1 of the paper): source text →
//! parse → type check → **verify** → **JIT compile**.
//!
//! This is the "late checking" pipeline the paper's router runs when a
//! program arrives: unverifiable programs are rejected unless the
//! download is authenticated ([`Policy::authenticated`]).

use planp_analysis::{verify, Policy, VerifyReport};
use planp_lang::{compile_front, count_lines, LangError, TProgram};
use planp_vm::jit::{self, CodegenStats, CompiledProgram};
use std::fmt;
use std::rc::Rc;

/// Why a download was refused.
#[derive(Debug)]
pub enum LoadError {
    /// Lexical, syntactic, or type error.
    Front(LangError),
    /// The verifier could not prove the properties the policy demands.
    /// Boxed: the report carries cost bounds and diagnostics, making it
    /// much larger than the `Ok` path should pay for.
    Rejected(Box<VerifyReport>),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Front(e) => write!(f, "{e}"),
            LoadError::Rejected(r) => {
                writeln!(f, "program rejected by the verifier:")?;
                for e in r.errors() {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<LangError> for LoadError {
    fn from(e: LangError) -> Self {
        LoadError::Front(e)
    }
}

/// A successfully downloaded, verified, and compiled program, ready to
/// be installed on any number of nodes (each installation gets its own
/// state).
pub struct LoadedProgram {
    /// The original source text.
    pub source: String,
    /// The typed program.
    pub prog: Rc<TProgram>,
    /// The JIT-compiled program (shareable; state lives per node).
    pub compiled: Rc<CompiledProgram>,
    /// The verifier's findings.
    pub report: VerifyReport,
    /// Code-generation statistics (the figure 3 measurement).
    pub codegen: CodegenStats,
    /// Source lines (the paper's "Number of lines" metric).
    pub lines: usize,
}

impl fmt::Debug for LoadedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoadedProgram")
            .field("lines", &self.lines)
            .field("channels", &self.prog.channels.len())
            .field("accepted", &self.report.accepted())
            .field("codegen", &self.codegen)
            .finish()
    }
}

/// Runs the full download path on `source` under `policy`.
///
/// # Errors
///
/// [`LoadError::Front`] on malformed programs, [`LoadError::Rejected`]
/// when verification fails under the policy.
pub fn load(source: &str, policy: Policy) -> Result<LoadedProgram, LoadError> {
    let prog = Rc::new(compile_front(source)?);
    let report = verify(&prog, policy);
    if !report.accepted() {
        return Err(LoadError::Rejected(Box::new(report)));
    }
    let (compiled, codegen) = jit::compile(prog.clone());
    Ok(LoadedProgram {
        source: source.to_string(),
        prog,
        compiled: Rc::new(compiled),
        report,
        codegen,
        lines: count_lines(source),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FORWARDER: &str = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                             (OnRemote(network, p); (ps, ss))";

    #[test]
    fn loads_good_program() {
        let lp = load(FORWARDER, Policy::strict()).unwrap();
        assert_eq!(lp.lines, 2);
        assert!(lp.report.accepted());
        assert!(lp.codegen.nodes > 0);
        assert_eq!(lp.compiled.channels.len(), 1);
    }

    #[test]
    fn front_errors_propagate() {
        let err = load("val x = ", Policy::strict()).unwrap_err();
        assert!(matches!(err, LoadError::Front(_)));
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn verifier_rejects_under_strict() {
        let dropper = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)";
        let err = load(dropper, Policy::strict()).unwrap_err();
        let LoadError::Rejected(report) = err else {
            panic!()
        };
        assert!(!report.accepted());
        // The same program loads under a monitor-friendly policy.
        assert!(load(dropper, Policy::no_delivery()).is_ok());
    }

    #[test]
    fn authenticated_download_skips_requirements() {
        let bouncer = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                       (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))";
        assert!(load(bouncer, Policy::strict()).is_err());
        assert!(load(bouncer, Policy::authenticated()).is_ok());
    }
}
