//! Plan-driven deployment: verify a whole plan statically, then
//! install exactly what was verified.
//!
//! [`load_plan`] is the plan-scope analogue of [`crate::load`]: it
//! parses a deployment plan, resolves the named topology from the
//! [`netsim::TopoSpec`] registry, compiles every deployed ASP, and
//! runs the [plan verifier](planp_analysis::plan) — placement, the
//! cross-ASP product model check (`E007`), composed path budgets
//! (`E008`), and the plan lints — *before* anything touches a node.
//!
//! [`install_plan`] then instantiates the accepted image over a live
//! simulator, one [`RecoveryService`] per install point, each wired
//! with a plan-scope preflight: a crash-redeploy re-runs the *plan*
//! verifier, not just the node's own program check, so a deployment
//! that has become jointly unsafe (say, the plan object was edited
//! while the node was down) refuses to come back.
//!
//! [`replay_plan`] closes the loop on plan-level witnesses the same
//! way [`crate::replay`] does for single-program ones: the plan's own
//! topology is built for real, the (by hypothesis unsafe) ASPs are
//! installed as authenticated downloads, and probe bursts along every
//! plan path either loop — dispatch counts exploding past
//! [`LOOP_FACTOR`] × sent — or don't.

use crate::layer::{install_planp, LayerConfig, PlanpHandle};
use crate::loader::load;
use crate::recovery::{RecoveryLog, RecoveryService};
use crate::replay::{ReplayReport, LOOP_FACTOR, REPLAY_PACKETS};
use bytes::Bytes;
use netsim::packet::Packet;
use netsim::{App, NodeApi, NodeId, Sim, SimTime, TopoSpec};
use planp_analysis::plan::{PlanAsp, PlanCheck, PlanNode, PlanReport, PlanTopology};
use planp_analysis::Policy;
use planp_lang::{compile_front, parse_plan, LangError};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Why a plan failed to load.
#[derive(Debug)]
pub enum PlanError {
    /// The plan source failed to parse.
    Plan(LangError),
    /// The plan names a topology the registry does not know.
    UnknownTopology(String),
    /// A `deploy` names an ASP the resolver does not know.
    UnknownAsp(String),
    /// A `deploy` names an unknown per-program policy.
    UnknownPolicy(String),
    /// An ASP failed to parse or type-check.
    Asp {
        /// The ASP's plan-level name.
        name: String,
        /// The front-end error.
        error: LangError,
    },
    /// Placement/alignment failed (see [`PlanCheck::new`]).
    Check(LangError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Plan(e) => write!(f, "plan: {}", e.message),
            PlanError::UnknownTopology(t) => write!(f, "unknown topology `{t}`"),
            PlanError::UnknownAsp(a) => write!(f, "unknown ASP `{a}`"),
            PlanError::UnknownPolicy(p) => write!(f, "unknown policy `{p}`"),
            PlanError::Asp { name, error } => write!(f, "ASP `{name}`: {}", error.message),
            PlanError::Check(e) => write!(f, "{}", e.message),
        }
    }
}

impl std::error::Error for PlanError {}

/// One resolved install point of a loaded plan.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Topology node index (parallel to [`TopoSpec::build`]'s ids).
    pub node: usize,
    /// Topology node name.
    pub node_name: String,
    /// ASP name.
    pub asp: String,
    /// ASP source, re-verified on every (re)install.
    pub source: String,
    /// Per-program download policy for this install.
    pub policy: Policy,
}

/// A statically verified deployment plan, ready to install or replay.
pub struct PlanImage {
    /// Plan name.
    pub name: String,
    /// The plan source text (for rendering reports against).
    pub source: String,
    /// The topology spec the plan deploys over.
    pub topo: TopoSpec,
    /// The placed checker — kept so installs can re-verify at plan
    /// scope.
    pub check: PlanCheck,
    /// The verification result.
    pub report: PlanReport,
    /// Resolved install points with their sources and policies.
    pub placements: Vec<Placement>,
}

/// Bridges a simulator topology spec into the analysis-side model.
pub fn plan_topology(spec: &TopoSpec) -> PlanTopology {
    PlanTopology::new(
        spec.name.clone(),
        spec.nodes
            .iter()
            .map(|n| PlanNode {
                name: n.name.clone(),
                addr: n.addr,
                slices: n.slices.clone(),
            })
            .collect(),
        spec.adjacency(),
        spec.paths.clone(),
    )
}

fn program_policy(name: &str) -> Option<Policy> {
    match name {
        "strict" => Some(Policy::strict()),
        "no_delivery" => Some(Policy::no_delivery()),
        "authenticated" => Some(Policy::authenticated()),
        _ => None,
    }
}

/// Parses, places, and statically verifies a deployment plan.
///
/// `resolver` maps an ASP name from a `deploy` line to its source and
/// default download policy (a per-deploy `policy` clause overrides the
/// latter). The returned image carries the full [`PlanReport`] —
/// callers decide what rejection means; [`install_plan`] refuses
/// unaccepted images.
///
/// # Errors
///
/// Fails on unparsable plans, unknown topologies/ASPs/policies, ASPs
/// that do not compile, and misaligned placements. A plan that merely
/// *verifies badly* (joint loop, blown budget) still loads — inspect
/// [`PlanReport::accepted`].
pub fn load_plan(
    src: &str,
    resolver: &dyn Fn(&str) -> Option<(String, Policy)>,
) -> Result<PlanImage, PlanError> {
    let ast = parse_plan(src).map_err(PlanError::Plan)?;
    let topo = TopoSpec::named(&ast.topology)
        .ok_or_else(|| PlanError::UnknownTopology(ast.topology.clone()))?;

    let mut asps = Vec::new();
    let mut sources = Vec::new();
    for d in &ast.deploys {
        let (source, default_policy) =
            resolver(&d.asp).ok_or_else(|| PlanError::UnknownAsp(d.asp.clone()))?;
        let policy = match d.policy.as_deref() {
            None => default_policy,
            Some(p) => program_policy(p).ok_or_else(|| PlanError::UnknownPolicy(p.to_string()))?,
        };
        let prog = compile_front(&source).map_err(|error| PlanError::Asp {
            name: d.asp.clone(),
            error,
        })?;
        asps.push(PlanAsp::from_program(&d.asp, &prog));
        sources.push((source, policy));
    }

    let check = PlanCheck::new(ast, plan_topology(&topo), asps).map_err(PlanError::Check)?;
    let report = check.verify();
    let placements = check
        .installs
        .iter()
        .map(|i| {
            let (source, policy) = &sources[i.deploy];
            Placement {
                node: i.node,
                node_name: topo.nodes[i.node].name.clone(),
                asp: check.plan.deploys[i.deploy].asp.clone(),
                source: source.clone(),
                policy: *policy,
            }
        })
        .collect();

    Ok(PlanImage {
        name: check.plan.name.clone(),
        source: src.to_string(),
        topo,
        check,
        report,
        placements,
    })
}

/// Installs an accepted plan over a live simulator whose nodes were
/// created by `image.topo.build(sim)` (so `ids` is parallel to the
/// topology's nodes). Each install point gets a [`RecoveryService`]
/// whose preflight re-runs the *plan-level* verifier, so crash
/// recoveries re-check the composition, not just the local program.
/// Returns the per-install recovery logs, parallel to
/// `image.placements`.
///
/// # Errors
///
/// Refuses unaccepted images and co-resident placements (a node hosts
/// exactly one packet hook).
pub fn install_plan(
    sim: &mut Sim,
    image: &PlanImage,
    ids: &[NodeId],
    config: LayerConfig,
) -> Result<Vec<Rc<RefCell<RecoveryLog>>>, String> {
    if !image.report.accepted() {
        return Err(format!(
            "plan `{}` was rejected by the static verifier:\n{}",
            image.name,
            image.report.render(&image.source)
        ));
    }
    for (i, a) in image.placements.iter().enumerate() {
        if let Some(b) = image.placements[..i].iter().find(|b| b.node == a.node) {
            return Err(format!(
                "plan `{}` co-locates `{}` and `{}` on node `{}`, which hosts one hook",
                image.name, b.asp, a.asp, a.node_name
            ));
        }
    }
    let check = Rc::new(image.check.clone());
    let plan_name = image.name.clone();
    let mut logs = Vec::new();
    for p in &image.placements {
        let check = check.clone();
        let plan_name = plan_name.clone();
        let preflight = Rc::new(move || {
            let report = check.verify();
            if report.accepted() {
                Ok(())
            } else {
                Err(format!(
                    "plan `{plan_name}` no longer verifies at plan scope (joint: {})",
                    report.joint.as_str()
                ))
            }
        });
        let svc =
            RecoveryService::new(p.source.clone(), p.policy, config).with_preflight(preflight);
        logs.push(svc.log.clone());
        sim.add_app(ids[p.node], Box::new(svc));
    }
    Ok(logs)
}

/// One probe endpoint: fires [`REPLAY_PACKETS`] at each of its path
/// egresses at start-up and counts whatever planned traffic reaches it.
struct PathProbe {
    dsts: Vec<u32>,
    got: Rc<RefCell<u64>>,
}

impl App for PathProbe {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for &dst in &self.dsts {
            for i in 0..REPLAY_PACKETS {
                let pkt = Packet::udp(api.addr(), dst, 1000, 2000, Bytes::from(vec![i as u8; 32]));
                api.send(pkt);
            }
        }
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {
        *self.got.borrow_mut() += 1;
    }
}

/// Replays a plan concretely: builds the plan's own topology, installs
/// every placement as an authenticated download (the plan is by
/// hypothesis unsafe — that is what is being demonstrated), sends a
/// probe burst along every plan path, and reports what the network
/// observed. A plan-level loop witness is confirmed when dispatches
/// reach [`LOOP_FACTOR`] × packets sent.
///
/// # Errors
///
/// Fails if a placement's ASP does not load even under the
/// authenticated policy.
pub fn replay_plan(image: &PlanImage) -> Result<ReplayReport, String> {
    let mut sim = Sim::new(7);
    let ids = image.topo.build(&mut sim);

    let mut handles: Vec<PlanpHandle> = Vec::new();
    for p in &image.placements {
        let loaded = load(&p.source, Policy::authenticated())
            .map_err(|e| format!("ASP `{}`: {e}", p.asp))?;
        let handle = install_planp(&mut sim, ids[p.node], &loaded, LayerConfig::default())
            .map_err(|e| format!("install `{}` on `{}`: {e}", p.asp, p.node_name))?;
        handles.push(handle);
    }

    // One endpoint app per node that originates or terminates a path.
    let mut endpoints: Vec<(usize, Vec<u32>)> = Vec::new();
    for &(ingress, egress) in &image.topo.paths {
        let dst = image.topo.nodes[egress].addr;
        match endpoints.iter_mut().find(|(n, _)| *n == ingress) {
            Some((_, dsts)) => dsts.push(dst),
            None => endpoints.push((ingress, vec![dst])),
        }
        if !endpoints.iter().any(|(n, _)| *n == egress) {
            endpoints.push((egress, Vec::new()));
        }
    }
    let got = Rc::new(RefCell::new(0u64));
    let mut sent = 0u64;
    for (node, dsts) in endpoints {
        sent += REPLAY_PACKETS * dsts.len() as u64;
        sim.add_app(
            ids[node],
            Box::new(PathProbe {
                dsts,
                got: got.clone(),
            }),
        );
    }
    sim.run_until(SimTime::from_secs(5));

    let mut dispatches = 0;
    let mut dropped = 0;
    let mut errors = 0;
    for h in &handles {
        let s = h.stats.borrow();
        dispatches += s.matched;
        dropped += s.dropped;
        errors += s.errors;
    }
    let delivered = *got.borrow();
    Ok(ReplayReport {
        sent,
        dispatches,
        delivered,
        dropped,
        errors,
        confirmed_loop: dispatches >= LOOP_FACTOR * sent,
        confirmed_drop: delivered == 0 && dropped > 0,
        confirmed_exception: errors > 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Inline copies of the bundled sources: the runtime crate sits
    // below `planp-apps`, so it cannot reach the embedded bundle.
    const FORWARDER: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                             (OnRemote(network, p); (ps + 1, ss))";
    const BOUNCE_A: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                            if ipDst(#1 p) = thisHost()\n\
                            then (deliver(p); (ps, ss))\n\
                            else (OnRemote(network, (ipDestSet(#1 p, 10.0.3.1), #2 p, #3 p)); (ps + 1, ss))";
    const BOUNCE_B: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                            if ipDst(#1 p) = thisHost()\n\
                            then (deliver(p); (ps, ss))\n\
                            else (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps + 1, ss))";

    const PAIR_PLAN: &str = "plan pair\n\
                             topology relay_pair\n\
                             class data port 5555\n\
                             deploy forwarder for data on relays\n";
    const BOUNCE_PLAN: &str = "plan bounce\n\
                               topology relay_pair\n\
                               class data port 5555\n\
                               deploy bounce_a for data on r1\n\
                               deploy bounce_b for data on r2\n";

    fn resolver(name: &str) -> Option<(String, Policy)> {
        match name {
            "forwarder" => Some((FORWARDER.to_string(), Policy::strict())),
            "bounce_a" => Some((BOUNCE_A.to_string(), Policy::strict())),
            "bounce_b" => Some((BOUNCE_B.to_string(), Policy::strict())),
            _ => None,
        }
    }

    #[test]
    fn accepted_plan_loads_and_installs() {
        let image = load_plan(PAIR_PLAN, &resolver).expect("loads");
        assert!(image.report.accepted());
        assert!(image.report.max_budget() > 0, "finite composed budget");
        let placed: Vec<(&str, &str)> = image
            .placements
            .iter()
            .map(|p| (p.node_name.as_str(), p.asp.as_str()))
            .collect();
        assert_eq!(placed, vec![("r1", "forwarder"), ("r2", "forwarder")]);

        let mut sim = Sim::new(5);
        let ids = image.topo.build(&mut sim);
        let logs = install_plan(&mut sim, &image, &ids, LayerConfig::default()).expect("installs");
        assert_eq!(logs.len(), image.placements.len());
        sim.run_until(SimTime::from_secs(1));
        for log in &logs {
            let log = log.borrow();
            assert!(log.handle.is_some(), "every placement came up");
            assert_eq!(log.failures, 0, "no preflight or verify failures");
        }
    }

    #[test]
    fn rejected_plan_refuses_install_and_its_witness_replays() {
        let image = load_plan(BOUNCE_PLAN, &resolver).expect("loads despite rejection");
        assert!(!image.report.accepted());
        assert!(
            image.report.witnesses.iter().any(|w| w.code == "E007"),
            "joint loop witness"
        );

        let mut sim = Sim::new(5);
        let ids = image.topo.build(&mut sim);
        let err = install_plan(&mut sim, &image, &ids, LayerConfig::default())
            .expect_err("rejected plans must not install");
        assert!(err.contains("rejected"), "{err}");

        let rep = replay_plan(&image).expect("replay runs");
        assert!(
            rep.confirmed_loop,
            "predicted joint loop reproduces: {rep:?}"
        );
    }

    fn load_err(src: &str) -> PlanError {
        match load_plan(src, &resolver) {
            Err(e) => e,
            Ok(_) => panic!("plan unexpectedly loaded"),
        }
    }

    #[test]
    fn load_errors_name_the_missing_piece() {
        let e = load_err(
            "plan p\ntopology nowhere\nclass data port 1\ndeploy forwarder for data on relays\n",
        );
        assert!(
            matches!(e, PlanError::UnknownTopology(ref t) if t == "nowhere"),
            "{e}"
        );

        let e = load_err(
            "plan p\ntopology relay_pair\nclass data port 1\ndeploy ghost for data on relays\n",
        );
        assert!(
            matches!(e, PlanError::UnknownAsp(ref a) if a == "ghost"),
            "{e}"
        );

        let e = load_err(
            "plan p\ntopology relay_pair\nclass data port 1\n\
             deploy forwarder for data on relays policy bogus\n",
        );
        assert!(
            matches!(e, PlanError::UnknownPolicy(ref p) if p == "bogus"),
            "{e}"
        );
    }
}
