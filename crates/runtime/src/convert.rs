//! Conversions between simulator packets and PLAN-P packet values.
//!
//! A channel whose packet parameter has shape `ip * tcp * c1 * … * cn`
//! receives the tuple `(ip-header, tcp-header, v1, …, vn)` where the
//! `vi` are decoded from the payload bytes per the wire encodings in
//! [`planp_vm::pkthdr`]. Overload dispatch (section 2.3) works by trying
//! these decodes in declaration order.

use netsim::packet::{ChannelTag, Packet, Transport};
use planp_lang::types::{PacketShape, TransportKind};
use planp_vm::pkthdr::{decode_payload, encode_payload};
use planp_vm::value::{Value, VmError};

/// Converts an arriving packet into the tuple value a channel of the
/// given shape expects. `None` if the transport or payload does not
/// match (the overload does not apply).
pub fn packet_to_value(pkt: &Packet, shape: &PacketShape) -> Option<Value> {
    let mut parts: Vec<Value> = Vec::with_capacity(2 + shape.payload.len());
    parts.push(Value::Ip(pkt.ip));
    match (shape.transport, &pkt.transport) {
        (TransportKind::Tcp, Transport::Tcp(h)) => parts.push(Value::Tcp(*h)),
        (TransportKind::Udp, Transport::Udp(h)) => parts.push(Value::Udp(*h)),
        (TransportKind::None, Transport::None) => {}
        _ => return None,
    }
    let decoded = decode_payload(&shape.payload, &pkt.payload)?;
    parts.extend(decoded);
    Some(Value::tuple(parts))
}

/// Converts a packet value produced by a PLAN-P program back into a
/// simulator packet, carrying `tag` if the send targeted a user-defined
/// channel.
///
/// # Errors
///
/// Traps on values that are not packet tuples (unreachable for checked
/// programs).
pub fn value_to_packet(v: &Value, tag: Option<ChannelTag>) -> Result<Packet, VmError> {
    let Value::Tuple(parts) = v else {
        return Err(VmError::trap(format!(
            "sent value is not a packet tuple: {v:?}"
        )));
    };
    let mut it = parts.iter();
    let ip = match it.next() {
        Some(Value::Ip(h)) => *h,
        other => {
            return Err(VmError::trap(format!(
                "packet tuple must start with an ip header, got {other:?}"
            )))
        }
    };
    let mut rest: Vec<Value> = Vec::new();
    let mut transport = Transport::None;
    for (i, part) in it.enumerate() {
        match part {
            Value::Tcp(h) if i == 0 => transport = Transport::Tcp(*h),
            Value::Udp(h) if i == 0 => transport = Transport::Udp(*h),
            other => rest.push(other.clone()),
        }
    }
    let payload = encode_payload(&rest);
    Ok(Packet {
        ip,
        transport,
        payload,
        tag,
        id: 0,
        lineage: Default::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::packet::{IpHdr, TcpHdr, UdpHdr};

    fn shape(src: &str) -> PacketShape {
        // Parse a packet type via a tiny program.
        let prog = planp_lang::compile_front(&format!(
            "channel network(ps : unit, ss : unit, p : {src}) is (ps, ss)"
        ))
        .unwrap();
        prog.channels[0].shape.clone()
    }

    #[test]
    fn round_trip_udp_blob() {
        let pkt = Packet::udp(1, 2, 10, 20, Bytes::from_static(b"payload"));
        let v = packet_to_value(&pkt, &shape("ip*udp*blob")).unwrap();
        let back = value_to_packet(&v, None).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn transport_mismatch_is_none() {
        let pkt = Packet::udp(1, 2, 10, 20, Bytes::new());
        assert!(packet_to_value(&pkt, &shape("ip*tcp*blob")).is_none());
        let t = Packet::tcp(1, 2, TcpHdr::data(1, 2, 0), Bytes::new());
        assert!(packet_to_value(&t, &shape("ip*udp*blob")).is_none());
    }

    #[test]
    fn typed_payload_decodes_or_rejects() {
        // char*int payload: 1 + 8 bytes.
        let mut raw = vec![b'A'];
        raw.extend_from_slice(&42i64.to_be_bytes());
        let pkt = Packet::tcp(1, 2, TcpHdr::data(1, 2, 0), Bytes::from(raw));
        let sh = shape("ip*tcp*char*int");
        let v = packet_to_value(&pkt, &sh).unwrap();
        let Value::Tuple(parts) = &v else { panic!() };
        assert_eq!(parts[2], Value::Char('A'));
        assert_eq!(parts[3], Value::Int(42));
        // A 3-byte payload does not decode as char*int.
        let bad = Packet::tcp(1, 2, TcpHdr::data(1, 2, 0), Bytes::from_static(b"abc"));
        assert!(packet_to_value(&bad, &sh).is_none());
    }

    #[test]
    fn value_to_packet_carries_tag() {
        let v = Value::tuple(vec![
            Value::Ip(IpHdr::new(1, 2, IpHdr::PROTO_UDP)),
            Value::Udp(UdpHdr::new(5, 6)),
            Value::Blob(Bytes::from_static(b"x")),
        ]);
        let tag = ChannelTag {
            chan: "audio".into(),
            overload: 0,
        };
        let pkt = value_to_packet(&v, Some(tag.clone())).unwrap();
        assert_eq!(pkt.tag, Some(tag));
        assert!(matches!(pkt.transport, Transport::Udp(_)));
    }

    #[test]
    fn non_packet_value_traps() {
        assert!(value_to_packet(&Value::Int(1), None).is_err());
        let v = Value::tuple(vec![Value::Int(1), Value::Int(2)]);
        assert!(value_to_packet(&v, None).is_err());
    }

    #[test]
    fn raw_ip_shape_round_trips() {
        let pkt = Packet {
            ip: IpHdr::new(3, 4, 0),
            transport: Transport::None,
            payload: Bytes::from_static(b"raw"),
            tag: None,
            id: 0,
            lineage: Default::default(),
        };
        let sh = shape("ip*blob");
        let v = packet_to_value(&pkt, &sh).unwrap();
        let back = value_to_packet(&v, None).unwrap();
        assert_eq!(back, pkt);
        // A UDP packet does not match a raw-IP channel.
        let udp = Packet::udp(1, 2, 3, 4, Bytes::new());
        assert!(packet_to_value(&udp, &sh).is_none());
    }

    #[test]
    fn rewritten_header_survives_round_trip() {
        let pkt = Packet::tcp(
            7,
            8,
            TcpHdr::data(1000, 80, 5),
            Bytes::from_static(b"GET /"),
        );
        let sh = shape("ip*tcp*blob");
        let v = packet_to_value(&pkt, &sh).unwrap();
        // Simulate what an ASP does: rebuild with a new destination.
        let Value::Tuple(parts) = &v else { panic!() };
        let Value::Ip(mut ip) = parts[0] else {
            panic!()
        };
        ip.dst = 99;
        let rewritten = Value::tuple(vec![Value::Ip(ip), parts[1].clone(), parts[2].clone()]);
        let back = value_to_packet(&rewritten, None).unwrap();
        assert_eq!(back.ip.dst, 99);
        assert_eq!(back.payload, pkt.payload);
    }
}
