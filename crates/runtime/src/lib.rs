//! # planp-runtime — the extensible network layer
//!
//! Binds the PLAN-P front end, verifier, and execution engines into the
//! simulated network: the equivalent of the paper's Solaris loadable
//! kernel module sitting at the IP layer of routers and hosts.
//!
//! * [`loader`] — the download path: parse → type check → verify
//!   (late checking, section 2.1) → JIT compile (section 2.2);
//! * [`layer`] — the [`netsim::PacketHook`] implementation: channel
//!   dispatch (including overloaded channels), protocol/channel state,
//!   and the `OnRemote`/`OnNeighbor`/`deliver` effects;
//! * [`admission`] — per-channel admission control: deterministic
//!   bounded in-flight, brownout priority shedding, and deadline
//!   enforcement at the layer's ingress;
//! * [`convert`] — packet ↔ PLAN-P value conversions;
//! * [`recovery`] — crash recovery: re-verify and reinstall a node's
//!   ASP after a fault-injected restart;
//! * [`replay`] — runs a model-checker counterexample as concrete
//!   packets through a two-router path and confirms the predicted
//!   loop, drop, or exception;
//! * [`plan`] — plan-driven deployment: load and statically verify a
//!   whole deployment plan (placement, cross-ASP product check,
//!   composed path budgets), install exactly what was verified, and
//!   replay plan-level witnesses over the plan's own topology.
//!
//! ## Example
//!
//! ```
//! use planp_runtime::{load, install_planp, LayerConfig};
//! use planp_analysis::Policy;
//! use netsim::{Sim, LinkSpec, packet::addr};
//!
//! let image = load(
//!     "channel network(ps : unit, ss : unit, p : ip*udp*blob) is
//!        (OnRemote(network, p); (ps, ss))",
//!     Policy::strict(),
//! ).unwrap();
//!
//! let mut sim = Sim::new(1);
//! let router = sim.add_router("r", addr(10, 0, 0, 254));
//! let host = sim.add_host("h", addr(10, 0, 0, 1));
//! sim.add_link(LinkSpec::ethernet_10(), &[host, router]);
//! sim.compute_routes();
//! let handle = install_planp(&mut sim, router, &image, LayerConfig::default()).unwrap();
//! assert_eq!(handle.stats.borrow().matched, 0);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod convert;
pub mod deploy;
pub mod layer;
pub mod loader;
pub mod plan;
pub mod recovery;
pub mod replay;

pub use admission::{Admission, AdmissionGate, PRIORITY_MAX, PRIORITY_MIN};
pub use deploy::{deploy_packets, uninstall_packet, DeployLog, DeployService, DEPLOY_PORT};
pub use layer::{
    install_planp, Engine, LayerConfig, LayerStats, PlanpHandle, PlanpLayer, MANAGEMENT_PORT,
};
pub use loader::{load, LoadError, LoadedProgram};
pub use plan::{
    install_plan, load_plan, plan_topology, replay_plan, Placement, PlanError, PlanImage,
};
pub use recovery::{RecoveryLog, RecoveryService};
pub use replay::{replay_asp, replay_asp_traced, ReplayReport, LOOP_FACTOR, REPLAY_PACKETS};
