//! Per-channel admission control for the PLAN-P layer.
//!
//! Overload protection has to be *explicit and analyzable*, not an
//! emergent property of full queues: when more work arrives than a node
//! can serve, the layer decides deterministically which packets to shed
//! — before they cost a VM dispatch — instead of letting the CPU queue
//! tail-drop whatever happens to arrive last. Three gates compose, all
//! driven by simulation time and packet bytes only (no wall clock, no
//! randomness), so two runs shed byte-identical packet sets:
//!
//! 1. **Deadline** — a packet whose [`Lineage::deadline_ns`] has passed
//!    is dropped at ingress rather than burning a VM run and further
//!    hops ([`DropReason::DeadlineExpired`]).
//! 2. **Brownout priority** — under degradation, priority classes below
//!    the current brownout level are shed first
//!    ([`DropReason::Shed`]). The priority is a payload byte, so it
//!    travels with the packet and survives forwarding.
//! 3. **Bounded in-flight** — a sliding-window cap on admissions per
//!    channel sheds the excess of a flash crowd at the first hop.
//!
//! [`Lineage::deadline_ns`]: netsim::packet::Lineage
//! [`DropReason::DeadlineExpired`]: planp_telemetry::DropReason
//! [`DropReason::Shed`]: planp_telemetry::DropReason

use netsim::packet::Packet;
use std::collections::VecDeque;

/// Lowest (shed-first) priority class.
pub const PRIORITY_MIN: u8 = 0;
/// Highest (shed-last) priority class; packets without a readable
/// priority byte default here, so admission is opt-in per workload.
pub const PRIORITY_MAX: u8 = 255;

/// Admission policy for one installed layer (applies per channel).
/// All-zero (the default) disables every gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Admission {
    /// Maximum admissions per channel within `window_ns` (0 = no cap).
    pub max_in_flight: u32,
    /// Sliding window over which `max_in_flight` is counted.
    pub window_ns: u64,
    /// Payload byte index carrying the packet's priority class
    /// (`None` = every packet is top priority).
    pub priority_byte: Option<usize>,
    /// Drop packets whose lineage deadline has already passed.
    pub enforce_deadline: bool,
}

impl Admission {
    /// The priority class of `pkt` under this policy.
    pub fn priority_of(&self, pkt: &Packet) -> u8 {
        match self.priority_byte {
            Some(i) => pkt.payload.get(i).copied().unwrap_or(PRIORITY_MAX),
            None => PRIORITY_MAX,
        }
    }
}

/// Per-channel sliding-window admission counter: timestamps of recent
/// admissions, expired entries popped on each decision. Deterministic —
/// the decision depends only on sim time and prior admissions.
#[derive(Debug, Default)]
pub struct AdmissionGate {
    admitted: VecDeque<u64>,
}

impl AdmissionGate {
    /// Decides one admission at `now_ns` under a cap of `max` per
    /// `window_ns`. `max == 0` always admits (and keeps no state).
    pub fn admit(&mut self, now_ns: u64, max: u32, window_ns: u64) -> bool {
        if max == 0 {
            return true;
        }
        while self
            .admitted
            .front()
            .is_some_and(|&t| t.saturating_add(window_ns) <= now_ns)
        {
            self.admitted.pop_front();
        }
        if self.admitted.len() >= max as usize {
            return false;
        }
        self.admitted.push_back(now_ns);
        true
    }

    /// Admissions currently inside the window.
    pub fn in_flight(&self) -> usize {
        self.admitted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn gate_caps_a_sliding_window() {
        let mut g = AdmissionGate::default();
        assert!(g.admit(0, 2, 100));
        assert!(g.admit(10, 2, 100));
        assert!(!g.admit(20, 2, 100), "third inside the window is shed");
        assert_eq!(g.in_flight(), 2);
        // At t=100 the t=0 admission has aged out.
        assert!(g.admit(100, 2, 100));
        assert!(!g.admit(105, 2, 100));
    }

    #[test]
    fn zero_cap_disables_the_gate() {
        let mut g = AdmissionGate::default();
        for t in 0..1000 {
            assert!(g.admit(t, 0, 10));
        }
        assert_eq!(g.in_flight(), 0, "disabled gate keeps no state");
    }

    #[test]
    fn priority_reads_the_configured_payload_byte() {
        let adm = Admission {
            priority_byte: Some(1),
            ..Default::default()
        };
        let pkt = Packet::udp(1, 2, 10, 20, Bytes::from(vec![9u8, 3u8]));
        assert_eq!(adm.priority_of(&pkt), 3);
        let short = Packet::udp(1, 2, 10, 20, Bytes::from(vec![9u8]));
        assert_eq!(adm.priority_of(&short), PRIORITY_MAX, "missing byte = gold");
        let none = Admission::default();
        assert_eq!(none.priority_of(&pkt), PRIORITY_MAX);
    }
}
