//! Crash recovery for extensible nodes.
//!
//! A fault-injected crash ([`netsim::FaultAction::CrashNode`]) discards
//! the node's packet hook — the installed PLAN-P protocol and all of its
//! state. The [`RecoveryService`] models the management plane's answer:
//! it keeps the node's assigned ASP source (think boot flash), and when
//! the node comes back up ([`netsim::App::on_restart`]) it re-runs the
//! *entire* download path — parse, type check, verify under the node's
//! policy, JIT — before reinstalling the layer. Recovery never bypasses
//! the verifier: a restarted node is indistinguishable from one seeing
//! the program for the first time (the paper's late-checking discipline,
//! section 2.1).
//!
//! Observability: recoveries bump the `node.<name>.recovery.redeploys`
//! metric (and `.failures` when the image no longer verifies), and the
//! shared [`RecoveryLog`] records the same counts plus the fresh layer
//! handle for tests and operators.

use crate::layer::{LayerConfig, PlanpHandle, PlanpLayer};
use crate::loader::load;
use netsim::packet::Packet;
use netsim::{App, NodeApi};
use planp_analysis::Policy;
use std::cell::RefCell;
use std::rc::Rc;

/// What the service did, observable by tests and operators.
#[derive(Debug, Default, Clone)]
pub struct RecoveryLog {
    /// Programs re-verified and reinstalled after a restart (the initial
    /// install at simulation start is not counted).
    pub redeploys: u64,
    /// Recovery attempts whose program failed verification or load.
    pub failures: u64,
    /// Handle of the most recently installed layer.
    pub handle: Option<PlanpHandle>,
}

/// Installs an ASP at start-up and re-verifies + reinstalls it whenever
/// the node restarts after a crash.
pub struct RecoveryService {
    source: String,
    policy: Policy,
    config: LayerConfig,
    /// Plan-scope gate run before every (re)install — see
    /// [`RecoveryService::with_preflight`].
    preflight: Option<Rc<dyn Fn() -> Result<(), String>>>,
    /// Shared log.
    pub log: Rc<RefCell<RecoveryLog>>,
}

impl RecoveryService {
    /// A service that (re)installs `source`, verifying under `policy`
    /// and installing with `config`.
    pub fn new(source: impl Into<String>, policy: Policy, config: LayerConfig) -> Self {
        RecoveryService {
            source: source.into(),
            policy,
            config,
            preflight: None,
            log: Rc::new(RefCell::new(RecoveryLog::default())),
        }
    }

    /// Adds a gate that must pass before any install or crash-redeploy
    /// proceeds. Plan-driven deployments hang the *plan-level*
    /// verifier here, so a restarted node re-verifies at plan scope —
    /// composition included — not just its own program.
    pub fn with_preflight(mut self, preflight: Rc<dyn Fn() -> Result<(), String>>) -> Self {
        self.preflight = Some(preflight);
        self
    }

    fn install(&mut self, api: &mut NodeApi<'_>) -> Result<(), String> {
        if let Some(preflight) = &self.preflight {
            preflight()?;
        }
        let image = load(&self.source, self.policy).map_err(|e| e.to_string())?;
        let name = api.node_name().to_string();
        let addr = api.addr();
        let layer = PlanpLayer::new(&image, self.config, addr, &name, api.telemetry())
            .map_err(|e| e.to_string())?;
        let handle = layer.handle();
        api.install_hook(Box::new(layer));
        self.log.borrow_mut().handle = Some(handle);
        Ok(())
    }
}

impl App for RecoveryService {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        // Initial deployment; a program that fails here is a
        // configuration error surfaced via the log.
        if self.install(api).is_err() {
            self.log.borrow_mut().failures += 1;
        }
    }

    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}

    fn on_restart(&mut self, api: &mut NodeApi<'_>) {
        let name = api.node_name().to_string();
        match self.install(api) {
            Ok(()) => {
                self.log.borrow_mut().redeploys += 1;
                api.telemetry()
                    .metrics
                    .inc(&format!("node.{name}.recovery.redeploys"));
            }
            Err(_) => {
                self.log.borrow_mut().failures += 1;
                api.telemetry()
                    .metrics
                    .inc(&format!("node.{name}.recovery.failures"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::packet::addr;
    use netsim::{FaultPlan, LinkSpec, Sim, SimTime};

    const COUNTER: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                           (OnRemote(network, p); (ps + 1, ss))";

    struct Pacer {
        dst: u32,
    }
    impl App for Pacer {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            api.set_timer(std::time::Duration::from_millis(50), 0);
        }
        fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
            let pkt = Packet::udp(api.addr(), self.dst, 5, 6, Bytes::from(vec![7u8; 32]));
            api.send(pkt);
            api.set_timer(std::time::Duration::from_millis(50), 0);
        }
    }

    #[test]
    fn restart_reverifies_and_reinstalls() {
        let mut sim = Sim::new(11);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
        sim.compute_routes();
        let svc = RecoveryService::new(COUNTER, Policy::no_delivery(), LayerConfig::default());
        let log = svc.log.clone();
        sim.add_app(r, Box::new(svc));
        sim.add_app(
            a,
            Box::new(Pacer {
                dst: addr(10, 0, 1, 1),
            }),
        );
        sim.apply_fault_plan(FaultPlan::new().crash_restart(0.4, 0.6, r));
        sim.run_until(SimTime::from_secs(2));

        let log = log.borrow();
        assert_eq!(log.redeploys, 1, "one recovery after the restart");
        assert_eq!(log.failures, 0);
        // The reinstalled layer is fresh: its proto state restarted from
        // zero, and it processed the post-restart traffic.
        let handle = log.handle.as_ref().expect("handle");
        assert!(handle.stats.borrow().matched > 0, "traffic after recovery");
        assert_eq!(sim.node(r).crashes, 1);
        assert_eq!(sim.node(r).state_lost, 1, "crash discarded the hook");
        let snap = sim.metrics_snapshot();
        assert_eq!(snap.counters["node.r.recovery.redeploys"], 1);
        assert_eq!(snap.counters["node.r.crashes"], 1);
        assert_eq!(snap.counters["node.r.state_lost"], 1);
        // Traffic flows end-to-end again after the outage.
        assert!(sim.node(b).delivered > 10);
    }

    #[test]
    fn recovery_of_unverifiable_program_fails_safe() {
        // A program acceptable under `authenticated` but not `strict`:
        // if the node's policy tightened while it was down, recovery
        // must refuse to reinstall and count a failure.
        let bouncer = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                       (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))";
        let mut sim = Sim::new(11);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.compute_routes();
        let svc = RecoveryService::new(bouncer, Policy::strict(), LayerConfig::default());
        let log = svc.log.clone();
        sim.add_app(r, Box::new(svc));
        sim.apply_fault_plan(FaultPlan::new().crash_restart(0.2, 0.4, r));
        sim.run_until(SimTime::from_secs(1));

        // Initial install and the recovery both fail verification.
        assert_eq!(log.borrow().redeploys, 0);
        assert_eq!(log.borrow().failures, 2);
        let snap = sim.telemetry.metrics.snapshot();
        assert_eq!(snap.counters["node.r.recovery.failures"], 1);
    }

    #[test]
    fn preflight_gates_every_install() {
        // The preflight passes at simulation start but fails at the
        // crash-redeploy — the plan-scope situation where a deployment
        // stopped verifying while the node was down. The program itself
        // still verifies; only the gate changed its mind.
        let calls = Rc::new(RefCell::new(0u32));
        let gate = {
            let calls = calls.clone();
            Rc::new(move || {
                *calls.borrow_mut() += 1;
                if *calls.borrow() == 1 {
                    Ok(())
                } else {
                    Err("plan no longer verifies at plan scope".to_string())
                }
            })
        };
        let mut sim = Sim::new(11);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.compute_routes();
        let svc = RecoveryService::new(COUNTER, Policy::no_delivery(), LayerConfig::default())
            .with_preflight(gate);
        let log = svc.log.clone();
        sim.add_app(r, Box::new(svc));
        sim.apply_fault_plan(FaultPlan::new().crash_restart(0.2, 0.4, r));
        sim.run_until(SimTime::from_secs(1));

        assert_eq!(*calls.borrow(), 2, "initial install + crash-redeploy");
        assert_eq!(log.borrow().redeploys, 0, "the redeploy was refused");
        assert_eq!(log.borrow().failures, 1);
        let snap = sim.telemetry.metrics.snapshot();
        assert_eq!(snap.counters["node.r.recovery.failures"], 1);
    }
}
