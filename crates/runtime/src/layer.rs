//! The IP/PLAN-P layer: a [`PacketHook`] that dispatches arriving
//! packets to the installed program's channels and applies their
//! effects (figure 1 of the paper).
//!
//! Dispatch follows section 2.3: packets sent on user-defined channels
//! carry a tag and go straight to the tagged overload; untagged traffic
//! is offered to the `network` channel overloads in declaration order,
//! and the first whose packet type matches (transport layer + payload
//! decode) runs. If nothing matches, standard IP processing continues —
//! a PLAN-P router "operates seamlessly within existing networks".

use crate::admission::{Admission, AdmissionGate};
use crate::convert::{packet_to_value, value_to_packet};
use crate::loader::LoadedProgram;
use bytes::Bytes;
use netsim::packet::{ChannelTag, Lineage, Packet};
use netsim::{ArrivalMeta, HookVerdict, NodeApi, PacketHook, Sim};
use planp_lang::tast::TProgram;
use planp_telemetry::{CounterId, DispatchOutcome, DropReason, ScopeId, SpanOrigin, Telemetry};
use planp_vm::env::{NetEnv, SendKind};
use planp_vm::interp::Interp;
use planp_vm::jit::CompiledProgram;
use planp_vm::value::{Value, VmError};
use std::cell::RefCell;
use std::rc::Rc;

/// Which evaluator executes channel bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The JIT-compiled program (production mode).
    #[default]
    Jit,
    /// The portable interpreter (the paper's debug/evolution mode).
    Interp,
}

/// Counters exposed by an installed layer.
#[derive(Debug, Default, Clone)]
pub struct LayerStats {
    /// Packets handled by a channel.
    pub matched: u64,
    /// Packets passed through to standard IP processing.
    pub passed: u64,
    /// Channel executions that failed (uncaught exception or trap);
    /// the packet falls back to standard processing.
    pub errors: u64,
    /// Packets a channel consumed without forwarding or delivering
    /// anything — the ASP intentionally ate the packet (filters,
    /// discard policies).
    pub dropped: u64,
    /// Total VM execution steps charged by channel runs (interpreter
    /// nodes evaluated or JIT templates executed).
    pub vm_steps: u64,
    /// Channel runs whose charged steps exceeded the verifier's static
    /// per-packet bound — a soundness violation of the cost analysis,
    /// expected to stay 0 (cross-checked by the test suite).
    pub cost_bound_exceeded: u64,
    /// `tblSet` calls that created a new key, across all channel runs.
    pub state_inserts: u64,
    /// Live total table entries across the program's tables (fresh
    /// inserts minus evictions, tracked through every channel run).
    pub state_entries: u64,
    /// Soundness violations of the state analysis: channel runs whose
    /// fresh inserts exceeded the static per-dispatch bound, or that
    /// pushed the live entry total past the static entry bound.
    /// Expected to stay 0 (cross-checked by the test suite).
    pub state_bound_exceeded: u64,
    /// Packets shed by admission control (in-flight cap or brownout
    /// priority) before a channel ran.
    pub shed: u64,
    /// Packets dropped at ingress because their lineage deadline had
    /// already passed.
    pub deadline_expired: u64,
}

/// UDP port reserved for the management plane (program deployment);
/// traffic on it bypasses the installed program so that a buggy or
/// packet-dropping ASP can always be replaced (see
/// [`crate::deploy`]).
pub const MANAGEMENT_PORT: u16 = 99;

/// Installation options.
#[derive(Debug, Clone, Copy)]
pub struct LayerConfig {
    /// Evaluator choice.
    pub engine: Engine,
    /// Offer *overheard* segment traffic to channels (promiscuous mode;
    /// needed by the MPEG capture ASP of section 3.3).
    pub process_overheard: bool,
    /// Pass UDP traffic on [`MANAGEMENT_PORT`] straight to standard
    /// processing, keeping the deployment plane out of the program's
    /// reach (default: true).
    pub bypass_management: bool,
    /// Per-channel admission control (deadline enforcement, brownout
    /// priority shedding, bounded in-flight). `None` (the default)
    /// admits everything.
    pub admission: Option<Admission>,
}

impl Default for LayerConfig {
    fn default() -> Self {
        LayerConfig {
            engine: Engine::default(),
            process_overheard: false,
            bypass_management: true,
            admission: None,
        }
    }
}

/// Handle returned by [`install_planp`]: shared views of the layer's
/// counters and `print` output.
#[derive(Debug, Clone)]
pub struct PlanpHandle {
    /// Dispatch counters.
    pub stats: Rc<RefCell<LayerStats>>,
    /// Accumulated `print`/`println` output.
    pub output: Rc<RefCell<String>>,
}

/// Per-channel telemetry handles, resolved once at install time so the
/// packet path never formats or hashes a metric name — each count is an
/// array add through a [`CounterId`]. Channel overloads sharing a name
/// share the same metric keys (per-channel = per channel *name*).
struct ChanMeta {
    name: Rc<str>,
    c_dispatch: CounterId,
    c_errors: CounterId,
    c_dropped: CounterId,
    c_vm_steps: CounterId,
    c_bound_exceeded: CounterId,
    /// Static worst-case step bound of this overload's body, from the
    /// verifier's cost analysis (u64::MAX when the image carries no
    /// bound, disabling the cross-check).
    static_bound: u64,
    c_shed: CounterId,
    c_expired: CounterId,
    c_state_inserts: CounterId,
    c_state_exceeded: CounterId,
    /// Static worst-case fresh inserts per dispatch of this overload,
    /// from the verifier's state analysis (u64::MAX when the image
    /// carries no state report, disabling the cross-check).
    static_insert_bound: u64,
    /// Dispatches whose per-site charge vector was recorded into the
    /// profile registry / skipped by its sampling.
    c_profiled: CounterId,
    c_profile_skipped: CounterId,
    /// This overload's scope in the telemetry profile registry.
    profile_scope: ScopeId,
}

/// The installed PLAN-P layer for one node.
pub struct PlanpLayer {
    prog: Rc<TProgram>,
    compiled: Rc<CompiledProgram>,
    config: LayerConfig,
    globals: Vec<Value>,
    proto: Value,
    chan_states: Vec<Value>,
    stats: Rc<RefCell<LayerStats>>,
    output: Rc<RefCell<String>>,
    chan_meta: Vec<ChanMeta>,
    /// Per-channel sliding-window admission state (indexed like
    /// `chan_meta`); empty vectors cost nothing when admission is off.
    gates: Vec<AdmissionGate>,
    /// Handle for packets falling back to standard IP processing.
    c_fallback: CounterId,
    /// High-water mark of the live entry total already published to the
    /// `state_entries` metric (counters are monotonic, so the metric
    /// tracks the peak).
    state_entries_peak: u64,
    c_state_entries: CounterId,
    /// Static composed entry bound over every table (u64::MAX when some
    /// table is unbounded or the image carries no state report).
    static_entry_bound: u64,
}

impl PlanpLayer {
    /// Instantiates the layer: evaluates globals, protocol state, and
    /// every channel's initial state (the "download" moment).
    ///
    /// # Errors
    ///
    /// Propagates load-time evaluation failures.
    pub fn new(
        image: &LoadedProgram,
        config: LayerConfig,
        node_addr: u32,
        node_name: &str,
        telemetry: &mut Telemetry,
    ) -> Result<Self, VmError> {
        // Initializers are pure (enforced by the checker); a mock
        // environment satisfies the interface.
        let mut env = planp_vm::env::MockEnv::new(node_addr);
        let compiled = image.compiled.clone();
        let globals = compiled.eval_globals(&mut env)?;
        let proto = compiled.init_proto(&globals, &mut env)?;
        let mut chan_states = Vec::with_capacity(image.prog.channels.len());
        for i in 0..image.prog.channels.len() {
            chan_states.push(compiled.init_channel_state(i, &globals, &mut env)?);
        }
        // Static per-site step bounds and superinstruction candidates,
        // declared into the profile registry once per channel overload
        // (idempotent by scope key, so redeploys keep their profiles).
        let site_report = planp_analysis::site_bounds(&image.prog, &image.source);
        let candidates = planp_analysis::superinstruction_candidates(&image.prog, &image.source);
        let metrics = &mut telemetry.metrics;
        let profile = &mut telemetry.profile;
        let chan_meta = image
            .prog
            .channels
            .iter()
            .enumerate()
            .map(|(i, ch)| ChanMeta {
                name: ch.name.as_str().into(),
                c_dispatch: metrics
                    .register_counter(&format!("node.{node_name}.chan.{}.dispatch", ch.name)),
                c_errors: metrics
                    .register_counter(&format!("node.{node_name}.chan.{}.errors", ch.name)),
                c_dropped: metrics
                    .register_counter(&format!("node.{node_name}.chan.{}.dropped", ch.name)),
                c_vm_steps: metrics
                    .register_counter(&format!("node.{node_name}.chan.{}.vm_steps", ch.name)),
                c_bound_exceeded: metrics.register_counter(&format!(
                    "node.{node_name}.chan.{}.cost_bound_exceeded",
                    ch.name
                )),
                static_bound: if image.report.cost.channels.is_empty() {
                    u64::MAX
                } else {
                    image.report.cost.bound_for(i).steps
                },
                c_shed: metrics
                    .register_counter(&format!("node.{node_name}.chan.{}.shed", ch.name)),
                c_expired: metrics.register_counter(&format!(
                    "node.{node_name}.chan.{}.deadline_expired",
                    ch.name
                )),
                c_state_inserts: metrics
                    .register_counter(&format!("node.{node_name}.chan.{}.state_inserts", ch.name)),
                c_state_exceeded: metrics.register_counter(&format!(
                    "node.{node_name}.chan.{}.state_bound_exceeded",
                    ch.name
                )),
                static_insert_bound: if image.report.state_effects.channels.is_empty() {
                    u64::MAX
                } else {
                    image.report.state_effects.inserts_for(i)
                },
                c_profiled: metrics
                    .register_counter(&format!("node.{node_name}.chan.{}.profiled", ch.name)),
                c_profile_skipped: metrics.register_counter(&format!(
                    "node.{node_name}.chan.{}.profile_skipped",
                    ch.name
                )),
                profile_scope: profile.declare(
                    node_name,
                    &ch.name,
                    ch.overload,
                    site_report.channels[i]
                        .sites
                        .iter()
                        .map(|s| (s.site, s.label.clone(), s.bound_steps)),
                    candidates
                        .iter()
                        .filter(|c| c.chan == ch.name && c.overload == ch.overload)
                        .map(|c| (c.pattern.to_string(), c.sites.clone(), c.label.clone())),
                ),
            })
            .collect();
        let n_chans = image.prog.channels.len();
        Ok(PlanpLayer {
            prog: image.prog.clone(),
            compiled,
            config,
            globals,
            proto,
            chan_states,
            stats: Rc::new(RefCell::new(LayerStats::default())),
            output: Rc::new(RefCell::new(String::new())),
            chan_meta,
            gates: (0..n_chans).map(|_| AdmissionGate::default()).collect(),
            c_fallback: metrics.register_counter(&format!("node.{node_name}.planp.fallback_ip")),
            state_entries_peak: 0,
            c_state_entries: metrics
                .register_counter(&format!("node.{node_name}.planp.state_entries")),
            static_entry_bound: if image.report.state_effects.channels.is_empty() {
                u64::MAX
            } else {
                image.report.state_effects.entry_bound().unwrap_or(u64::MAX)
            },
        })
    }

    /// The shared handle (counters + print output).
    pub fn handle(&self) -> PlanpHandle {
        PlanpHandle {
            stats: self.stats.clone(),
            output: self.output.clone(),
        }
    }

    /// Finds the channel that should process `pkt`, with its decoded
    /// packet value.
    fn dispatch(&self, pkt: &Packet) -> Option<(usize, Value)> {
        match &pkt.tag {
            Some(tag) => {
                let group = self.prog.chan_groups.get(tag.chan.as_ref())?;
                let &idx = group.get(tag.overload as usize)?;
                let v = packet_to_value(pkt, &self.prog.channels[idx].shape)?;
                Some((idx, v))
            }
            None => {
                let group = self.prog.chan_groups.get("network")?;
                for &idx in group {
                    if let Some(v) = packet_to_value(pkt, &self.prog.channels[idx].shape) {
                        return Some((idx, v));
                    }
                }
                None
            }
        }
    }
}

impl PacketHook for PlanpLayer {
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet, meta: &ArrivalMeta) -> HookVerdict {
        if meta.overheard && !self.config.process_overheard {
            return HookVerdict::Pass(pkt);
        }
        if self.config.bypass_management
            && pkt.udp_hdr().is_some_and(|u| u.dport == MANAGEMENT_PORT)
        {
            api.trace_dispatch(&pkt, None, DispatchOutcome::Bypass);
            return HookVerdict::Pass(pkt);
        }
        let Some((idx, value)) = self.dispatch(&pkt) else {
            self.stats.borrow_mut().passed += 1;
            api.trace_dispatch(&pkt, None, DispatchOutcome::NoMatch);
            api.telemetry().metrics.inc_id(self.c_fallback);
            return HookVerdict::Pass(pkt);
        };
        // Admission control runs after channel match (so only ASP
        // traffic is gated) but before the engine dispatch: shed and
        // expired packets never cost a VM run, on either engine.
        if let Some(adm) = self.config.admission {
            let now_ns = api.now().as_nanos();
            let cm = &self.chan_meta[idx];
            if adm.enforce_deadline
                && pkt.lineage.deadline_ns != 0
                && now_ns > pkt.lineage.deadline_ns
            {
                self.stats.borrow_mut().deadline_expired += 1;
                api.telemetry().metrics.inc_id(cm.c_expired);
                api.node_drop(&pkt, DropReason::DeadlineExpired);
                return HookVerdict::Handled;
            }
            let priority = adm.priority_of(&pkt);
            let browned_out = u32::from(priority) < api.telemetry().overload.brownout_level;
            if browned_out || !self.gates[idx].admit(now_ns, adm.max_in_flight, adm.window_ns) {
                self.stats.borrow_mut().shed += 1;
                api.telemetry().metrics.inc_id(cm.c_shed);
                api.node_drop(&pkt, DropReason::Shed);
                return HookVerdict::Handled;
            }
        }
        self.stats.borrow_mut().matched += 1;
        let cm = &self.chan_meta[idx];
        api.telemetry().metrics.inc_id(cm.c_dispatch);

        let ps = self.proto.clone();
        let ss = self.chan_states[idx].clone();
        // The profiler's sampling decision also counts the dispatch, so
        // skipped work is accounted rather than silently dropped.
        let profiling = api.telemetry().profile.should_profile(cm.profile_scope);
        let mut env = SimNetEnv {
            api,
            prog: &self.prog,
            output: &self.output,
            emitted: 0,
            vm_steps: 0,
            profiling,
            site_steps: Vec::new(),
            cur_trace: if pkt.lineage.trace != 0 {
                pkt.lineage.trace
            } else {
                pkt.id
            },
            cur_span: pkt.id,
            cur_sampled: pkt.lineage.sampled,
            cur_deadline: pkt.lineage.deadline_ns,
            pending_site: None,
            inserts: 0,
            entries_delta: 0,
        };
        let result = match self.config.engine {
            Engine::Jit => self
                .compiled
                .run_channel(idx, &self.globals, ps, ss, value, &mut env),
            Engine::Interp => {
                Interp::new(&self.prog).run_channel(idx, &self.globals, ps, ss, value, &mut env)
            }
        };
        let emitted = env.emitted;
        let vm_steps = env.vm_steps;
        let inserts = env.inserts;
        let entries_delta = env.entries_delta;
        let site_steps = env.site_steps;
        self.stats.borrow_mut().vm_steps += vm_steps;
        api.telemetry().metrics.add_id(cm.c_vm_steps, vm_steps);
        api.trace_vm_run(&pkt, cm.name.clone(), vm_steps);
        // Per-site attribution: record the charge vector (VM errors
        // included — both engines charge the aggregate on error paths
        // too, so the Σ per-site == aggregate invariant still holds).
        if profiling {
            api.telemetry()
                .profile
                .record(cm.profile_scope, &site_steps, vm_steps);
            api.telemetry().metrics.inc_id(cm.c_profiled);
        } else {
            api.telemetry().metrics.inc_id(cm.c_profile_skipped);
        }
        if vm_steps > cm.static_bound {
            self.stats.borrow_mut().cost_bound_exceeded += 1;
            api.telemetry().metrics.inc_id(cm.c_bound_exceeded);
        }
        // State accounting mirrors the step accounting: table mutations
        // already happened (tables are shared cells), so they count on
        // error paths too. The live entry total and per-run inserts are
        // cross-checked against the static state bounds.
        let entries = {
            let mut st = self.stats.borrow_mut();
            st.state_inserts += inserts;
            st.state_entries = st.state_entries.saturating_add_signed(entries_delta);
            st.state_entries
        };
        api.telemetry().metrics.add_id(cm.c_state_inserts, inserts);
        if entries > self.state_entries_peak {
            api.telemetry()
                .metrics
                .add_id(self.c_state_entries, entries - self.state_entries_peak);
            self.state_entries_peak = entries;
        }
        if inserts > cm.static_insert_bound || entries > self.static_entry_bound {
            self.stats.borrow_mut().state_bound_exceeded += 1;
            api.telemetry().metrics.inc_id(cm.c_state_exceeded);
        }
        match result {
            Ok((ps, ss)) => {
                self.proto = ps;
                self.chan_states[idx] = ss;
                if emitted == 0 {
                    // The channel ate the packet without re-emitting or
                    // delivering anything: an intentional drop.
                    self.stats.borrow_mut().dropped += 1;
                    api.telemetry().metrics.inc_id(cm.c_dropped);
                    api.trace_dispatch(&pkt, Some(cm.name.clone()), DispatchOutcome::Consumed);
                } else {
                    api.trace_dispatch(&pkt, Some(cm.name.clone()), DispatchOutcome::Matched);
                }
                HookVerdict::Handled
            }
            Err(e) => {
                self.stats.borrow_mut().errors += 1;
                api.telemetry().metrics.inc_id(cm.c_errors);
                api.trace_dispatch(&pkt, Some(cm.name.clone()), DispatchOutcome::Error);
                let exn: Rc<str> = match &e {
                    VmError::Exn(id) => match self.prog.exns.get(id.0 as usize) {
                        Some(name) => name.as_str().into(),
                        None => format!("exn#{}", id.0).into(),
                    },
                    VmError::Trap(m) => format!("trap: {m}").into(),
                };
                api.trace_exception(&pkt, cm.name.clone(), exn);
                if emitted > 0 {
                    // The program already re-sent or delivered something;
                    // passing the original through as well would duplicate
                    // the packet. Treat it as handled.
                    HookVerdict::Handled
                } else {
                    // Fail open: a misbehaving program must not take the
                    // router down; the packet gets standard processing.
                    api.telemetry().metrics.inc_id(self.c_fallback);
                    HookVerdict::Pass(pkt)
                }
            }
        }
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, key: u64) {
        // A fired `setTimer` re-enters the program as a synthetic packet
        // on the `timer` channel: UDP self→self whose payload is the key
        // as an 8-byte big-endian integer (readable with `blobInt`).
        // Programs that declare no `timer` channel ignore the wake-up.
        if !self.prog.chan_groups.contains_key("timer") {
            return;
        }
        let me = api.addr();
        let payload = Bytes::from((key as i64).to_be_bytes().to_vec());
        let mut pkt = Packet::udp(me, me, 0, 0, payload);
        pkt.tag = Some(ChannelTag {
            chan: "timer".into(),
            overload: 0,
        });
        api.stamp(&mut pkt);
        // Run the ordinary dispatch path. A `Pass` verdict means the
        // program declined the synthetic packet; it has nowhere to go,
        // so it is discarded.
        let meta = ArrivalMeta {
            via: None,
            overheard: false,
        };
        let _ = self.on_packet(api, pkt, &meta);
    }
}

/// The [`NetEnv`] a PLAN-P program sees while running on a simulated
/// node.
struct SimNetEnv<'a, 'b> {
    api: &'a mut NodeApi<'b>,
    prog: &'a TProgram,
    output: &'a Rc<RefCell<String>>,
    /// Sends/deliveries performed by the current channel run (used to
    /// decide whether a failed run may still fall back to standard
    /// processing without duplicating the packet).
    emitted: u32,
    /// VM steps charged by the current channel run.
    vm_steps: u64,
    /// Trace id of the packet being processed (causal lineage root).
    cur_trace: u64,
    /// Span (= packet) id of the packet being processed; children of
    /// this run point back at it.
    cur_span: u64,
    /// Head-sampling decision of the packet being processed; inherited
    /// by every packet this run emits, so sampled traces stay complete.
    cur_sampled: bool,
    /// Deadline of the packet being processed (0 = none); inherited by
    /// every packet this run emits, so expiry is enforceable at any
    /// later hop.
    cur_deadline: u64,
    /// The send site the VM announced via `note_send_site`, consumed by
    /// the next outgoing packet so its lineage records how it was born.
    pending_site: Option<(SpanOrigin, Option<Rc<str>>)>,
    /// Fresh-key `tblSet` inserts performed by the current channel run.
    inserts: u64,
    /// Net table-entry change of the current channel run (fresh inserts
    /// minus evicted entries).
    entries_delta: i64,
    /// Whether this dispatch was selected by the profiler's sampler;
    /// gates `site_steps` collection so skipped runs stay allocation-free.
    profiling: bool,
    /// Per-site step charges of the current channel run, in engine
    /// charge order (only populated when `profiling`).
    site_steps: Vec<(u32, u64)>,
}

impl SimNetEnv<'_, '_> {
    fn tag_for(&self, chan: &str, overload: u32) -> Option<ChannelTag> {
        // `network` traffic stays untagged so PLAN-P routers interoperate
        // with plain IP; user-defined channels tag their packets.
        if chan == "network" {
            None
        } else {
            Some(ChannelTag {
                chan: chan.into(),
                overload,
            })
        }
    }

    /// Lineage for the next child packet: the send site the VM just
    /// announced (falling back to `origin` when running under an
    /// environment path that never announced one), parented on the
    /// packet being processed.
    fn child_lineage(&mut self, origin: SpanOrigin) -> Lineage {
        let (origin, chan) = self.pending_site.take().unwrap_or((origin, None));
        Lineage {
            trace: self.cur_trace,
            parent: self.cur_span,
            origin,
            chan,
            sampled: self.cur_sampled,
            deadline_ns: self.cur_deadline,
        }
    }

    fn outgoing(
        &mut self,
        chan: &str,
        overload: u32,
        pkt: Value,
        origin: SpanOrigin,
    ) -> Option<Packet> {
        let tag = self.tag_for(chan, overload);
        let lineage = self.child_lineage(origin);
        match value_to_packet(&pkt, tag) {
            Ok(mut p) => {
                // Run-time safety net mirroring IP's TTL, as discussed in
                // section 2.1 (the static proof makes this a backstop).
                if p.ip.ttl == 0 {
                    return None;
                }
                p.ip.ttl -= 1;
                p.lineage = lineage;
                Some(p)
            }
            Err(_) => None,
        }
    }
}

impl NetEnv for SimNetEnv<'_, '_> {
    fn this_host(&self) -> u32 {
        self.api.addr()
    }

    fn time_ms(&mut self) -> i64 {
        self.api.now().as_ms() as i64
    }

    fn link_load(&mut self, dst: u32) -> i64 {
        self.api.measured_kbps_toward(dst)
    }

    fn link_capacity(&mut self, dst: u32) -> i64 {
        self.api.capacity_kbps_toward(dst)
    }

    fn queue_len(&mut self, dst: u32) -> i64 {
        self.api.queue_len_toward(dst)
    }

    fn rand_int(&mut self, bound: i64) -> i64 {
        if bound <= 0 {
            0
        } else {
            self.api.rand_below(bound as u64) as i64
        }
    }

    fn send_remote(&mut self, chan: &str, overload: u32, pkt: Value) {
        let _ = self.prog;
        if let Some(p) = self.outgoing(chan, overload, pkt, SpanOrigin::Remote) {
            self.emitted += 1;
            if p.ip.dst == self.api.addr() {
                // Arrived: OnRemote at the destination delivers locally
                // (this is what makes progress sends terminate).
                self.api.deliver_local(p);
            } else {
                self.api.send(p);
            }
        }
    }

    fn send_neighbor(&mut self, chan: &str, overload: u32, host: u32, pkt: Value) {
        if let Some(p) = self.outgoing(chan, overload, pkt, SpanOrigin::Neighbor) {
            self.emitted += 1;
            if host == self.api.addr() {
                self.api.deliver_local(p);
            } else {
                self.api.send_to_neighbor(host, p);
            }
        }
    }

    fn deliver(&mut self, pkt: Value) {
        let lineage = self.child_lineage(SpanOrigin::Deliver);
        if let Ok(mut p) = value_to_packet(&pkt, None) {
            p.lineage = lineage;
            self.emitted += 1;
            self.api.deliver_local(p);
        }
    }

    fn note_send_site(&mut self, kind: SendKind, chan: Option<&str>) {
        let origin = match kind {
            SendKind::Remote => SpanOrigin::Remote,
            SendKind::Neighbor => SpanOrigin::Neighbor,
            SendKind::Deliver => SpanOrigin::Deliver,
        };
        self.pending_site = Some((origin, chan.map(Into::into)));
    }

    fn print(&mut self, text: &str) {
        self.output.borrow_mut().push_str(text);
    }

    fn set_timer(&mut self, delay_ms: i64, key: i64) {
        let delay = std::time::Duration::from_millis(delay_ms.max(0) as u64);
        self.api.set_hook_timer(delay, key as u64);
    }

    fn charge_steps(&mut self, n: u64) {
        self.vm_steps += n;
    }

    fn charge_site(&mut self, site: u32, n: u64) {
        if self.profiling {
            self.site_steps.push((site, n));
        }
    }

    fn note_table_write(&mut self, inserted: i64, _entries: u64) {
        if inserted > 0 {
            self.inserts += 1;
        }
        self.entries_delta += inserted;
    }
}

/// Loads an already-verified program onto a node of the simulator.
///
/// # Errors
///
/// Propagates load-time evaluation failures (e.g. an initializer
/// dividing by zero).
pub fn install_planp(
    sim: &mut Sim,
    node: netsim::NodeId,
    image: &LoadedProgram,
    config: LayerConfig,
) -> Result<PlanpHandle, VmError> {
    let addr = sim.node(node).addr;
    let name = sim.node(node).name.clone();
    let layer = PlanpLayer::new(image, config, addr, &name, &mut sim.telemetry)?;
    let handle = layer.handle();
    // Record the verifier's static per-packet step bound once per
    // channel name (overloads share keys, so take the group maximum), so
    // reports can compare it against the dynamic `vm_steps` counter.
    let mut bounds: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for (i, ch) in image.prog.channels.iter().enumerate() {
        let steps = image.report.cost.bound_for(i).steps;
        let e = bounds.entry(ch.name.as_str()).or_insert(0);
        *e = (*e).max(steps);
    }
    for (chan, steps) in bounds {
        sim.telemetry.metrics.add(
            &format!("node.{name}.chan.{chan}.static_bound_steps"),
            steps,
        );
    }
    // Likewise for the state analysis: the per-dispatch fresh-insert
    // bound per channel name, and the composed entry bound for the whole
    // program (omitted when some table is unbounded).
    let mut insert_bounds: std::collections::BTreeMap<&str, u64> =
        std::collections::BTreeMap::new();
    for (i, ch) in image.prog.channels.iter().enumerate() {
        let n = image.report.state_effects.inserts_for(i);
        let e = insert_bounds.entry(ch.name.as_str()).or_insert(0);
        *e = (*e).max(n);
    }
    for (chan, n) in insert_bounds {
        sim.telemetry
            .metrics
            .add(&format!("node.{name}.chan.{chan}.static_state_bound"), n);
    }
    if let Some(bound) = image.report.state_effects.entry_bound() {
        sim.telemetry
            .metrics
            .add(&format!("node.{name}.planp.static_state_entries"), bound);
    }
    sim.install_hook(node, Box::new(layer));
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::load;
    use bytes::Bytes;
    use netsim::packet::addr;
    use netsim::{LinkSpec, SimTime};
    use planp_analysis::Policy;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink {
        got: Rc<RefCell<Vec<Packet>>>,
    }
    impl netsim::App for Sink {
        fn on_packet(&mut self, _api: &mut NodeApi<'_>, pkt: Packet) {
            self.got.borrow_mut().push(pkt);
        }
    }

    struct Blast {
        dst: u32,
        n: usize,
    }
    impl netsim::App for Blast {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            for i in 0..self.n {
                let pkt = Packet::udp(
                    api.addr(),
                    self.dst,
                    1000,
                    2000,
                    Bytes::from(vec![i as u8; 64]),
                );
                api.send(pkt);
            }
        }
        fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    }

    /// host A — router R — host B, program installed on R.
    fn triangle(src: &str, config: LayerConfig) -> (Sim, PlanpHandle, Rc<RefCell<Vec<Packet>>>) {
        let image = load(src, Policy::no_delivery()).expect("program loads");
        let mut sim = Sim::new(3);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
        sim.compute_routes();
        let handle = install_planp(&mut sim, r, &image, config).expect("install");
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Blast {
                dst: addr(10, 0, 1, 1),
                n: 5,
            }),
        );
        (sim, handle, got)
    }

    #[test]
    fn asp_forwarder_passes_traffic() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps + 1, ss))";
        let (mut sim, handle, got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 5);
        assert_eq!(handle.stats.borrow().matched, 5);
        assert_eq!(handle.stats.borrow().errors, 0);
    }

    #[test]
    fn static_bound_recorded_and_never_exceeded() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps + 1, ss))";
        let (mut sim, handle, _got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(handle.stats.borrow().cost_bound_exceeded, 0);
        let snap = sim.telemetry.metrics.snapshot();
        let bound = snap.counters["node.r.chan.network.static_bound_steps"];
        let dispatch = snap.counters["node.r.chan.network.dispatch"];
        let steps = snap.counters["node.r.chan.network.vm_steps"];
        assert!(bound > 0, "install must record the static bound");
        assert!(
            steps <= dispatch * bound,
            "dynamic steps {steps} exceed {dispatch} dispatches x bound {bound}"
        );
        assert!(!snap
            .counters
            .contains_key("node.r.chan.network.cost_bound_exceeded"));
    }

    #[test]
    fn profiler_attributes_every_dispatch_within_static_bounds() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (if udpDst(#2 p) = 2000 then OnRemote(network, p) else ();\n\
                    (ps + 1, ss))";
        let (mut sim, handle, _got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(handle.stats.borrow().matched, 5);
        let reg = &sim.telemetry.profile;
        assert_eq!(reg.mismatches(), 0, "Σ per-site == aggregate per dispatch");
        let scope = reg.scopes().next().expect("one scope declared");
        assert_eq!(scope.key(), "node.r.chan.network#0");
        assert_eq!(scope.dispatches, 5);
        assert_eq!(scope.steps, scope.sites.values().sum::<u64>());
        assert_eq!(scope.unknown_sites(), 0, "all sites have bounds");
        for row in reg.heatmap() {
            assert!(
                row.permille <= 1000,
                "site {} observed over its static bound ({}‰)",
                row.site,
                row.permille
            );
        }
        // The if-on-header-compare shape is a superinstruction candidate.
        assert!(reg.superinstruction_report().contains("hdr_compare_branch"));
        let snap = sim.telemetry.metrics.snapshot();
        assert_eq!(snap.counters["node.r.chan.network.profiled"], 5);
        assert!(!snap
            .counters
            .contains_key("node.r.chan.network.profile_skipped"));
    }

    #[test]
    fn state_bounds_recorded_and_never_exceeded() {
        // Per-source pin with periodic clear: packet-keyed but evicting,
        // so the verifier proves a finite entry bound (the mkTable(8)
        // capacity) that the live telemetry is checked against.
        let src = "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob)\n\
                   initstate mkTable(8) is\n\
                   (tblSet(ss, ipSrc(#1 p), 1);\n\
                    (if tblSize(ss) > 4 then tblClear(ss) else ());\n\
                    OnRemote(network, p); (ps + 1, ss))";
        let (mut sim, handle, _got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        let st = handle.stats.borrow();
        // One source, five packets: the first insert is fresh, the rest
        // overwrite the same key.
        assert_eq!(st.state_inserts, 1);
        assert_eq!(st.state_entries, 1);
        assert_eq!(st.state_bound_exceeded, 0, "state analysis is sound");
        let snap = sim.telemetry.metrics.snapshot();
        assert_eq!(snap.counters["node.r.chan.network.static_state_bound"], 1);
        assert_eq!(snap.counters["node.r.chan.network.state_inserts"], 1);
        assert_eq!(snap.counters["node.r.planp.state_entries"], 1);
        assert_eq!(snap.counters["node.r.planp.static_state_entries"], 8);
        assert!(!snap
            .counters
            .contains_key("node.r.chan.network.state_bound_exceeded"));
    }

    #[test]
    fn interp_engine_behaves_identically() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps + 1, ss))";
        let cfg = LayerConfig {
            engine: Engine::Interp,
            ..LayerConfig::default()
        };
        let (mut sim, handle, got) = triangle(src, cfg);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 5);
        assert_eq!(handle.stats.borrow().matched, 5);
    }

    #[test]
    fn set_timer_dispatches_synthetic_timer_channel() {
        // Every data packet arms a timer; when it fires, the `timer`
        // channel receives a synthetic self-addressed packet whose
        // payload carries the key as an 8-byte integer.
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (setTimer(50, 40 + ps); OnRemote(network, p); (ps + 1, ss))\n\
                   channel timer(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (println(blobInt(#3 p, 0)); (ps, ss))";
        let (mut sim, handle, got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 5, "data traffic still forwarded");
        assert_eq!(&*handle.output.borrow(), "40\n41\n42\n43\n44\n");
        // Timer dispatches count as matched channel runs.
        assert_eq!(handle.stats.borrow().matched, 10);
        assert_eq!(handle.stats.borrow().errors, 0);
    }

    #[test]
    fn timer_without_timer_channel_is_ignored() {
        // setTimer in a program with no `timer` channel: the wake-up is
        // discarded without error or fallback traffic.
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (setTimer(10, 1); OnRemote(network, p); (ps, ss))";
        let (mut sim, handle, got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 5);
        assert_eq!(handle.stats.borrow().matched, 5);
        assert_eq!(handle.stats.borrow().passed, 0);
        assert_eq!(handle.stats.borrow().errors, 0);
    }

    #[test]
    fn asp_filter_drops_matching_packets() {
        // Drop everything with an odd first payload byte.
        let src = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                   if blobByte(#3 p, 0) mod 2 = 0 then\n\
                     (OnRemote(network, p); (ps, ss))\n\
                   else (ps, ss)";
        let (mut sim, _handle, got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        // Bytes 0..5 → 0, 2, 4 pass.
        assert_eq!(got.borrow().len(), 3);
    }

    #[test]
    fn state_accumulates_across_packets() {
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (println(ps); OnRemote(network, p); (ps + 1, ss))";
        let (mut sim, handle, _got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(&*handle.output.borrow(), "0\n1\n2\n3\n4\n");
    }

    #[test]
    fn non_matching_traffic_passes_through() {
        // Program only handles TCP; UDP traffic uses standard forwarding.
        let src = "channel network(ps : unit, ss : unit, p : ip*tcp*blob) is\n\
                   (OnRemote(network, p); (ps, ss))";
        let (mut sim, handle, got) = triangle(src, LayerConfig::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 5, "UDP forwarded by plain IP");
        assert_eq!(handle.stats.borrow().matched, 0);
        assert_eq!(handle.stats.borrow().passed, 5);
    }

    #[test]
    fn runtime_error_fails_open() {
        // Uncaught Div on every packet: layer must pass packets through.
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); (ps div 0, ss))";
        let image = load(src, Policy::authenticated()).unwrap();
        let mut sim = Sim::new(3);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
        sim.compute_routes();
        let handle = install_planp(&mut sim, r, &image, LayerConfig::default()).unwrap();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Blast {
                dst: addr(10, 0, 1, 1),
                n: 2,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(handle.stats.borrow().errors, 2);
        assert_eq!(got.borrow().len(), 2, "fail-open forwarding");
    }

    #[test]
    fn tagged_packet_for_unknown_channel_passes_through() {
        // A packet tagged for a channel this node's program does not
        // define uses standard IP processing (tags are opaque elsewhere).
        let src = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)";
        let image = load(src, Policy::authenticated()).unwrap();
        let mut sim = Sim::new(3);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
        sim.compute_routes();
        let handle = install_planp(&mut sim, r, &image, LayerConfig::default()).unwrap();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));

        struct Tagged {
            dst: u32,
        }
        impl netsim::App for Tagged {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                let mut pkt = Packet::udp(api.addr(), self.dst, 1, 2, Bytes::from_static(b"x"));
                pkt.tag = Some(netsim::packet::ChannelTag {
                    chan: "elsewhere".into(),
                    overload: 0,
                });
                api.send(pkt);
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
        }
        sim.add_app(
            a,
            Box::new(Tagged {
                dst: addr(10, 0, 1, 1),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().len(), 1, "tagged packet forwarded normally");
        assert_eq!(handle.stats.borrow().matched, 0);
        assert_eq!(handle.stats.borrow().passed, 1);
    }

    #[test]
    fn overloaded_channels_dispatch_by_payload() {
        // Figure 4: one overload prints ints, the other bools.
        let src = r#"
val CmdA : int = 65
channel network(ps : unit, ss : unit, p : ip*udp*char*int) is
  (print("int:"); print(#4 p); OnRemote(network, p); (ps, ss))
channel network(ps : unit, ss : unit, p : ip*udp*char*bool) is
  (print("bool:"); print(#4 p); OnRemote(network, p); (ps, ss))
"#;
        let image = load(src, Policy::no_delivery()).unwrap();
        let mut sim = Sim::new(3);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
        sim.compute_routes();
        let handle = install_planp(&mut sim, r, &image, LayerConfig::default()).unwrap();
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Sink { got: got.clone() }));

        struct Two {
            dst: u32,
        }
        impl netsim::App for Two {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                // char + 8-byte int
                let mut p1 = vec![b'A'];
                p1.extend_from_slice(&7i64.to_be_bytes());
                api.send(Packet::udp(api.addr(), self.dst, 1, 2, Bytes::from(p1)));
                // char + bool
                let p2 = vec![b'B', 1u8];
                api.send(Packet::udp(api.addr(), self.dst, 1, 2, Bytes::from(p2)));
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
        }
        sim.add_app(
            a,
            Box::new(Two {
                dst: addr(10, 0, 1, 1),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(&*handle.output.borrow(), "int:7bool:true");
        assert_eq!(got.borrow().len(), 2);
        assert_eq!(handle.stats.borrow().matched, 2);
    }

    #[test]
    fn gateway_rewrites_connections() {
        // Minimal load-balancer shape: TCP to port 80 alternates between
        // two servers by connection (keyed on client ip*port).
        let src = r#"
val srv0 : host = 10.0.1.1
val srv1 : host = 10.0.2.1

channel network(ps : int, ss : ((host*int), host) hash_table, p : ip*tcp*blob)
initstate mkTable(64) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
  in
    if tcpDst(tcph) = 80 then
      if tblHas(ss, (ipSrc(iph), tcpSrc(tcph))) then
        let val chosen : host = tblGet(ss, (ipSrc(iph), tcpSrc(tcph))) handle NotFound => srv0 in
          (OnRemote(network, (ipDestSet(iph, chosen), tcph, #3 p)); (ps, ss))
        end
      else
        -- new connection: assign by modulo on the connection count
        let val c : host = if ps mod 2 = 0 then srv0 else srv1 in
          (tblSet(ss, (ipSrc(iph), tcpSrc(tcph)), c);
           OnRemote(network, (ipDestSet(iph, c), tcph, #3 p));
           (ps + 1, ss))
        end
    else
      (OnRemote(network, p); (ps, ss))
  end
"#;
        // A destination-rewriting gateway cannot be *proved* to terminate
        // by the conservative analysis (the rewritten packet could match
        // the channel again) — exactly the class of legitimate protocols
        // the paper downloads with authentication (section 2.1).
        let image = load(src, Policy::authenticated()).unwrap();
        assert!(!image.report.termination.is_proved());

        let mut sim = Sim::new(9);
        let client = sim.add_host("client", addr(10, 0, 0, 1));
        let gw = sim.add_router("gw", addr(10, 0, 0, 254));
        let s0 = sim.add_host("s0", addr(10, 0, 1, 1));
        let s1 = sim.add_host("s1", addr(10, 0, 2, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[client, gw]);
        sim.add_link(LinkSpec::ethernet_100(), &[gw, s0]);
        sim.add_link(LinkSpec::ethernet_100(), &[gw, s1]);
        sim.compute_routes();
        // Virtual address routed toward the gateway.
        let virt = addr(10, 9, 9, 9);
        sim.add_route(client, virt, gw);
        install_planp(&mut sim, gw, &image, LayerConfig::default()).unwrap();

        let got0 = Rc::new(RefCell::new(Vec::new()));
        let got1 = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(s0, Box::new(Sink { got: got0.clone() }));
        sim.add_app(s1, Box::new(Sink { got: got1.clone() }));

        struct Conns {
            virt: u32,
        }
        impl netsim::App for Conns {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                for port in 0..4u16 {
                    let hdr = netsim::packet::TcpHdr::data(5000 + port, 80, 1);
                    let pkt = Packet::tcp(api.addr(), self.virt, hdr, Bytes::from_static(b"GET /"));
                    api.send(pkt);
                    // Second packet on the same connection must follow it.
                    let hdr2 = netsim::packet::TcpHdr::data(5000 + port, 80, 6);
                    api.send(Packet::tcp(
                        api.addr(),
                        self.virt,
                        hdr2,
                        Bytes::from_static(b"more!"),
                    ));
                }
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
        }
        sim.add_app(client, Box::new(Conns { virt }));
        sim.run_until(SimTime::from_secs(1));

        // 4 connections × 2 packets, alternating servers per connection.
        assert_eq!(got0.borrow().len(), 4);
        assert_eq!(got1.borrow().len(), 4);
        // Both packets of one connection landed on the same server.
        let ports0: Vec<u16> = got0
            .borrow()
            .iter()
            .map(|p| p.tcp_hdr().unwrap().sport)
            .collect();
        assert_eq!(ports0[0], ports0[1]);
    }
}
