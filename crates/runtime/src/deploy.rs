//! In-band ASP deployment — the "protocol management functionality"
//! the paper lists as immediate future work (section 5), and the
//! mechanism behind section 3.2's configurability claims ("an ASP can
//! be easily moved to any of the cluster machines", "ASPs can be
//! easily modified to reflect a change in the number of physical
//! servers").
//!
//! A [`DeployService`] runs on every manageable node. The operator (or
//! another program) sends the PLAN-P source over UDP port
//! [`DEPLOY_PORT`], chunked into numbered datagrams; on receipt of the
//! final chunk the node runs the full download path — parse, type
//! check, **verify under the node's policy**, JIT — and atomically
//! swaps its IP-layer program. Rejected programs leave the previous
//! program running and report the reason back to the sender.
//!
//! Chunk wire format (UDP payload):
//!
//! ```text
//! byte  0      magic 0xD7
//! byte  1      flags: bit0 = last chunk, bit1 = uninstall request
//! bytes 2..4   transfer id (big-endian u16)
//! bytes 4..6   chunk index (big-endian u16)
//! bytes 6..    UTF-8 source fragment
//! ```
//!
//! The reply (UDP, same port, to the sender) is `OK <lines>\n` or
//! `ERR <message>\n`.

use crate::layer::{LayerConfig, PlanpHandle, PlanpLayer};
use crate::loader::load;
use bytes::{BufMut, Bytes, BytesMut};
use netsim::packet::Packet;
use netsim::{App, NodeApi};
use planp_analysis::Policy;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// UDP port the deployment service listens on.
pub const DEPLOY_PORT: u16 = 99;

const MAGIC: u8 = 0xD7;
const FLAG_LAST: u8 = 0x01;
const FLAG_UNINSTALL: u8 = 0x02;

/// Maximum source bytes per chunk (fits comfortably in one datagram).
pub const CHUNK_BYTES: usize = 1000;

/// Builds the datagrams that deploy `source` to `target`.
///
/// Feed the returned packets to the network in order (they carry chunk
/// indices, so reordering within a transfer is tolerated; loss is not —
/// management traffic is expected to run over a reliable path or be
/// retried by the operator).
pub fn deploy_packets(src_addr: u32, target: u32, transfer_id: u16, source: &str) -> Vec<Packet> {
    let chunks: Vec<&[u8]> = if source.is_empty() {
        vec![&[]]
    } else {
        source.as_bytes().chunks(CHUNK_BYTES).collect()
    };
    let n = chunks.len();
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            let mut buf = BytesMut::with_capacity(6 + c.len());
            buf.put_u8(MAGIC);
            buf.put_u8(if i + 1 == n { FLAG_LAST } else { 0 });
            buf.put_u16(transfer_id);
            buf.put_u16(i as u16);
            buf.put_slice(c);
            Packet::udp(src_addr, target, DEPLOY_PORT, DEPLOY_PORT, buf.freeze())
        })
        .collect()
}

/// Builds the datagram that uninstalls the target's program.
pub fn uninstall_packet(src_addr: u32, target: u32) -> Packet {
    let mut buf = BytesMut::with_capacity(6);
    buf.put_u8(MAGIC);
    buf.put_u8(FLAG_LAST | FLAG_UNINSTALL);
    buf.put_u16(0);
    buf.put_u16(0);
    Packet::udp(src_addr, target, DEPLOY_PORT, DEPLOY_PORT, buf.freeze())
}

/// What the service did, observable by tests and operators.
#[derive(Debug, Default, Clone)]
pub struct DeployLog {
    /// Programs accepted and installed.
    pub installed: u64,
    /// Programs rejected (front-end or verifier).
    pub rejected: u64,
    /// Uninstall requests honored.
    pub uninstalled: u64,
    /// Last error message, if any.
    pub last_error: Option<String>,
    /// Handle of the most recently installed layer.
    pub handle: Option<PlanpHandle>,
}

/// The deployment application.
pub struct DeployService {
    policy: Policy,
    config: LayerConfig,
    transfers: HashMap<(u32, u16), HashMap<u16, Vec<u8>>>,
    last_chunk: HashMap<(u32, u16), u16>,
    /// Shared log.
    pub log: Rc<RefCell<DeployLog>>,
}

impl DeployService {
    /// A service that verifies downloads under `policy` and installs
    /// them with `config`.
    pub fn new(policy: Policy, config: LayerConfig) -> Self {
        DeployService {
            policy,
            config,
            transfers: HashMap::new(),
            last_chunk: HashMap::new(),
            log: Rc::new(RefCell::new(DeployLog::default())),
        }
    }

    fn reply(api: &mut NodeApi<'_>, to: u32, text: String) {
        let pkt = Packet::udp(
            api.addr(),
            to,
            DEPLOY_PORT,
            DEPLOY_PORT,
            Bytes::from(text.into_bytes()),
        );
        api.send(pkt);
    }

    fn try_install(&mut self, api: &mut NodeApi<'_>, source: &str) -> Result<usize, String> {
        let image = load(source, self.policy).map_err(|e| e.to_string())?;
        let name = api.node_name().to_string();
        let addr = api.addr();
        let layer = PlanpLayer::new(&image, self.config, addr, &name, api.telemetry())
            .map_err(|e| e.to_string())?;
        let handle = layer.handle();
        api.install_hook(Box::new(layer));
        self.log.borrow_mut().handle = Some(handle);
        Ok(image.lines)
    }
}

impl App for DeployService {
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let Some(udp) = pkt.udp_hdr() else { return };
        if udp.dport != DEPLOY_PORT || pkt.payload.len() < 6 || pkt.payload[0] != MAGIC {
            return;
        }
        let flags = pkt.payload[1];
        let transfer = u16::from_be_bytes([pkt.payload[2], pkt.payload[3]]);
        let index = u16::from_be_bytes([pkt.payload[4], pkt.payload[5]]);
        let sender = pkt.ip.src;

        if flags & FLAG_UNINSTALL != 0 {
            api.remove_hook();
            let mut log = self.log.borrow_mut();
            log.uninstalled += 1;
            log.handle = None;
            drop(log);
            Self::reply(api, sender, "OK uninstalled\n".to_string());
            return;
        }

        let key = (sender, transfer);
        self.transfers
            .entry(key)
            .or_default()
            .insert(index, pkt.payload[6..].to_vec());
        if flags & FLAG_LAST != 0 {
            self.last_chunk.insert(key, index);
        }

        // Complete when the final chunk is known and all indices are in.
        let Some(&last) = self.last_chunk.get(&key) else {
            return;
        };
        let chunks = &self.transfers[&key];
        if (0..=last).any(|i| !chunks.contains_key(&i)) {
            return;
        }
        let mut source = Vec::new();
        for i in 0..=last {
            source.extend_from_slice(&chunks[&i]);
        }
        self.transfers.remove(&key);
        self.last_chunk.remove(&key);

        let text = String::from_utf8_lossy(&source).into_owned();
        match self.try_install(api, &text) {
            Ok(lines) => {
                self.log.borrow_mut().installed += 1;
                Self::reply(api, sender, format!("OK {lines}\n"));
            }
            Err(msg) => {
                let mut log = self.log.borrow_mut();
                log.rejected += 1;
                log.last_error = Some(msg.clone());
                drop(log);
                // Prefer the first substantive line over the header.
                let first = msg
                    .lines()
                    .map(str::trim)
                    .find(|l| !l.is_empty() && !l.ends_with(':'))
                    .or_else(|| msg.lines().next())
                    .unwrap_or("rejected");
                Self::reply(api, sender, format!("ERR {first}\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::addr;
    use netsim::{LinkSpec, Sim, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Operator {
        packets: Vec<Packet>,
        replies: Rc<RefCell<Vec<String>>>,
    }
    impl App for Operator {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            for p in self.packets.drain(..) {
                api.send(p);
            }
        }
        fn on_packet(&mut self, _api: &mut NodeApi<'_>, pkt: Packet) {
            if pkt.udp_hdr().is_some_and(|u| u.dport == DEPLOY_PORT) {
                self.replies
                    .borrow_mut()
                    .push(String::from_utf8_lossy(&pkt.payload).into_owned());
            }
        }
    }

    struct Blast {
        dst: u32,
        n: usize,
        delay: std::time::Duration,
    }
    impl App for Blast {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            api.set_timer(self.delay, 0);
        }
        fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
            for i in 0..self.n {
                api.send(Packet::udp(
                    api.addr(),
                    self.dst,
                    5,
                    6,
                    Bytes::from(vec![i as u8; 8]),
                ));
            }
        }
    }

    const FORWARDER: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                             (OnRemote(network, p); (ps + 1, ss))";

    fn setup(
        policy: Policy,
    ) -> (
        Sim,
        netsim::NodeId,
        netsim::NodeId,
        netsim::NodeId,
        Rc<RefCell<DeployLog>>,
    ) {
        let mut sim = Sim::new(8);
        let op = sim.add_host("operator", addr(10, 0, 0, 1));
        let r = sim.add_router("router", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[op, r]);
        sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
        sim.compute_routes();
        let svc = DeployService::new(policy, LayerConfig::default());
        let log = svc.log.clone();
        sim.add_app(r, Box::new(svc));
        (sim, op, r, b, log)
    }

    #[test]
    fn deploys_and_activates_a_program() {
        let (mut sim, op, r, _b, log) = setup(Policy::strict());
        let replies = Rc::new(RefCell::new(Vec::new()));
        let packets = deploy_packets(addr(10, 0, 0, 1), addr(10, 0, 0, 254), 1, FORWARDER);
        assert_eq!(packets.len(), 1, "small program fits one chunk");
        sim.add_app(
            op,
            Box::new(Operator {
                packets,
                replies: replies.clone(),
            }),
        );
        // Traffic that should be counted by the deployed program.
        sim.add_app(
            op,
            Box::new(Blast {
                dst: addr(10, 0, 1, 1),
                n: 5,
                delay: std::time::Duration::from_millis(100),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(log.borrow().installed, 1);
        assert_eq!(replies.borrow().as_slice(), ["OK 2\n"]);
        let handle = log.borrow().handle.clone().expect("handle");
        assert_eq!(handle.stats.borrow().matched, 5);
        assert!(sim.node(r).name.contains("router"));
    }

    #[test]
    fn multi_chunk_transfer_reassembles() {
        // Pad the program with comments to force several chunks.
        let mut big = String::from(FORWARDER);
        big.push('\n');
        for i in 0..200 {
            big.push_str(&format!("-- padding comment line {i}\n"));
        }
        let (mut sim, op, _r, _b, log) = setup(Policy::strict());
        let replies = Rc::new(RefCell::new(Vec::new()));
        let packets = deploy_packets(addr(10, 0, 0, 1), addr(10, 0, 0, 254), 2, &big);
        assert!(
            packets.len() >= 3,
            "expected several chunks, got {}",
            packets.len()
        );
        sim.add_app(
            op,
            Box::new(Operator {
                packets,
                replies: replies.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(log.borrow().installed, 1);
        assert_eq!(replies.borrow().as_slice(), ["OK 2\n"]);
    }

    #[test]
    fn rejected_program_reports_and_leaves_node_clean() {
        let bouncer = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                       (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))";
        let (mut sim, op, r, b, log) = setup(Policy::strict());
        let replies = Rc::new(RefCell::new(Vec::new()));
        let packets = deploy_packets(addr(10, 0, 0, 1), addr(10, 0, 0, 254), 3, bouncer);
        sim.add_app(
            op,
            Box::new(Operator {
                packets,
                replies: replies.clone(),
            }),
        );
        sim.add_app(
            op,
            Box::new(Blast {
                dst: addr(10, 0, 1, 1),
                n: 3,
                delay: std::time::Duration::from_millis(100),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(log.borrow().installed, 0);
        assert_eq!(log.borrow().rejected, 1);
        assert!(replies.borrow()[0].starts_with("ERR "));
        // Standard IP forwarding still works (no hook installed).
        assert_eq!(sim.node(b).delivered, 3);
        let _ = r;
    }

    #[test]
    fn redeploy_replaces_and_uninstall_removes() {
        let (mut sim, op, _r, b, log) = setup(Policy::no_delivery());
        let replies = Rc::new(RefCell::new(Vec::new()));
        // First a dropper, then a forwarder, then uninstall.
        let dropper = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)";
        let mut packets = deploy_packets(addr(10, 0, 0, 1), addr(10, 0, 0, 254), 1, dropper);
        packets.extend(deploy_packets(
            addr(10, 0, 0, 1),
            addr(10, 0, 0, 254),
            2,
            FORWARDER,
        ));
        sim.add_app(
            op,
            Box::new(Operator {
                packets,
                replies: replies.clone(),
            }),
        );
        sim.add_app(
            op,
            Box::new(Blast {
                dst: addr(10, 0, 1, 1),
                n: 4,
                delay: std::time::Duration::from_millis(100),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        // The forwarder (deployed second) won; traffic flows.
        assert_eq!(log.borrow().installed, 2);
        assert_eq!(sim.node(b).delivered, 4);

        // Uninstall returns the node to plain IP.
        struct One {
            pkt: Option<Packet>,
        }
        impl App for One {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.send(self.pkt.take().expect("one packet"));
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
        }
        sim.add_app(
            op,
            Box::new(One {
                pkt: Some(uninstall_packet(addr(10, 0, 0, 1), addr(10, 0, 0, 254))),
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(log.borrow().uninstalled, 1);
        assert!(log.borrow().handle.is_none());
    }
}
