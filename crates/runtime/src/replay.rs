//! Counterexample replay: runs an ASP's predicted violation as
//! concrete packets through the simulator.
//!
//! The [model checker](planp_analysis::modelcheck) emits witnesses
//! describing *abstract* packet journeys — loops, drops, escaping
//! exceptions. This module closes the loop on those predictions: the
//! ASP is installed (as an authenticated download, since it is by
//! hypothesis unsafe) on both routers of a fixed two-router path,
//!
//! ```text
//! ha (10.0.0.1) — r1 (10.0.0.254) — r2 (10.0.3.254) — hb (10.0.3.1)
//! ```
//!
//! a small burst of UDP traffic is sent `ha → hb`, and the routers'
//! dispatch counters are compared against what each witness kind
//! predicts:
//!
//! * a **loop** witness is confirmed when the routers dispatch each
//!   packet many times over (the bounce only ends when TTL expires);
//! * a **drop** witness is confirmed when nothing reaches `hb` and the
//!   routers counted intentional drops;
//! * an **exception** witness is confirmed when channel executions
//!   failed with an uncaught exception.

use crate::layer::{install_planp, LayerConfig};
use crate::loader::{load, LoadError};
use bytes::Bytes;
use netsim::packet::{addr, Packet};
use netsim::{App, LinkSpec, NodeApi, Sim, SimTime};
use planp_analysis::{Policy, WitnessKind};
use planp_telemetry::{Category, TraceConfig, TraceForest};
use std::cell::RefCell;
use std::rc::Rc;

/// Number of probe packets the replay sends.
pub const REPLAY_PACKETS: u64 = 4;

/// When router dispatches reach this multiple of the packets sent, the
/// traffic demonstrably looped (a loop-free path dispatches each packet
/// at most twice: once per router).
pub const LOOP_FACTOR: u64 = 4;

/// What happened when the ASP's traffic ran through the simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayReport {
    /// Probe packets sent from `ha`.
    pub sent: u64,
    /// Channel dispatches summed over both routers.
    pub dispatches: u64,
    /// Probe packets that arrived at `hb`.
    pub delivered: u64,
    /// Intentional drops summed over both routers.
    pub dropped: u64,
    /// Failed channel executions (uncaught exception / trap) summed
    /// over both routers.
    pub errors: u64,
    /// Dispatches reached [`LOOP_FACTOR`] × sent — the packets looped.
    pub confirmed_loop: bool,
    /// Nothing was delivered and the routers recorded intentional
    /// drops.
    pub confirmed_drop: bool,
    /// At least one channel execution died with an exception.
    pub confirmed_exception: bool,
}

impl ReplayReport {
    /// True if the replay exhibited the violation `kind` predicts.
    pub fn confirms(&self, kind: &WitnessKind) -> bool {
        match kind {
            WitnessKind::Loop { .. } => self.confirmed_loop,
            WitnessKind::Drop => self.confirmed_drop,
            WitnessKind::Exception => self.confirmed_exception,
        }
    }
}

struct Probe {
    dst: u32,
}

impl App for Probe {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for i in 0..REPLAY_PACKETS {
            let pkt = Packet::udp(
                api.addr(),
                self.dst,
                1000,
                2000,
                Bytes::from(vec![i as u8; 32]),
            );
            api.send(pkt);
        }
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
}

struct Count {
    got: Rc<RefCell<u64>>,
}

impl App for Count {
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {
        *self.got.borrow_mut() += 1;
    }
}

/// Loads `source` as an authenticated download, installs it on both
/// routers of the two-router path, replays the probe burst, and reports
/// what the simulated network observed.
pub fn replay_asp(source: &str) -> Result<ReplayReport, LoadError> {
    replay_asp_traced(source).map(|(report, _)| report)
}

/// Like [`replay_asp`], but also returns the probe packets' causal
/// span trees rendered as ASCII — so a confirmed witness can be
/// *inspected*, not just counted: a loop shows up as a deep chain of
/// router-to-router spans, a drop as a root with no delivery, an
/// exception as a span with no children.
pub fn replay_asp_traced(source: &str) -> Result<(ReplayReport, String), LoadError> {
    let image = load(source, Policy::authenticated())?;

    let mut sim = Sim::new(7);
    sim.telemetry.trace.configure(TraceConfig {
        categories: Category::SPAN
            .union(Category::VM)
            .union(Category::LINK)
            .union(Category::DELIVER)
            .union(Category::DROP),
        ..TraceConfig::default()
    });
    let ha = sim.add_host("ha", addr(10, 0, 0, 1));
    let r1 = sim.add_router("r1", addr(10, 0, 0, 254));
    let r2 = sim.add_router("r2", addr(10, 0, 3, 254));
    let hb = sim.add_host("hb", addr(10, 0, 3, 1));
    sim.add_link(LinkSpec::ethernet_10(), &[ha, r1]);
    sim.add_link(LinkSpec::ethernet_10(), &[r1, r2]);
    sim.add_link(LinkSpec::ethernet_10(), &[r2, hb]);
    sim.compute_routes();

    // `load` already compiled the image, so installation cannot fail.
    let h1 = install_planp(&mut sim, r1, &image, LayerConfig::default())
        .expect("verified image installs");
    let h2 = install_planp(&mut sim, r2, &image, LayerConfig::default())
        .expect("verified image installs");

    let got = Rc::new(RefCell::new(0u64));
    sim.add_app(hb, Box::new(Count { got: got.clone() }));
    sim.add_app(
        ha,
        Box::new(Probe {
            dst: addr(10, 0, 3, 1),
        }),
    );
    sim.run_until(SimTime::from_secs(5));

    let s1 = h1.stats.borrow();
    let s2 = h2.stats.borrow();
    let dispatches = s1.matched + s2.matched;
    let dropped = s1.dropped + s2.dropped;
    let errors = s1.errors + s2.errors;
    let delivered = *got.borrow();
    let forest = TraceForest::from_log(&sim.telemetry.trace);
    let tree = forest.render(&sim.telemetry.nodes);
    Ok((
        ReplayReport {
            sent: REPLAY_PACKETS,
            dispatches,
            delivered,
            dropped,
            errors,
            confirmed_loop: dispatches >= LOOP_FACTOR * REPLAY_PACKETS,
            confirmed_drop: delivered == 0 && dropped > 0,
            confirmed_exception: errors > 0,
        },
        tree,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_forwarder_confirms_nothing() {
        let r = replay_asp(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps, ss))",
        )
        .unwrap();
        assert_eq!(r.delivered, REPLAY_PACKETS, "{r:?}");
        // One dispatch per router per packet: no loop.
        assert_eq!(r.dispatches, 2 * REPLAY_PACKETS);
        assert!(!r.confirmed_loop && !r.confirmed_drop && !r.confirmed_exception);
    }

    #[test]
    fn bounce_between_routers_confirms_loop() {
        // Each router redirects the packet at the *other* router: the
        // packet ping-pongs on the middle link until its TTL dies.
        let r = replay_asp(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             if thisHost() = 10.0.0.254\n\
             then (OnRemote(network, (ipDestSet(#1 p, 10.0.3.254), #2 p, #3 p)); (ps, ss))\n\
             else (OnRemote(network, (ipDestSet(#1 p, 10.0.0.254), #2 p, #3 p)); (ps, ss))",
        )
        .unwrap();
        assert!(r.confirmed_loop, "{r:?}");
        assert!(r.confirms(&WitnessKind::Loop { cycle_start: 0 }));
    }

    #[test]
    fn filter_confirms_drop() {
        let r = replay_asp("channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)")
            .unwrap();
        assert_eq!(r.delivered, 0, "{r:?}");
        assert!(r.confirmed_drop, "{r:?}");
        assert!(r.confirms(&WitnessKind::Drop));
    }

    #[test]
    fn traced_replay_renders_probe_span_trees() {
        let (r, tree) = replay_asp_traced(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps, ss))",
        )
        .unwrap();
        assert_eq!(r.delivered, REPLAY_PACKETS);
        // One span tree per probe packet, rooted at the `ha` ingress.
        let forests = tree.matches("trace ").count();
        assert_eq!(forests as u64, REPLAY_PACKETS, "{tree}");
        assert!(tree.contains("@ha"), "{tree}");
        // Each probe re-emission hops through both routers.
        assert!(tree.contains("@r1") && tree.contains("@r2"), "{tree}");
        assert!(tree.contains("remote"), "{tree}");
    }

    #[test]
    fn escaping_exception_confirms_exception() {
        let r = replay_asp(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is\n\
             (print(tblGet(ss, ipSrc(#1 p))); OnRemote(network, p); (ps, ss))",
        )
        .unwrap();
        assert!(r.confirmed_exception, "{r:?}");
        assert!(r.confirms(&WitnessKind::Exception));
    }
}
