//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of criterion's API the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros) with a plain
//! wall-clock measurement loop: per benchmark it warms up, picks a batch
//! size targeting ~1 ms per sample, records `sample_size` samples, and
//! prints min / median / mean per-iteration times.

use std::time::{Duration, Instant};

/// Benchmark configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this stand-in has no separate
    /// warm-up phase (the calibration pass serves that purpose).
    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; sampling here is bounded by
    /// `sample_size`, not wall-clock time.
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Compatibility hook: the real crate writes reports on drop; the
    /// stand-in prints as it goes, so this is a no-op.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.criterion.sample_size, f);
        self
    }

    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the closure under test; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    /// (batch iterations, elapsed) samples collected by `iter`.
    samples: Vec<(u64, Duration)>,
    sample_size: usize,
}

impl Bencher {
    /// Measures the routine: warm-up, batch-size calibration, then
    /// `sample_size` timed samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up (~20 ms cap) while estimating per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(20) && warmup_iters < 1_000_000 {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        // Aim for ~1 ms per sample, at least one iteration.
        let batch = ((1_000_000 / per_iter.max(1)) as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push((batch, t0.elapsed()));
        }
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|(n, d)| d.as_nanos() as f64 / *n as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:40} min {} · median {} · mean {}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:7.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:7.2} µs", ns / 1_000.0)
    } else {
        format!("{:7.2} ms", ns / 1_000_000.0)
    }
}

/// Re-export for code written against criterion's `black_box` path; the
/// std implementation is what the real crate uses on recent toolchains.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group, in either criterion form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u64;
        group.bench_function("incr", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }
}
