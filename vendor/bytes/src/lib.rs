//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the subset of the real `bytes` API the workspace
//! uses: cheaply clonable immutable [`Bytes`] views over shared storage,
//! a growable [`BytesMut`] builder, and the big-endian `put_*` methods of
//! [`BufMut`]. Semantics match the real crate for this subset (slices
//! share storage; `freeze` is O(1) hand-off of the accumulated buffer).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable view into shared byte storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty byte view.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }

    /// A view of a static slice (copied once into shared storage).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(s))
    }

    /// Copies a slice into fresh shared storage.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(s))
    }

    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Bytes { data, off: 0, len }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view sharing the same storage. Panics if the range is out
    /// of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {}",
            self.len
        );
        Bytes {
            data: self.data.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}
impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}
impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}
impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}
impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from_arc(Arc::from(b))
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Resizes the buffer, filling new space with `fill`.
    pub fn resize(&mut self, new_len: usize, fill: u8) {
        self.buf.resize(new_len, fill);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

/// The subset of the real `BufMut` trait the workspace uses. All
/// multi-byte writes are big-endian (network order), as in the real
/// crate's `put_u16`/`put_u32`/`put_u64`/`put_i64`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_offsets() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(&s.slice(1..)[..], &[3, 4]);
        assert_eq!(s.slice(..0).len(), 0);
    }

    #[test]
    fn equality_is_by_contents() {
        let a = Bytes::from(vec![9, 9]);
        let b = Bytes::from_static(&[9, 9]);
        assert_eq!(a, b);
        assert_eq!(a, vec![9u8, 9]);
    }

    #[test]
    fn builder_writes_big_endian_and_freezes() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_i64(-2);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[0xAB, 1, 2, 3, 4, 5, 6, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFE, b'x', b'y'][..]
        );
    }

    #[test]
    fn debug_escapes_bytes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
