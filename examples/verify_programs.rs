//! The verifier at work (paper section 2.1): programs that provably
//! terminate, deliver, and duplicate linearly are accepted; a packet
//! bouncer, a silent dropper, and an exponential duplicator are
//! rejected with diagnostics.
//!
//! ```text
//! cargo run --example verify_programs
//! ```

use planp::analysis::Policy;
use planp::runtime::load;

fn check(name: &str, src: &str) {
    println!("── {name} ──");
    match load(src, Policy::strict()) {
        Ok(lp) => println!("ACCEPTED\n{}\n", lp.report),
        Err(e) => println!("{e}\n"),
    }
}

fn main() {
    check(
        "plain forwarder (accepted)",
        "channel network(ps : unit, ss : unit, p : ip*udp*blob) is
           (OnRemote(network, p); (ps, ss))",
    );

    check(
        "bounce-to-source (packet cycle)",
        "channel network(ps : unit, ss : unit, p : ip*udp*blob) is
           (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))",
    );

    check(
        "silent dropper (violates guaranteed delivery)",
        "channel network(ps : int, ss : unit, p : ip*udp*blob) is
           if ps > 0 then (OnRemote(network, p); (ps, ss)) else (ps, ss)",
    );

    check(
        "unhandled table miss (may raise NotFound)",
        "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is
           (println(tblGet(ss, ipSrc(#1 p))); OnRemote(network, p); (ps, ss))",
    );

    check(
        "exponential duplicator (rejected by the fix-point)",
        "channel sink(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))
         channel fan(ps : unit, ss : unit, p : ip*udp*blob) is
           (OnNeighbor(fan, 10.0.0.2, p); OnNeighbor(fan, 10.0.0.3, p); (ps, ss))",
    );

    println!("── the same bouncer under an authenticated download ──");
    let bouncer = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is
                     (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))";
    let lp = load(bouncer, Policy::authenticated()).expect("authenticated download");
    println!(
        "ACCEPTED under authentication (termination proved: {})",
        lp.report.termination.is_proved()
    );
}
