//! Quickstart: write an ASP, verify it, JIT it, install it on a
//! simulated router, and watch it count and forward packets.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use planp::analysis::Policy;
use planp::netsim::packet::{addr, Packet};
use planp::netsim::{App, LinkSpec, NodeApi, Sim, SimTime};
use planp::runtime::{install_planp, load, LayerConfig};

/// An ASP that stamps every UDP payload's first byte with a running
/// counter before forwarding — a tiny "new functionality projected onto
/// an existing application".
const COUNTER_ASP: &str = r#"
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val body : blob = #3 p
    val out : blob =
      (blobSetByte(body, 0, ps mod 256)) handle _ => body
  in
    (OnRemote(network, (#1 p, #2 p, out)); (ps + 1, ss))
  end
"#;

struct Sender {
    dst: u32,
}
impl App for Sender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(std::time::Duration::from_millis(10), 0);
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        let pkt = Packet::udp(api.addr(), self.dst, 1, 2, Bytes::from(vec![0xFFu8; 32]));
        api.send(pkt);
        api.set_timer(std::time::Duration::from_millis(10), 0);
    }
}

struct Receiver;
impl App for Receiver {
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        if pkt.payload[0] != 0xFF {
            api.record("stamped", pkt.payload[0] as f64);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Download path: parse → type check → verify → JIT.
    let image = load(COUNTER_ASP, Policy::strict())?;
    println!("verifier report:\n{}\n", image.report);
    println!(
        "compiled {} AST nodes in {:?} ({} source lines)\n",
        image.codegen.nodes, image.codegen.elapsed, image.lines
    );

    // A 3-node network with the ASP on the router.
    let mut sim = Sim::new(42);
    let a = sim.add_host("a", addr(10, 0, 0, 1));
    let r = sim.add_router("r", addr(10, 0, 0, 254));
    let b = sim.add_host("b", addr(10, 0, 1, 1));
    sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
    sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
    sim.compute_routes();
    let handle = install_planp(&mut sim, r, &image, LayerConfig::default())?;

    sim.add_app(
        a,
        Box::new(Sender {
            dst: addr(10, 0, 1, 1),
        }),
    );
    sim.add_app(b, Box::new(Receiver));
    sim.run_until(SimTime::from_secs(1));

    let stats = handle.stats.borrow();
    let stamped = sim.series.get("stamped").map(|s| s.len()).unwrap_or(0);
    println!(
        "router processed {} packets ({} errors)",
        stats.matched, stats.errors
    );
    println!("receiver saw {stamped} stamped packets");
    assert!(stamped > 90);
    Ok(())
}
