//! The multipoint MPEG service (paper section 3.3) at reduced scale:
//! three viewers of the same live stream, one real server connection.
//!
//! ```text
//! cargo run --release --example mpeg_multipoint
//! ```

use planp::apps::mpeg::{run_mpeg, MpegConfig};

fn main() {
    for use_asps in [false, true] {
        let r = run_mpeg(&MpegConfig::new(3, use_asps));
        println!(
            "{}: server opened {} stream(s), sent {:.1} MB of video",
            if use_asps {
                "with ASPs   "
            } else {
                "without ASPs"
            },
            r.server.streams,
            r.server.video_bytes as f64 / 1e6
        );
        for (i, c) in r.clients.iter().enumerate() {
            println!(
                "  viewer {i}: {} frames ({}) setup={:?}",
                c.frames,
                if c.shared {
                    "captured from a neighbor's stream"
                } else {
                    "own connection"
                },
                c.setup
            );
        }
        println!();
    }
}
