//! The audio-broadcasting experiment (paper section 3.1) at reduced
//! scale: a router ASP degrades multicast audio when a competing load
//! appears on the client's segment, and a client ASP restores the
//! format for the unmodified audio application.
//!
//! ```text
//! cargo run --release --example audio_broadcast
//! ```

use planp::apps::audio::{run_audio, Adaptation, AudioConfig, LoadPhase};

fn main() {
    let cfg = AudioConfig {
        adaptation: Adaptation::AspJit,
        phases: vec![
            LoadPhase {
                from_s: 20.0,
                to_s: 50.0,
                kbps: 9450,
            },
            LoadPhase {
                from_s: 50.0,
                to_s: 80.0,
                kbps: 6200,
            },
        ],
        jitter_pct: 4,
        duration_s: 100,
        seed: 7,
        router_src: None,
        dual_segment: false,
        segment_faults: None,
    };
    println!("running 100 s of audio broadcast with in-router adaptation…\n");
    let r = run_audio(&cfg);

    println!("  t(s)   audio kb/s");
    for (t, v) in r.rx_kbps.iter().step_by(5) {
        println!("  {t:>4.0}   {v:>6.0}  {}", "#".repeat((v / 6.0) as usize));
    }
    println!(
        "\nphases: quiet {:.0} kb/s → large load {:.0} kb/s → small load {:.0} kb/s → quiet {:.0} kb/s",
        r.avg_kbps(5.0, 20.0),
        r.avg_kbps(25.0, 50.0),
        r.avg_kbps(55.0, 80.0),
        r.avg_kbps(85.0, 100.0),
    );
    println!(
        "frames {}   silent periods {}   wire formats [16s, 16m, 8m] = {:?}",
        r.stats.frames, r.stats.gaps, r.stats.by_format
    );
}
