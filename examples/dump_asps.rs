fn main() {
    let progs: &[(&str, &str)] = &[
        ("audio_router", planp::apps::audio::AUDIO_ROUTER_ASP),
        ("audio_client", planp::apps::audio::AUDIO_CLIENT_ASP),
        (
            "audio_router_hysteresis",
            planp::apps::audio::AUDIO_ROUTER_HYSTERESIS_ASP,
        ),
        (
            "audio_router_queue",
            planp::apps::audio::AUDIO_ROUTER_QUEUE_ASP,
        ),
        ("http_gateway", planp::apps::http::HTTP_GATEWAY_ASP),
        (
            "http_gateway_3srv",
            planp::apps::http::HTTP_GATEWAY_3SRV_ASP,
        ),
        (
            "http_gateway_random",
            planp::apps::http::HTTP_GATEWAY_RANDOM_ASP,
        ),
        (
            "http_gateway_porthash",
            planp::apps::http::HTTP_GATEWAY_PORTHASH_ASP,
        ),
        (
            "http_gateway_failover",
            planp::apps::http::HTTP_GATEWAY_FAILOVER_ASP,
        ),
        ("mpeg_monitor", planp::apps::mpeg::MPEG_MONITOR_ASP),
        ("mpeg_capture", planp::apps::mpeg::MPEG_CAPTURE_ASP),
        ("reliable_relay", planp::apps::chaos::RELIABLE_RELAY_ASP),
        ("buggy/fragile_relay", planp::apps::chaos::FRAGILE_RELAY_ASP),
        (
            "audio_router_chaos",
            planp::apps::chaos::AUDIO_ROUTER_CHAOS_ASP,
        ),
    ];
    for (name, src) in progs {
        std::fs::write(format!("asps/{name}.planp"), src.trim_start()).unwrap();
        println!("wrote asps/{name}.planp");
    }
}
