//! In-band ASP deployment (paper §5's "protocol management", realized):
//! an operator ships a program to a router over the network, the router
//! verifies it and swaps it in live, and a later redeploy replaces it —
//! all without touching the router's process.
//!
//! ```text
//! cargo run --example deploy_asp
//! ```

use bytes::Bytes;
use planp::analysis::Policy;
use planp::netsim::packet::{addr, Packet};
use planp::netsim::{App, LinkSpec, NodeApi, Sim, SimTime};
use planp::runtime::{deploy_packets, DeployService, LayerConfig};
use std::time::Duration;

struct Operator {
    target: u32,
    step: u32,
}

const COUNTER: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                       (println(ps); OnRemote(network, p); (ps + 1, ss))";
const BOUNCER: &str = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                       (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))";

impl App for Operator {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(Duration::from_millis(50), 0);
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, pkt: Packet) {
        if pkt
            .udp_hdr()
            .is_some_and(|u| u.dport == planp::runtime::DEPLOY_PORT)
        {
            println!(
                "operator: router replied {:?}",
                String::from_utf8_lossy(&pkt.payload).trim()
            );
        }
    }
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        self.step += 1;
        match self.step {
            1 => {
                println!("operator: deploying a packet counter…");
                for p in deploy_packets(api.addr(), self.target, 1, COUNTER) {
                    api.send(p);
                }
            }
            2 => {
                println!("operator: trying to deploy a packet bouncer (should be rejected)…");
                for p in deploy_packets(api.addr(), self.target, 2, BOUNCER) {
                    api.send(p);
                }
            }
            3 => {
                println!("operator: sending 5 packets through the router…");
                for i in 0..5 {
                    api.send(Packet::udp(
                        api.addr(),
                        addr(10, 0, 1, 1),
                        7,
                        8,
                        Bytes::from(vec![i; 32]),
                    ));
                }
            }
            _ => return,
        }
        api.set_timer(Duration::from_millis(100), 0);
    }
}

struct Sink;
impl App for Sink {
    fn on_packet(&mut self, api: &mut NodeApi<'_>, _pkt: Packet) {
        api.record("sunk", 1.0);
    }
}

fn main() {
    let mut sim = Sim::new(1);
    let op = sim.add_host("operator", addr(10, 0, 0, 1));
    let router = sim.add_router("router", addr(10, 0, 0, 254));
    let sink = sim.add_host("sink", addr(10, 0, 1, 1));
    sim.add_link(LinkSpec::ethernet_10(), &[op, router]);
    sim.add_link(LinkSpec::ethernet_10(), &[router, sink]);
    sim.compute_routes();

    // The router accepts downloads that pass the strict policy.
    let svc = DeployService::new(Policy::strict(), LayerConfig::default());
    let log = svc.log.clone();
    sim.add_app(router, Box::new(svc));
    sim.add_app(
        op,
        Box::new(Operator {
            target: addr(10, 0, 0, 254),
            step: 0,
        }),
    );
    sim.add_app(sink, Box::new(Sink));

    sim.run_until(SimTime::from_secs(1));

    let log = log.borrow();
    println!(
        "\nrouter log: {} installed, {} rejected (last error: {})",
        log.installed,
        log.rejected,
        log.last_error.as_deref().unwrap_or("none")
    );
    let handle = log.handle.clone().expect("counter installed");
    println!(
        "counter ASP saw {} packets; its output: {:?}",
        handle.stats.borrow().matched,
        handle.output.borrow().trim()
    );
    println!(
        "sink received {} packets",
        sim.series.get("sunk").map(|s| s.len()).unwrap_or(0)
    );
}
