//! The extensible HTTP server (paper section 3.2) at reduced scale:
//! a gateway ASP balances a virtual server over two physical servers.
//!
//! ```text
//! cargo run --release --example http_load_balancer
//! ```

use planp::analysis::Policy;
use planp::apps::http::{run_http, ClusterMode, HttpConfig, HTTP_GATEWAY_ASP};
use planp::runtime::load;

fn main() {
    // Show the verifier accepting the shipped gateway.
    let image = load(HTTP_GATEWAY_ASP, Policy::strict()).expect("gateway verifies");
    println!("gateway ASP ({} lines):\n{}\n", image.lines, image.report);

    for (name, mode) in [
        ("single server", ClusterMode::Single),
        ("ASP gateway over 2 servers", ClusterMode::AspGateway),
        (
            "built-in gateway over 2 servers",
            ClusterMode::NativeGateway,
        ),
        ("2 servers, disjoint clients", ClusterMode::Disjoint),
    ] {
        let mut cfg = HttpConfig::new(mode, 16);
        cfg.duration_s = 15;
        cfg.warmup_s = 5.0;
        let r = run_http(&cfg);
        println!(
            "{name:>32}: {:6.0} req/s   mean latency {:5.0} ms",
            r.req_per_sec, r.mean_latency_ms
        );
    }
}
