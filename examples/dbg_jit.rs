use bytes::Bytes;
use netsim::packet::{addr, IpHdr, UdpHdr};
use planp_analysis::Policy;
use planp_runtime::load;
use planp_vm::{Interp, MockEnv, Value};
use std::time::Instant;

fn bench(name: &str, src: &str, pkt: &Value, n: u32) {
    let lp = load(src, Policy::authenticated()).unwrap();
    let mut env = MockEnv::new(1);
    env.load = 9500;
    env.capacity = 10000;
    let globals = lp.compiled.eval_globals(&mut env).unwrap();
    let ss = lp
        .compiled
        .init_channel_state(0, &globals, &mut env)
        .unwrap();
    let interp = Interp::new(&lp.prog);

    let t = Instant::now();
    for _ in 0..n {
        let r = lp
            .compiled
            .run_channel(
                0,
                &globals,
                Value::Int(0),
                ss.clone(),
                pkt.clone(),
                &mut env,
            )
            .unwrap();
        std::hint::black_box(r);
        env.effects.clear();
    }
    let jit = t.elapsed().as_nanos() / n as u128;
    let t = Instant::now();
    for _ in 0..n {
        let r = interp
            .run_channel(
                0,
                &globals,
                Value::Int(0),
                ss.clone(),
                pkt.clone(),
                &mut env,
            )
            .unwrap();
        std::hint::black_box(r);
        env.effects.clear();
    }
    let it = t.elapsed().as_nanos() / n as u128;
    println!("{name:>30}: jit {jit:>6} ns   interp {it:>6} ns");
}

fn main() {
    let mut payload = vec![0u8];
    payload.extend_from_slice(&5i64.to_be_bytes());
    payload.extend_from_slice(&vec![0x11u8; 1100]);
    let audio_pkt = Value::tuple(vec![
        Value::Ip(IpHdr::new(
            addr(10, 0, 0, 1),
            addr(224, 1, 2, 3),
            IpHdr::PROTO_UDP,
        )),
        Value::Udp(UdpHdr::new(7777, 7777)),
        Value::Blob(Bytes::from(payload)),
    ]);
    bench(
        "full audio router",
        planp_apps::audio::AUDIO_ROUTER_ASP,
        &audio_pkt,
        200_000,
    );
    bench(
        "arith only",
        "channel network(ps : int, ss : unit, p : ip*udp*blob) is ((ps*3+1) mod 97, ss)",
        &audio_pkt,
        500_000,
    );
    bench(
        "blob ops only",
        "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
         (blobLen(blobCat(blobSub(#3 p, 0, 9), blobSub(#3 p, 9, blobLen(#3 p) - 9))), ss)",
        &audio_pkt,
        200_000,
    );
    bench(
        "audio prims only",
        "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
         (blobLen(audio16to8(audioStereoToMono(#3 p))), ss)",
        &audio_pkt,
        200_000,
    );
    bench(
        "fun call",
        "fun f(x : int) : int = x + 1\n\
         channel network(ps : int, ss : unit, p : ip*udp*blob) is (f(f(f(ps))), ss)",
        &audio_pkt,
        500_000,
    );
    bench(
        "onremote",
        "channel network(ps : int, ss : unit, p : ip*udp*blob) is (OnRemote(network, p); (ps, ss))",
        &audio_pkt,
        500_000,
    );
}
