//! # planp — Adapting Distributed Applications Using Extensible Networks
//!
//! A complete reproduction of the PLAN-P system (Thibault, Marant,
//! Muller; ICDCS 1999): a domain-specific language for
//! **Application-Specific Protocols** that are downloaded into routers
//! and end hosts, verified on arrival, JIT-compiled from a portable
//! interpreter, and used to adapt unmodified distributed applications.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`lang`] — lexer, parser, type system, typed AST;
//! * [`analysis`] — the safety verifier (termination, delivery,
//!   duplication);
//! * [`vm`] — the portable interpreter and the JIT specializer;
//! * [`netsim`] — the discrete-event network substrate;
//! * [`runtime`] — the IP/PLAN-P layer gluing it all together;
//! * [`apps`] — the paper's three applications (audio, HTTP, MPEG).
//!
//! ## Quickstart
//!
//! ```
//! use planp::runtime::{load, install_planp, LayerConfig};
//! use planp::analysis::Policy;
//! use planp::netsim::{Sim, LinkSpec, SimTime, packet::addr};
//!
//! // 1. Write an ASP.
//! let asp = "
//!     channel network(ps : int, ss : unit, p : ip*udp*blob) is
//!       (OnRemote(network, p); (ps + 1, ss))
//! ";
//! // 2. Download it: parse, type check, verify, JIT.
//! let image = load(asp, Policy::strict()).unwrap();
//! assert!(image.report.accepted());
//!
//! // 3. Install it on a simulated router.
//! let mut sim = Sim::new(1);
//! let router = sim.add_router("r", addr(10, 0, 0, 254));
//! let host = sim.add_host("h", addr(10, 0, 0, 1));
//! sim.add_link(LinkSpec::ethernet_10(), &[host, router]);
//! sim.compute_routes();
//! let handle = install_planp(&mut sim, router, &image, LayerConfig::default()).unwrap();
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(handle.stats.borrow().errors, 0);
//! ```

pub use netsim;
pub use planp_analysis as analysis;
pub use planp_apps as apps;
pub use planp_lang as lang;
pub use planp_runtime as runtime;
pub use planp_telemetry as telemetry;
pub use planp_vm as vm;
