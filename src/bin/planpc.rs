//! `planpc` — the PLAN-P compiler/verifier driver.
//!
//! ```text
//! planpc check <file.planp> [--policy strict|no-delivery|authenticated]
//!                           [--max-steps N] [--state] [--exhaustive]
//!                           [--lint] [--json] [--witness-json]
//! planpc fmt   <file.planp>        # pretty-print to stdout
//! planpc info  <file.planp>        # channels, state types, line counts
//! planpc bench <file.planp>        # code generation + verification time
//! planpc run   <file.planp>        # install on a simulated router, blast traffic
//! ```
//!
//! `check --lint` renders every diagnostic (lint warnings included) with
//! a source snippet; `check --json` emits the report in the byte-stable
//! machine form; `check --max-steps N` adds a per-packet step budget to
//! the policy; `check --state` additionally requires every table's
//! growth to be statically bounded (rejecting unbounded state with
//! `E009`); `check --exhaustive` runs the model-checking precision
//! tier, and `check --witness-json` prints its counterexample witnesses
//! as one byte-stable JSON array (implies `--exhaustive`). Exit status:
//! 0 on success/accepted, 1 on rejection or error — so `planpc check`
//! works as a CI gate.

use planp::analysis::{verify, Policy};
use planp::lang::{self, count_lines};
use planp::vm::jit;
use std::process::ExitCode;
use std::rc::Rc;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: planpc <check|fmt|info|bench|run> <file.planp> \
         [--policy strict|no-delivery|authenticated] [--max-steps N] \
         [--state] [--exhaustive] [--lint] [--json] [--witness-json]"
    );
    ExitCode::FAILURE
}

fn parse_policy(args: &[String]) -> Result<Policy, String> {
    let mut policy = match args.iter().position(|a| a == "--policy") {
        None => Policy::strict(),
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("strict") => Policy::strict(),
            Some("no-delivery") => Policy::no_delivery(),
            Some("authenticated") => Policy::authenticated(),
            other => return Err(format!("unknown policy {other:?}")),
        },
    };
    if let Some(i) = args.iter().position(|a| a == "--max-steps") {
        let v = args
            .get(i + 1)
            .ok_or_else(|| "--max-steps needs a value".to_string())?;
        let n: u64 = v.parse().map_err(|_| format!("bad step budget {v:?}"))?;
        policy = policy.with_step_budget(n);
    }
    if args.iter().any(|a| a == "--state") {
        policy = policy.with_bounded_state();
    }
    if args
        .iter()
        .any(|a| a == "--exhaustive" || a == "--witness-json")
    {
        policy = policy.with_exhaustive_check();
    }
    Ok(policy)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("planpc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let policy = match parse_policy(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planpc: {e}");
            return usage();
        }
    };

    match cmd.as_str() {
        "check" => {
            let lint = args.iter().any(|a| a == "--lint");
            let json = args.iter().any(|a| a == "--json");
            let prog = match lang::compile_front(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}", e.render(&src));
                    return ExitCode::FAILURE;
                }
            };
            let report = verify(&prog, policy);
            if args.iter().any(|a| a == "--witness-json") {
                let mut out = String::from("[");
                let witnesses = report
                    .exhaustive
                    .as_ref()
                    .map(|mc| mc.witnesses.as_slice())
                    .unwrap_or(&[]);
                for (i, w) in witnesses.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    w.write_json(&src, &mut out);
                }
                out.push(']');
                println!("{out}");
            } else if json {
                let mut out = String::new();
                report.write_json(&src, &mut out);
                println!("{out}");
            } else {
                println!("{report}");
                if lint {
                    for d in &report.diagnostics {
                        println!("{}", d.render(&src));
                    }
                } else {
                    for err in report.errors() {
                        println!("  {}", err.render(&src));
                    }
                }
            }
            if report.accepted() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "fmt" => match lang::parse_program(&src) {
            Ok(ast) => {
                print!("{}", lang::pretty::program(&ast));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{}", e.render(&src));
                ExitCode::FAILURE
            }
        },
        "info" => {
            let prog = match lang::compile_front(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}", e.render(&src));
                    return ExitCode::FAILURE;
                }
            };
            println!("lines:          {}", count_lines(&src));
            println!("globals:        {}", prog.globals.len());
            println!("functions:      {}", prog.funs.len());
            println!("exceptions:     {} (incl. predeclared)", prog.exns.len());
            println!("protocol state: {}", prog.proto_ty);
            println!("channels:");
            for ch in &prog.channels {
                println!(
                    "  {}#{}  packet {}  state {}",
                    ch.name, ch.overload, ch.pkt_ty, ch.ss_ty
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            use bytes::Bytes;
            use planp::netsim::packet::{addr, Packet};
            use planp::netsim::{App, LinkSpec, NodeApi, Sim, SimTime};
            use planp::runtime::{install_planp, load, LayerConfig};

            let image = match load(&src, policy) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut sim = Sim::new(1);
            let a = sim.add_host("a", addr(10, 0, 0, 1));
            let r = sim.add_router("router", addr(10, 0, 0, 254));
            let b = sim.add_host("b", addr(10, 0, 1, 1));
            sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
            sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
            sim.compute_routes();
            let handle = match install_planp(&mut sim, r, &image, LayerConfig::default()) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("planpc: install failed: {e}");
                    return ExitCode::FAILURE;
                }
            };

            /// Sends a mixed burst of UDP and TCP-shaped packets.
            struct Burst {
                dst: u32,
            }
            impl App for Burst {
                fn on_start(&mut self, api: &mut NodeApi<'_>) {
                    for i in 0..10u8 {
                        api.send(Packet::udp(
                            api.addr(),
                            self.dst,
                            1000,
                            2000 + i as u16,
                            Bytes::from(vec![i; 64]),
                        ));
                        api.send(Packet::tcp(
                            api.addr(),
                            self.dst,
                            planp::netsim::packet::TcpHdr::data(3000 + i as u16, 80, 1),
                            Bytes::from_static(b"GET /doc/1\n"),
                        ));
                    }
                }
                fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
            }
            sim.add_app(
                a,
                Box::new(Burst {
                    dst: addr(10, 0, 1, 1),
                }),
            );
            sim.run_until(SimTime::from_secs(2));

            let stats = handle.stats.borrow();
            println!("topology: a (10.0.0.1) — router — b (10.0.1.1); 20 packets sent");
            println!(
                "router:   {} matched, {} passed, {} errors",
                stats.matched, stats.passed, stats.errors
            );
            println!(
                "b:        {} delivered, {} dropped",
                sim.node(b).delivered,
                sim.node(b).dropped
            );
            let output = handle.output.borrow();
            if !output.is_empty() {
                println!("program output:\n{output}");
            }
            ExitCode::SUCCESS
        }
        "bench" => {
            let prog = match lang::compile_front(&src) {
                Ok(p) => Rc::new(p),
                Err(e) => {
                    eprintln!("{}", e.render(&src));
                    return ExitCode::FAILURE;
                }
            };
            let mut codegen: Vec<f64> = (0..51)
                .map(|_| {
                    let t = Instant::now();
                    let (c, _) = jit::compile(prog.clone());
                    let dt = t.elapsed().as_secs_f64() * 1e6;
                    std::hint::black_box(c.channels.len());
                    dt
                })
                .collect();
            codegen.sort_by(f64::total_cmp);
            let mut ver: Vec<f64> = (0..51)
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(verify(&prog, Policy::authenticated()).accepted());
                    t.elapsed().as_secs_f64() * 1e6
                })
                .collect();
            ver.sort_by(f64::total_cmp);
            println!("lines:    {}", count_lines(&src));
            println!("codegen:  {:.1} us (median of 51)", codegen[25]);
            println!("verify:   {:.1} us (median of 51)", ver[25]);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
