//! Determinism contract of the telemetry subsystem: the same seed must
//! produce a byte-identical event log and metrics snapshot — across
//! runs, with tracing on. This is what makes the trace a debugging tool
//! rather than a sampling profiler: any run can be replayed exactly.

use planp_apps::audio::{run_audio_traced, Adaptation, AudioConfig};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig};
use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_telemetry::{Category, TraceConfig};

fn audio_cfg() -> AudioConfig {
    AudioConfig::constant_load(Adaptation::AspJit, 9450, 15)
}

fn http_cfg() -> HttpConfig {
    let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
    cfg.duration_s = 12;
    cfg
}

#[test]
fn audio_same_seed_same_event_log_and_metrics() {
    let (_, t1, m1) = run_audio_traced(&audio_cfg(), TraceConfig::all());
    let (_, t2, m2) = run_audio_traced(&audio_cfg(), TraceConfig::all());
    assert!(
        t1.trace.recorded() > 1000,
        "tracing recorded {}",
        t1.trace.recorded()
    );
    assert_eq!(t1.trace.recorded(), t2.trace.recorded());
    assert_eq!(t1.trace.to_jsonl(), t2.trace.to_jsonl());
    assert_eq!(m1.to_json(), m2.to_json());
}

#[test]
fn http_same_seed_same_event_log_and_metrics() {
    let (_, t1, m1) = run_http_traced(&http_cfg(), TraceConfig::all());
    let (_, t2, m2) = run_http_traced(&http_cfg(), TraceConfig::all());
    assert!(
        t1.trace.recorded() > 1000,
        "tracing recorded {}",
        t1.trace.recorded()
    );
    assert_eq!(t1.trace.to_jsonl(), t2.trace.to_jsonl());
    assert_eq!(m1.to_json(), m2.to_json());
}

#[test]
fn mpeg_same_seed_same_event_log_and_metrics() {
    let cfg = MpegConfig::new(2, true);
    let (_, t1, m1) = run_mpeg_traced(&cfg, TraceConfig::all());
    let (_, t2, m2) = run_mpeg_traced(&cfg, TraceConfig::all());
    assert!(t1.trace.recorded() > 0);
    assert_eq!(t1.trace.to_jsonl(), t2.trace.to_jsonl());
    assert_eq!(m1.to_json(), m2.to_json());
}

#[test]
fn different_seeds_differ() {
    let mut a = audio_cfg();
    a.seed = 1;
    let mut b = audio_cfg();
    b.seed = 2;
    let (_, ta, _) = run_audio_traced(&a, TraceConfig::all());
    let (_, tb, _) = run_audio_traced(&b, TraceConfig::all());
    assert_ne!(
        ta.trace.to_jsonl(),
        tb.trace.to_jsonl(),
        "seeds must matter"
    );
}

#[test]
fn tracing_does_not_change_behavior() {
    // The hot-path guards must be observation-only: results with
    // tracing fully on equal results with tracing off.
    let (r_on, _, _) = run_audio_traced(&audio_cfg(), TraceConfig::all());
    let (r_off, _, _) = run_audio_traced(&audio_cfg(), TraceConfig::default());
    assert_eq!(r_on.stats.frames, r_off.stats.frames);
    assert_eq!(r_on.stats.gaps, r_off.stats.gaps);
    assert_eq!(r_on.segment_drops, r_off.segment_drops);
    assert_eq!(r_on.rx_kbps, r_off.rx_kbps);
}

#[test]
fn category_filter_limits_what_is_recorded() {
    let trace = TraceConfig {
        categories: Category::DISPATCH.union(Category::EXCEPTION),
        ..TraceConfig::default()
    };
    let (_, t, _) = run_audio_traced(&audio_cfg(), trace);
    assert!(t.trace.recorded() > 0);
    for ev in t.trace.events() {
        let c = ev.category();
        assert!(
            c == Category::DISPATCH || c == Category::EXCEPTION,
            "unexpected category {c:?} recorded"
        );
    }
}

#[test]
fn interp_and_jit_gateways_trace_identically() {
    // The two engines are one semantic core: with the same CPU model
    // (interp_slowdown = 1.0) they must produce byte-identical event
    // streams. Only `vm_run` events are excluded — per-run step counts
    // are the one place the engines legitimately differ.
    let non_vm = Category(Category::ALL.0 & !Category::VM.0);
    let trace = TraceConfig {
        categories: non_vm,
        ..TraceConfig::default()
    };
    let mk = |mode| {
        let mut cfg = HttpConfig::new(mode, 8);
        cfg.duration_s = 12;
        cfg.interp_slowdown = 1.0;
        cfg
    };
    let (_, ti, mi) = run_http_traced(&mk(ClusterMode::InterpGateway), trace);
    let (_, tj, mj) = run_http_traced(&mk(ClusterMode::AspGateway), trace);
    assert!(
        ti.trace.recorded() > 1000,
        "tracing recorded {}",
        ti.trace.recorded()
    );
    assert_eq!(ti.trace.to_jsonl(), tj.trace.to_jsonl());
    // Metrics agree too, once the engine-specific step counters are
    // set aside.
    let non_steps = |m: &planp_telemetry::MetricsSnapshot| {
        m.counters
            .iter()
            .filter(|(k, _)| !k.ends_with(".vm_steps"))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(non_steps(&mi), non_steps(&mj));
}

#[test]
fn vm_step_metrics_are_recorded_and_deterministic() {
    let (_, _, m1) = run_audio_traced(&audio_cfg(), TraceConfig::default());
    let steps: u64 = m1
        .counters
        .iter()
        .filter(|(k, _)| k.ends_with(".vm_steps"))
        .map(|(_, v)| *v)
        .sum();
    assert!(steps > 0, "ASP runs must charge VM steps");
    let (_, _, m2) = run_audio_traced(&audio_cfg(), TraceConfig::default());
    assert_eq!(m1.counters, m2.counters);
}
