//! Causal-tracing contract across the three paper scenarios: every
//! delivered packet belongs to exactly one span tree rooted at an
//! application ingress, the observed fan-out never exceeds (and, for
//! the audio router, exactly matches) the static duplication bound,
//! and both exporters are byte-stable across same-seed runs.

use planp_apps::audio::{run_audio_traced, Adaptation, AudioConfig, AUDIO_ROUTER_ASP};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig};
use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_runtime::load;
use planp_telemetry::{chrome_trace, prometheus, SpanOrigin, Telemetry, TraceConfig, TraceForest};

fn audio_cfg() -> AudioConfig {
    AudioConfig::constant_load(Adaptation::AspJit, 9450, 15)
}

/// All categories, with a ring large enough that nothing is evicted
/// (completeness needs every `span_start`).
fn roomy() -> TraceConfig {
    TraceConfig {
        capacity: 1 << 19,
        ..TraceConfig::all()
    }
}

fn http_cfg() -> HttpConfig {
    let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
    cfg.duration_s = 12;
    cfg
}

/// Every span sits in exactly one tree (single parent by construction;
/// no orphans), every tree's root is an application ingress, and every
/// delivery happened inside such a tree.
fn assert_forest_complete(telemetry: &Telemetry, what: &str) {
    let forest = TraceForest::from_log(&telemetry.trace);
    assert_eq!(
        telemetry.trace.evicted(),
        0,
        "{what}: ring eviction would make trees partial"
    );
    assert!(!forest.roots().is_empty(), "{what}: no span trees at all");
    assert!(
        forest.orphans().is_empty(),
        "{what}: {} orphan span(s)",
        forest.orphans().len()
    );
    for &root in forest.roots() {
        let s = forest.span(root).unwrap();
        assert_eq!(s.parent, 0, "{what}: root {root} has a parent");
        assert_eq!(
            s.origin,
            SpanOrigin::Ingress,
            "{what}: root {root} not an ingress"
        );
    }
    let mut deliveries = 0u64;
    for s in forest.spans() {
        let root = forest
            .root_of(s.id)
            .unwrap_or_else(|| panic!("{what}: span {} has no root", s.id));
        assert_eq!(
            root.id, s.trace,
            "{what}: span {} rooted at {} but carries trace id {}",
            s.id, root.id, s.trace
        );
        deliveries += s.deliveries.len() as u64;
    }
    assert!(deliveries > 0, "{what}: nothing was delivered");
    assert_eq!(
        deliveries,
        forest.end_to_end().summary().count,
        "{what}: every delivery measures one end-to-end latency"
    );
}

#[test]
fn audio_forest_is_complete() {
    let (_, t, _) = run_audio_traced(&audio_cfg(), roomy());
    assert_forest_complete(&t, "audio");
}

#[test]
fn http_forest_is_complete() {
    let (_, t, _) = run_http_traced(&http_cfg(), roomy());
    assert_forest_complete(&t, "http");
}

#[test]
fn mpeg_forest_is_complete() {
    let (_, t, _) = run_mpeg_traced(&MpegConfig::new(2, true), roomy());
    assert_forest_complete(&t, "mpeg");
}

#[test]
fn audio_fanout_matches_static_duplication_bound() {
    // The cost analysis bounds executed send sites per dispatch; the
    // observed span fan-out is exactly that duplication, so the two
    // must agree: no span has more children than the worst channel's
    // bound, and the router's steady-state forwarding attains it.
    let image = load(AUDIO_ROUTER_ASP, planp_analysis::Policy::strict()).unwrap();
    let bound = (0..image.prog.channels.len())
        .map(|i| image.report.cost.bound_for(i).sends)
        .max()
        .unwrap();
    let (_, t, _) = run_audio_traced(&audio_cfg(), roomy());
    let forest = TraceForest::from_log(&t.trace);
    let fan = forest.fanout().summary();
    assert!(fan.count > 0);
    assert_eq!(
        fan.max, bound,
        "observed max fan-out {} vs static send bound {bound}",
        fan.max
    );
}

#[test]
fn exports_are_byte_stable_across_same_seed_runs() {
    let run = || {
        let (_, t, m) = run_audio_traced(&audio_cfg(), roomy());
        let forest = TraceForest::from_log(&t.trace);
        (chrome_trace(&forest, &t.nodes), prometheus(&m))
    };
    let (chrome1, prom1) = run();
    let (chrome2, prom2) = run();
    assert!(chrome1.contains("\"traceEvents\""));
    assert!(prom1.contains("planp_"));
    assert_eq!(chrome1, chrome2, "Chrome export must be byte-stable");
    assert_eq!(prom1, prom2, "Prometheus export must be byte-stable");
}
