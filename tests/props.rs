//! Property-based tests over the language front end and the two
//! execution engines.
//!
//! The central property is **interpreter ≡ JIT**: for generated
//! well-typed programs, the portable interpreter and its specialization
//! must agree on results, printed output, and emitted effects — the
//! paper's whole implementation story rests on this equivalence.
//!
//! Generation uses the workspace's own deterministic RNG
//! (`netsim::rng::SplitMix64`) instead of an external property-testing
//! crate: each test derives its cases from fixed seeds, so failures are
//! reproducible by case index alone.

use netsim::rng::SplitMix64;
use planp::analysis::{verify, Policy};
use planp::lang::{parse_expr, parse_program, pretty};
use planp::vm::pkthdr::{addr, IpHdr, UdpHdr};
use planp::vm::{Interp, MockEnv, Value};
use std::rc::Rc;

// ---- generators --------------------------------------------------------

/// Well-typed integer expressions over the channel scope
/// (`ps : int`, `p : ip*udp*blob`), mirroring the old proptest strategy:
/// leaves are constants and scope references, interior nodes arithmetic,
/// comparisons, `let`, and `handle` forms.
fn gen_int_expr(rng: &mut SplitMix64, depth: u32) -> String {
    if depth == 0 || rng.next_below(4) == 0 {
        return match rng.next_below(6) {
            0 => rng.next_below(100).to_string(),
            1 => format!("(0 - {})", 1 + rng.next_below(49)),
            2 => "ps".to_string(),
            3 => "blobLen(#3 p)".to_string(),
            4 => "charPos(#\"A\")".to_string(),
            _ => "strLen(\"hello\")".to_string(),
        };
    }
    let d = depth - 1;
    match rng.next_below(11) {
        0 => format!("({} + {})", gen_int_expr(rng, d), gen_int_expr(rng, d)),
        1 => format!("({} - {})", gen_int_expr(rng, d), gen_int_expr(rng, d)),
        2 => format!("({} * {})", gen_int_expr(rng, d), gen_int_expr(rng, d)),
        3 => format!("({} div {})", gen_int_expr(rng, d), gen_int_expr(rng, d)),
        4 => format!("({} mod {})", gen_int_expr(rng, d), gen_int_expr(rng, d)),
        5 => {
            let (c, a, b) = (
                gen_int_expr(rng, d),
                gen_int_expr(rng, d),
                gen_int_expr(rng, d),
            );
            format!("(if {c} < {a} then {a} else {b})")
        }
        6 => {
            let (c, a) = (gen_int_expr(rng, d), gen_int_expr(rng, d));
            format!("(if {c} = {a} then {c} else {a})")
        }
        7 => format!(
            "(let val x : int = {} in (x + x) end)",
            gen_int_expr(rng, d)
        ),
        8 => format!(
            "(let val x : int = {} val y : int = {} in (x - y) end)",
            gen_int_expr(rng, d),
            gen_int_expr(rng, d)
        ),
        9 => format!("(({}) handle Div => 777)", gen_int_expr(rng, d)),
        _ => {
            let (a, b) = (gen_int_expr(rng, d), gen_int_expr(rng, d));
            format!("(if {a} < 5 andalso {b} > 2 then {a} else {b})")
        }
    }
}

fn channel_program(body_expr: &str) -> String {
    format!(
        "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
         ((println({body_expr}); ({body_expr}, ss)) handle _ => (0 - 99, ss))"
    )
}

fn udp_packet() -> Value {
    Value::tuple(vec![
        Value::Ip(IpHdr::new(
            addr(10, 0, 0, 1),
            addr(10, 0, 0, 2),
            IpHdr::PROTO_UDP,
        )),
        Value::Udp(UdpHdr::new(1, 2)),
        Value::Blob(bytes::Bytes::from_static(b"twelve bytes")),
    ])
}

/// Arbitrary (possibly non-ASCII, possibly garbage) source text.
fn gen_fuzz_string(rng: &mut SplitMix64) -> String {
    let len = rng.next_below(200) as usize;
    (0..len)
        .map(|_| match rng.next_below(10) {
            // Printable ASCII, biased toward language punctuation.
            0..=5 => (0x20 + rng.next_below(0x5f) as u8) as char,
            6 => "(){}[]<>=*#\"\\;,."
                .chars()
                .nth(rng.next_below(16) as usize)
                .unwrap(),
            7 => char::from_u32(0xA0 + rng.next_below(0x2000) as u32).unwrap_or('ü'),
            8 => '\n',
            _ => '\t',
        })
        .collect()
}

// ---- properties --------------------------------------------------------

/// The lexer and parser never panic, whatever the input.
#[test]
fn frontend_never_panics() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5EED_0000 + case);
        let src = gen_fuzz_string(&mut rng);
        let _ = planp::lang::lexer::lex(&src);
        let _ = parse_program(&src);
    }
}

/// The pretty-printer is a fixed point under reparsing.
#[test]
fn pretty_print_round_trips() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5EED_1000 + case);
        let e = gen_int_expr(&mut rng, 4);
        let ast = parse_expr(&e).expect("generated expressions parse");
        let printed = pretty::expr(&ast);
        let reparsed =
            parse_expr(&printed).unwrap_or_else(|err| panic!("reparse of {printed:?}: {err}"));
        assert_eq!(printed, pretty::expr(&reparsed), "case {case}");
    }
}

/// Interpreter and JIT agree on every generated program: same result
/// (or same exception), same printed output.
#[test]
fn interp_equals_jit() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5EED_2000 + case);
        let e = gen_int_expr(&mut rng, 4);
        let ps = rng.next_below(2000) as i64 - 1000;
        let src = channel_program(&e);
        let prog = Rc::new(
            planp::lang::compile_front(&src)
                .unwrap_or_else(|err| panic!("front end rejected {src}: {err}")),
        );
        let (compiled, _) = planp::vm::jit::compile(prog.clone());
        let interp = Interp::new(&prog);

        let mut env_i = MockEnv::new(7);
        let mut env_j = MockEnv::new(7);
        let ri = interp.run_channel(
            0,
            &[],
            Value::Int(ps),
            Value::Unit,
            udp_packet(),
            &mut env_i,
        );
        let rj = compiled.run_channel(
            0,
            &[],
            Value::Int(ps),
            Value::Unit,
            udp_packet(),
            &mut env_j,
        );
        match (ri, rj) {
            (Ok((pi, _)), Ok((pj, _))) => assert_eq!(pi.display(), pj.display(), "case {case}"),
            (Err(a), Err(b)) => assert_eq!(a, b, "case {case}"),
            (a, b) => panic!("divergence: interp={a:?} jit={b:?} for {e}"),
        }
        assert_eq!(env_i.output, env_j.output, "case {case}");
    }
}

/// Generated single-channel programs without sends never upset the
/// verifier's termination/duplication analyses (no sends = nothing to
/// prove wrong), and the verdict is deterministic.
#[test]
fn verifier_is_deterministic() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5EED_3000 + case);
        let e = gen_int_expr(&mut rng, 4);
        let src = channel_program(&e);
        let prog = planp::lang::compile_front(&src).expect("front end");
        let r1 = verify(&prog, Policy::no_delivery());
        let r2 = verify(&prog, Policy::no_delivery());
        assert!(r1.termination.is_proved(), "case {case}");
        assert!(r1.duplication.is_proved(), "case {case}");
        assert_eq!(r1.accepted(), r2.accepted(), "case {case}");
    }
}

/// Stateful programs (hash-table channel state, protocol-state
/// threading) stay equivalent across engines over a whole packet
/// sequence.
#[test]
fn interp_equals_jit_stateful() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0x5EED_4000 + case);
        let e = gen_int_expr(&mut rng, 4);
        let n_pkts = 1 + rng.next_below(11) as usize;
        let srcs: Vec<u32> = (0..n_pkts).map(|_| 1 + rng.next_below(5) as u32).collect();
        let src_prog = format!(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob)\n\
             initstate mkTable(8) is\n\
             let\n\
               val k : host = ipSrc(#1 p)\n\
               val n : int = (tblGet(ss, k) handle NotFound => 0) + (({e}) handle _ => 3)\n\
             in\n\
               (tblSet(ss, k, n); println(n); (ps + n, ss))\n\
             end"
        );
        let prog = Rc::new(planp::lang::compile_front(&src_prog).expect("front end"));
        let (compiled, _) = planp::vm::jit::compile(prog.clone());
        let interp = Interp::new(&prog);

        let mut env_i = MockEnv::new(7);
        let mut env_j = MockEnv::new(7);
        let mut ps_i = Value::Int(0);
        let mut ps_j = Value::Int(0);
        let mut ss_i = compiled
            .init_channel_state(0, &[], &mut env_i)
            .expect("state");
        let mut ss_j = interp
            .init_channel_state(0, &[], &mut env_j)
            .expect("state");
        for &src_host in &srcs {
            let pkt = |h: u32| {
                Value::tuple(vec![
                    Value::Ip(IpHdr::new(h, 99, IpHdr::PROTO_UDP)),
                    Value::Udp(UdpHdr::new(1, 2)),
                    Value::Blob(bytes::Bytes::from_static(b"abcdefgh")),
                ])
            };
            let ri = interp.run_channel(
                0,
                &[],
                ps_i.clone(),
                ss_i.clone(),
                pkt(src_host),
                &mut env_i,
            );
            let rj = compiled.run_channel(
                0,
                &[],
                ps_j.clone(),
                ss_j.clone(),
                pkt(src_host),
                &mut env_j,
            );
            match (ri, rj) {
                (Ok((pi, si)), Ok((pj, sj))) => {
                    assert_eq!(pi.display(), pj.display(), "case {case}");
                    ps_i = pi;
                    ss_i = si;
                    ps_j = pj;
                    ss_j = sj;
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "case {case}");
                    break;
                }
                (a, b) => panic!("divergence: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(env_i.output, env_j.output, "case {case}");
    }
}

/// The verifier never panics on generated programs *with sends*, and its
/// easy implications hold: a program whose only sends keep the
/// destination unchanged always proves termination; a program with a
/// self-directed destination-changing send never does.
#[test]
fn verifier_fuzz_with_sends() {
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5EED_5000 + case);
        let e = gen_int_expr(&mut rng, 4);
        let pattern = rng.next_below(4) as u8;
        let send = match pattern {
            0 => "OnRemote(network, p)",
            1 => "OnRemote(network, (ipSrcSet(#1 p, 10.0.0.9), #2 p, #3 p))",
            2 => "OnRemote(network, (ipDestSet(#1 p, 10.0.0.9), #2 p, #3 p))",
            _ => "OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p))",
        };
        let src = format!(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (if (({e}) handle _ => 0) > 0 then {send} else {send}; (ps, ss))"
        );
        let prog = planp::lang::compile_front(&src).expect("front end");
        let report = verify(&prog, Policy::strict());
        let dest_preserving = pattern <= 1;
        assert_eq!(
            report.termination.is_proved(),
            dest_preserving,
            "pattern {pattern} gave {:?}",
            report.termination
        );
        // One send per path: always linear.
        assert!(report.duplication.is_proved(), "case {case}");
        assert!(report.stats.send_sites >= 2, "case {case}");
    }
}

/// Payload codec round-trips for arbitrary scalar payloads.
#[test]
fn payload_codec_round_trips() {
    use planp::lang::types::Type;
    use planp::vm::pkthdr::{decode_payload, encode_payload};
    for case in 0..96u64 {
        let mut rng = SplitMix64::new(0x5EED_6000 + case);
        let c = (b'a' + rng.next_below(26) as u8) as char;
        let n = rng.next_u64() as i64;
        let h = rng.next_u64() as u32;
        let b = rng.next_below(2) == 1;
        let s: String = (0..rng.next_below(41))
            .map(|_| {
                const POOL: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
                POOL[rng.next_below(POOL.len() as u64) as usize] as char
            })
            .collect();
        let vals = vec![
            Value::Char(c),
            Value::Int(n),
            Value::Host(h),
            Value::Bool(b),
            Value::Str(s.as_str().into()),
        ];
        let types = vec![Type::Char, Type::Int, Type::Host, Type::Bool, Type::Str];
        let bytes = encode_payload(&vals);
        let decoded = decode_payload(&types, &bytes).expect("decodes");
        assert_eq!(decoded, vals, "case {case}");
    }
}
