//! Property-based tests over the language front end and the two
//! execution engines.
//!
//! The central property is **interpreter ≡ JIT**: for generated
//! well-typed programs, the portable interpreter and its specialization
//! must agree on results, printed output, and emitted effects — the
//! paper's whole implementation story rests on this equivalence.

use planp::analysis::{verify, Policy};
use planp::lang::{parse_expr, parse_program, pretty};
use planp::vm::pkthdr::{addr, IpHdr, UdpHdr};
use planp::vm::{Interp, MockEnv, Value};
use proptest::prelude::*;
use std::rc::Rc;

// ---- generators --------------------------------------------------------

/// Well-typed integer expressions over the channel scope
/// (`ps : int`, `p : ip*udp*blob`).
fn int_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(|n| n.to_string()),
        (1i64..50).prop_map(|n| format!("(0 - {n})")),
        Just("ps".to_string()),
        Just("blobLen(#3 p)".to_string()),
        Just("charPos(#\"A\")".to_string()),
        Just("strLen(\"hello\")".to_string()),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} div {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} mod {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| format!("(if {c} < {a} then {a} else {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(c, a)| format!("(if {c} = {a} then {c} else {a})")),
            inner
                .clone()
                .prop_map(|a| format!("(let val x : int = {a} in (x + x) end)")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!(
                "(let val x : int = {a} val y : int = {b} in (x - y) end)"
            )),
            inner
                .clone()
                .prop_map(|a| format!("(({a}) handle Div => 777)")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(if {a} < 5 andalso {b} > 2 then {a} else {b})")),
        ]
    })
}

fn channel_program(body_expr: &str) -> String {
    format!(
        "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
         ((println({body_expr}); ({body_expr}, ss)) handle _ => (0 - 99, ss))"
    )
}

fn udp_packet() -> Value {
    Value::tuple(vec![
        Value::Ip(IpHdr::new(addr(10, 0, 0, 1), addr(10, 0, 0, 2), IpHdr::PROTO_UDP)),
        Value::Udp(UdpHdr::new(1, 2)),
        Value::Blob(bytes::Bytes::from_static(b"twelve bytes")),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The lexer and parser never panic, whatever the input.
    #[test]
    fn frontend_never_panics(src in "\\PC{0,200}") {
        let _ = planp::lang::lexer::lex(&src);
        let _ = parse_program(&src);
    }

    /// The pretty-printer is a fixed point under reparsing.
    #[test]
    fn pretty_print_round_trips(e in int_expr()) {
        let ast = parse_expr(&e).expect("generated expressions parse");
        let printed = pretty::expr(&ast);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?}: {err}"));
        prop_assert_eq!(printed.clone(), pretty::expr(&reparsed));
    }

    /// Interpreter and JIT agree on every generated program: same
    /// result (or same exception), same printed output.
    #[test]
    fn interp_equals_jit(e in int_expr(), ps in -1000i64..1000) {
        let src = channel_program(&e);
        let prog = Rc::new(
            planp::lang::compile_front(&src)
                .unwrap_or_else(|err| panic!("front end rejected {src}: {err}")),
        );
        let (compiled, _) = planp::vm::jit::compile(prog.clone());
        let interp = Interp::new(&prog);

        let mut env_i = MockEnv::new(7);
        let mut env_j = MockEnv::new(7);
        let ri = interp.run_channel(0, &[], Value::Int(ps), Value::Unit, udp_packet(), &mut env_i);
        let rj = compiled.run_channel(0, &[], Value::Int(ps), Value::Unit, udp_packet(), &mut env_j);
        match (ri, rj) {
            (Ok((pi, _)), Ok((pj, _))) => prop_assert_eq!(pi.display(), pj.display()),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "divergence: interp={a:?} jit={b:?} for {e}"),
        }
        prop_assert_eq!(env_i.output, env_j.output);
    }

    /// Generated single-channel programs without sends never upset the
    /// verifier's termination/duplication analyses (no sends = nothing
    /// to prove wrong), and the verdict is deterministic.
    #[test]
    fn verifier_is_deterministic(e in int_expr()) {
        let src = channel_program(&e);
        let prog = planp::lang::compile_front(&src).expect("front end");
        let r1 = verify(&prog, Policy::no_delivery());
        let r2 = verify(&prog, Policy::no_delivery());
        prop_assert!(r1.termination.is_proved());
        prop_assert!(r1.duplication.is_proved());
        prop_assert_eq!(r1.accepted(), r2.accepted());
    }

    /// Stateful programs (hash-table channel state, protocol-state
    /// threading) stay equivalent across engines over a whole packet
    /// sequence.
    #[test]
    fn interp_equals_jit_stateful(
        e in int_expr(),
        srcs in proptest::collection::vec(1u32..6, 1..12),
    ) {
        let src_prog = format!(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob)\n\
             initstate mkTable(8) is\n\
             let\n\
               val k : host = ipSrc(#1 p)\n\
               val n : int = (tblGet(ss, k) handle NotFound => 0) + (({e}) handle _ => 3)\n\
             in\n\
               (tblSet(ss, k, n); println(n); (ps + n, ss))\n\
             end"
        );
        let prog = Rc::new(planp::lang::compile_front(&src_prog).expect("front end"));
        let (compiled, _) = planp::vm::jit::compile(prog.clone());
        let interp = Interp::new(&prog);

        let mut env_i = MockEnv::new(7);
        let mut env_j = MockEnv::new(7);
        let mut ps_i = Value::Int(0);
        let mut ps_j = Value::Int(0);
        let mut ss_i = compiled.init_channel_state(0, &[], &mut env_i).expect("state");
        let mut ss_j = interp.init_channel_state(0, &[], &mut env_j).expect("state");
        for &src_host in &srcs {
            let pkt = |h: u32| {
                Value::tuple(vec![
                    Value::Ip(IpHdr::new(h, 99, IpHdr::PROTO_UDP)),
                    Value::Udp(UdpHdr::new(1, 2)),
                    Value::Blob(bytes::Bytes::from_static(b"abcdefgh")),
                ])
            };
            let ri = interp.run_channel(0, &[], ps_i.clone(), ss_i.clone(), pkt(src_host), &mut env_i);
            let rj = compiled.run_channel(0, &[], ps_j.clone(), ss_j.clone(), pkt(src_host), &mut env_j);
            match (ri, rj) {
                (Ok((pi, si)), Ok((pj, sj))) => {
                    prop_assert_eq!(pi.display(), pj.display());
                    ps_i = pi; ss_i = si; ps_j = pj; ss_j = sj;
                }
                (Err(a), Err(b)) => { prop_assert_eq!(a, b); break; }
                (a, b) => prop_assert!(false, "divergence: {a:?} vs {b:?}"),
            }
        }
        prop_assert_eq!(env_i.output, env_j.output);
    }

    /// The verifier never panics on generated programs *with sends*, and
    /// its easy implications hold: a program whose only sends keep the
    /// destination unchanged always proves termination; a program with a
    /// self-directed destination-changing send never does.
    #[test]
    fn verifier_fuzz_with_sends(
        e in int_expr(),
        pattern in 0u8..4,
    ) {
        let send = match pattern {
            0 => "OnRemote(network, p)",
            1 => "OnRemote(network, (ipSrcSet(#1 p, 10.0.0.9), #2 p, #3 p))",
            2 => "OnRemote(network, (ipDestSet(#1 p, 10.0.0.9), #2 p, #3 p))",
            _ => "OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p))",
        };
        let src = format!(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (if (({e}) handle _ => 0) > 0 then {send} else {send}; (ps, ss))"
        );
        let prog = planp::lang::compile_front(&src).expect("front end");
        let report = verify(&prog, Policy::strict());
        let dest_preserving = pattern <= 1;
        prop_assert_eq!(
            report.termination.is_proved(),
            dest_preserving,
            "pattern {} gave {:?}",
            pattern,
            report.termination
        );
        // One send per path: always linear.
        prop_assert!(report.duplication.is_proved());
        prop_assert!(report.stats.send_sites >= 2);
    }

    /// Payload codec round-trips for arbitrary scalar payloads.
    #[test]
    fn payload_codec_round_trips(
        c in proptest::char::range('a', 'z'),
        n in any::<i64>(),
        h in any::<u32>(),
        b in any::<bool>(),
        s in "[a-zA-Z0-9 ]{0,40}",
    ) {
        use planp::lang::types::Type;
        use planp::vm::pkthdr::{decode_payload, encode_payload};
        let vals = vec![
            Value::Char(c),
            Value::Int(n),
            Value::Host(h),
            Value::Bool(b),
            Value::Str(s.as_str().into()),
        ];
        let types = vec![Type::Char, Type::Int, Type::Host, Type::Bool, Type::Str];
        let bytes = encode_payload(&vals);
        let decoded = decode_payload(&types, &bytes).expect("decodes");
        prop_assert_eq!(decoded, vals);
    }
}
