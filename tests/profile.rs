//! Soundness of the per-site execution profiler (PR: always-on VM
//! profiler).
//!
//! The profiler claims that every charged VM step is attributed to
//! exactly one source site, identically on both engines, and that no
//! site ever observes more steps than its static per-site bound allows.
//! Three independent checks:
//!
//! * **Attribution identity** — on every dispatch of a seeded
//!   200-packet run, the per-site charges recorded through
//!   `NetEnv::charge_site` sum to exactly the aggregate
//!   `charge_steps` total, on both the interpreter and the JIT.
//! * **Engine agreement** — the interpreter's and the JIT's per-site
//!   charge trails are identical per dispatch (order included), so the
//!   merged site profiles of the two engines are byte-identical.
//! * **Scenario utilization** — across the three traced paper
//!   scenarios, every observed site stays at or under `static bound ×
//!   dispatches` (utilization ≤ 1000‰), no dispatch miscounts
//!   (`mismatches = 0`), and the profile exports are byte-stable
//!   across a double run.

use std::collections::BTreeMap;

use planp::analysis::site_bounds;
use planp::lang::compile_front;
use planp::telemetry::ProfileRegistry;
use planp::vm::env::MockEnv;
use planp::vm::interp::Interp;
use planp::vm::jit;
use planp::vm::pkthdr::{addr, IpHdr, TcpHdr, UdpHdr};
use planp::vm::value::Value;
use planp_apps::audio::{run_audio_traced, Adaptation, AudioConfig};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig};
use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_telemetry::TraceConfig;

/// SplitMix64 — a tiny deterministic generator for the property tests.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One engine's threaded execution state during the property test.
struct Run {
    env: MockEnv,
    ps: Value,
    ss: Value,
}

/// A channel run on either engine: (env, ps, ss, pkt) → (ps', ss').
type ChanExec<'a> = dyn Fn(&mut MockEnv, Value, Value, Value) -> Result<(Value, Value), planp::vm::value::VmError>
    + 'a;

/// Runs one packet, returning (steps charged, per-site charge trail).
fn step(run: &mut Run, exec: &ChanExec<'_>, pkt: Value) -> (u64, Vec<(u32, u64)>) {
    let steps_before = run.env.steps;
    let sites_before = run.env.site_steps.len();
    let (ps, ss) = exec(&mut run.env, run.ps.clone(), run.ss.clone(), pkt).expect("channel run");
    run.ps = ps;
    run.ss = ss;
    let trail = run.env.site_steps[sites_before..].to_vec();
    (run.env.steps - steps_before, trail)
}

/// Property: for `packets` random packets on channel `idx` of `src`,
/// every dispatch's per-site charges sum to its aggregate on both
/// engines, the two engines' charge trails are identical, and the
/// merged profile never exceeds `static per-site bound × dispatches`.
fn check_attribution(src: &str, idx: usize, mut make_pkt: impl FnMut(&mut SplitMix64) -> Value) {
    let prog = std::rc::Rc::new(compile_front(src).expect("front end"));
    let report = site_bounds(&prog, src);
    let bounds: BTreeMap<u32, u64> = report.channels[idx]
        .sites
        .iter()
        .map(|s| (s.site, s.bound_steps))
        .collect();
    let (compiled, _) = jit::compile(prog.clone());
    let interp = Interp::new(&prog);

    let mut irun = {
        let mut env = MockEnv::new(addr(10, 0, 0, 254));
        let g = interp.eval_globals(&mut env).unwrap();
        let ps = interp.init_proto(&g, &mut env).unwrap();
        let ss = interp.init_channel_state(idx, &g, &mut env).unwrap();
        env.steps = 0;
        env.site_steps.clear();
        (g, Run { env, ps, ss })
    };
    let mut jrun = {
        let mut env = MockEnv::new(addr(10, 0, 0, 254));
        let g = compiled.eval_globals(&mut env).unwrap();
        let ps = compiled.init_proto(&g, &mut env).unwrap();
        let ss = compiled.init_channel_state(idx, &g, &mut env).unwrap();
        env.steps = 0;
        env.site_steps.clear();
        (g, Run { env, ps, ss })
    };

    let mut profile: BTreeMap<u32, u64> = BTreeMap::new();
    let mut rng = SplitMix64(0x0C05_7B07);
    let packets = 200u64;
    for i in 0..packets {
        let pkt = make_pkt(&mut rng);
        let (ig, run) = &mut irun;
        let (isteps, itrail) = step(
            run,
            &|env, ps, ss, p| interp.run_channel(idx, ig, ps, ss, p, env),
            pkt.clone(),
        );
        let (jg, run) = &mut jrun;
        let (jsteps, jtrail) = step(
            run,
            &|env, ps, ss, p| compiled.run_channel(idx, jg, ps, ss, p, env),
            pkt,
        );
        let attributed: u64 = itrail.iter().map(|(_, n)| n).sum();
        assert_eq!(
            attributed, isteps,
            "packet {i}: interpreter per-site charges do not sum to its aggregate"
        );
        assert_eq!(
            itrail, jtrail,
            "packet {i}: engines attribute steps to different sites"
        );
        assert_eq!(jsteps, isteps, "packet {i}: engines disagree on steps");
        for (site, n) in itrail {
            *profile.entry(site).or_insert(0) += n;
        }
    }

    // The merged observation against the static per-site bounds: every
    // observed site is known, and utilization never exceeds 1.0.
    assert_eq!(irun.1.env.site_profile(), jrun.1.env.site_profile());
    for (site, observed) in &profile {
        let bound = *bounds
            .get(site)
            .unwrap_or_else(|| panic!("site {site} observed but not statically known"));
        assert!(
            *observed <= bound * packets,
            "site {site}: observed {observed} > bound {bound} x {packets} dispatches"
        );
    }
}

fn random_blob(rng: &mut SplitMix64) -> Value {
    let r = rng.next();
    let len = (r % 48) as usize;
    Value::Blob(bytes::Bytes::from(vec![(r >> 32) as u8; len]))
}

#[test]
fn forwarder_attribution_is_exact_and_engine_identical() {
    let src = std::fs::read_to_string("asps/forwarder.planp").expect("asp source");
    check_attribution(&src, 0, |rng| {
        let r = rng.next();
        let blob = random_blob(rng);
        Value::tuple(vec![
            Value::Ip(IpHdr::new(
                addr(10, 0, 0, (r % 200) as u8 + 1),
                addr(10, 0, 1, ((r >> 8) % 200) as u8 + 1),
                IpHdr::PROTO_UDP,
            )),
            Value::Udp(UdpHdr::new((r >> 16) as u16, (r >> 32) as u16)),
            blob,
        ])
    });
}

#[test]
fn http_gateway_attribution_is_exact_and_engine_identical() {
    let src = std::fs::read_to_string("asps/http_gateway.planp").expect("asp source");
    let prog = compile_front(&src).expect("front end");
    let network = prog.chan_groups["network"][0];
    let (srv0, srv1, virt) = (addr(10, 0, 2, 1), addr(10, 0, 3, 1), addr(10, 9, 9, 9));
    check_attribution(&src, network, move |rng| {
        let r = rng.next();
        // Mix request, result, and pass-through traffic to cover every
        // branch of the gateway.
        let (sip, dip, sport, dport) = match r % 4 {
            0 => (
                addr(10, 0, 0, (r >> 8) as u8 % 8 + 1),
                virt,
                1024 + (r >> 16) as u16 % 64,
                80,
            ),
            1 => (srv0, addr(10, 0, 0, 5), 80, 5000),
            2 => (srv1, addr(10, 0, 0, 6), 80, 6000),
            _ => (
                addr(10, 0, 0, 7),
                addr(10, 0, 1, 7),
                (r >> 16) as u16,
                (r >> 24) as u16,
            ),
        };
        let blob = random_blob(rng);
        Value::tuple(vec![
            Value::Ip(IpHdr::new(sip, dip, IpHdr::PROTO_TCP)),
            Value::Tcp(TcpHdr::data(sport, dport, (r >> 40) as u32)),
            blob,
        ])
    });
}

/// Asserts a whole run's profile registry honored the profiler's
/// soundness invariants.
fn assert_profile_sound(reg: &ProfileRegistry, scenario: &str) {
    assert_eq!(
        reg.mismatches(),
        0,
        "{scenario}: some dispatch's per-site charges did not sum to its aggregate"
    );
    let mut dispatched = 0u64;
    for sc in reg.scopes() {
        assert_eq!(
            sc.unknown_sites(),
            0,
            "{scenario}: scope {} observed sites without a static bound",
            sc.key()
        );
        assert_eq!(
            sc.steps,
            sc.sites.values().sum::<u64>(),
            "{scenario}: scope {} totals drifted from its site profile",
            sc.key()
        );
        dispatched += sc.dispatches;
    }
    assert!(dispatched > 0, "{scenario}: nothing was profiled");
    for row in reg.heatmap() {
        assert!(
            row.permille <= 1000,
            "{scenario}: site {} of {} at {}‰ of its static bound",
            row.site,
            row.scope,
            row.permille
        );
    }
}

#[test]
fn audio_scenario_profile_is_sound() {
    let cfg = AudioConfig::constant_load(Adaptation::AspJit, 9450, 5);
    let (_, t, _) = run_audio_traced(&cfg, TraceConfig::default());
    assert_profile_sound(&t.profile, "audio");
}

#[test]
fn http_scenario_profile_is_sound() {
    let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
    cfg.duration_s = 5;
    let (_, t, _) = run_http_traced(&cfg, TraceConfig::default());
    assert_profile_sound(&t.profile, "http");
}

#[test]
fn mpeg_scenario_profile_is_sound_and_byte_stable() {
    let cfg = MpegConfig::new(2, true);
    let (_, t1, _) = run_mpeg_traced(&cfg, TraceConfig::default());
    assert_profile_sound(&t1.profile, "mpeg");
    // Same seed ⇒ identical profile exports, byte for byte.
    let (_, t2, _) = run_mpeg_traced(&cfg, TraceConfig::default());
    assert_eq!(t1.profile.to_json(), t2.profile.to_json());
    assert_eq!(t1.profile.collapsed_flame(), t2.profile.collapsed_flame());
    assert_eq!(
        t1.profile.superinstruction_report(),
        t2.profile.superinstruction_report()
    );
}
