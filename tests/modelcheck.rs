//! Integration tests for the explicit-state model checker: the
//! two-tier verifier, witness determinism, and simulator replay of
//! counterexamples.

use planp::analysis::modelcheck::{model_check, Verdict, DEFAULT_STATE_BUDGET};
use planp::analysis::summary::summarize;
use planp::analysis::termination::check_termination;
use planp::analysis::{verify, Policy};
use planp::runtime::replay_asp;

fn asp_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/asps"))
}

fn read_asp(name: &str) -> String {
    let path = asp_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The checked-in precision regression: the SCC screen rejects the
/// destination-re-pinning relay, the exhaustive tier proves it. Both
/// verdicts are pinned so neither tier silently changes.
#[test]
fn relay_pin_screen_rejects_exhaustive_proves() {
    let src = read_asp("relay_pin.planp");
    let prog = planp::lang::compile_front(&src).expect("relay_pin compiles");
    let sum = summarize(&prog);

    let screen = check_termination(&prog, &sum);
    assert!(!screen.is_proved(), "the SCC screen must keep rejecting");

    let mc = model_check(&prog, &sum, DEFAULT_STATE_BUDGET);
    assert_eq!(mc.termination, Verdict::Proved);
    assert_eq!(mc.delivery, Verdict::Proved);
    assert!(mc.witnesses.is_empty());

    // End to end through the two-tier verifier.
    assert!(!verify(&prog, Policy::no_delivery()).accepted());
    assert!(verify(&prog, Policy::no_delivery().with_exhaustive_check()).accepted());
}

/// Witness JSON is byte-identical across two independent runs
/// (front end + summary + exploration + reconstruction repeated from
/// scratch).
#[test]
fn witness_json_is_deterministic_across_runs() {
    for name in [
        "buggy/bounce_pingpong.planp",
        "buggy/neighbor_pingpong.planp",
        "buggy/silent_drop.planp",
    ] {
        let src = read_asp(name);
        let render = || {
            let prog = planp::lang::compile_front(&src).expect("buggy ASP compiles");
            let sum = summarize(&prog);
            let mc = model_check(&prog, &sum, DEFAULT_STATE_BUDGET);
            assert!(!mc.witnesses.is_empty(), "{name} must have witnesses");
            let mut out = String::new();
            mc.write_json(&src, &mut out);
            out
        };
        assert_eq!(render(), render(), "{name} witness JSON must be stable");
    }
}

/// Every counterexample the checker predicts for the buggy ASPs is
/// exhibited by concrete traffic in the simulator.
#[test]
fn buggy_asp_witnesses_replay_in_simulator() {
    // Loop confirmation is exact; drops are asserted only positively —
    // a looping packet that dies at TTL also registers a router drop.
    for (name, want_loop, want_drop) in [
        ("buggy/bounce_pingpong.planp", true, None),
        ("buggy/neighbor_pingpong.planp", true, None),
        ("buggy/silent_drop.planp", false, Some(true)),
    ] {
        let src = read_asp(name);
        let prog = planp::lang::compile_front(&src).expect("buggy ASP compiles");
        let sum = summarize(&prog);
        let mc = model_check(&prog, &sum, DEFAULT_STATE_BUDGET);
        let rep = replay_asp(&src).expect("buggy ASP replays");
        for w in &mc.witnesses {
            assert!(
                rep.confirms(&w.kind),
                "{name}: witness {} did not replay: {rep:?}",
                w.code
            );
        }
        assert_eq!(rep.confirmed_loop, want_loop, "{name}: {rep:?}");
        if let Some(want) = want_drop {
            assert_eq!(rep.confirmed_drop, want, "{name}: {rep:?}");
        }
    }
}

/// The reliable relay's Violated verdict is a conservative
/// over-approximation: the predicted NACK/retransmit loop needs the
/// network to keep losing the retransmission, so it does *not* replay
/// on a clean topology — and the baseline must carry the
/// `witness=abstract` marker that tells the CI gate exactly that. If
/// the checker ever learns to prove this cycle, or the replay starts
/// confirming it, this pin flags the change.
#[test]
fn reliable_relay_witness_is_abstract() {
    let src = read_asp("reliable_relay.planp");
    let prog = planp::lang::compile_front(&src).expect("reliable_relay compiles");
    let sum = summarize(&prog);
    let mc = model_check(&prog, &sum, DEFAULT_STATE_BUDGET);
    assert_eq!(mc.termination, Verdict::Violated);
    assert!(!mc.witnesses.is_empty());

    let rep = replay_asp(&src).expect("reliable_relay replays cleanly");
    assert!(
        !rep.confirmed_loop,
        "the NACK cycle must not loop on a lossless network: {rep:?}"
    );

    let baseline = read_asp("MODELCHECK_BASELINE.txt");
    let line = baseline
        .lines()
        .find(|l| l.starts_with("asps/reliable_relay.planp"))
        .expect("reliable_relay is pinned in the baseline");
    assert!(
        line.ends_with("witness=abstract"),
        "baseline must waive replay confirmation: {line}"
    );
}

/// Refinement, cross-validated: on every bundled ASP, a screen accept
/// implies an exhaustive accept — the model checker never overturns an
/// acceptance, only rejections.
#[test]
fn exhaustive_agrees_with_every_screen_accept() {
    let mut checked = 0;
    for entry in std::fs::read_dir(asp_dir()).expect("asps/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("planp") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let prog =
            planp::lang::compile_front(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let sum = summarize(&prog);
        let screen = check_termination(&prog, &sum);
        let mc = model_check(&prog, &sum, DEFAULT_STATE_BUDGET);
        assert!(
            !mc.exhausted,
            "{}: bundled ASPs fit the budget",
            path.display()
        );
        if screen.is_proved() {
            assert_eq!(
                mc.termination,
                Verdict::Proved,
                "{}: screen accepted but the checker did not",
                path.display()
            );
        }
        checked += 1;
    }
    assert!(checked >= 13, "expected the bundled corpus, saw {checked}");
}

/// The baseline file in the repository matches what the checker
/// produces today (same check CI runs, without spawning the binary).
#[test]
fn modelcheck_baseline_is_current() {
    let baseline = read_asp("MODELCHECK_BASELINE.txt");
    for line in baseline.lines() {
        let mut parts = line.split_whitespace();
        let path = parts.next().expect("baseline line has a path");
        let want_term = parts
            .next()
            .and_then(|s| s.strip_prefix("termination="))
            .expect("termination field");
        let want_del = parts
            .next()
            .and_then(|s| s.strip_prefix("delivery="))
            .expect("delivery field");
        let src = std::fs::read_to_string(
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(path),
        )
        .unwrap_or_else(|e| panic!("read {path}: {e}"));
        let prog = planp::lang::compile_front(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        let sum = summarize(&prog);
        let mc = model_check(&prog, &sum, DEFAULT_STATE_BUDGET);
        assert_eq!(mc.termination.as_str(), want_term, "{path}");
        assert_eq!(mc.delivery.as_str(), want_del, "{path}");
    }
    assert_eq!(baseline.lines().count(), 25, "one line per checked ASP");
}
