//! Integration tests: the full download-verify-compile-install-run
//! pipeline, across crates.

use bytes::Bytes;
use planp::analysis::Policy;
use planp::netsim::packet::{addr, Packet};
use planp::netsim::{App, LinkSpec, NodeApi, Sim, SimTime};
use planp::runtime::{install_planp, load, Engine, LayerConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// Every ASP shipped with the three applications loads, verifies under
/// its documented policy, and compiles.
#[test]
fn all_shipped_asps_load_and_verify() {
    let programs: Vec<(&str, &str, Policy)> = vec![
        (
            "audio router",
            planp::apps::audio::AUDIO_ROUTER_ASP,
            Policy::strict(),
        ),
        (
            "audio client",
            planp::apps::audio::AUDIO_CLIENT_ASP,
            Policy::strict(),
        ),
        (
            "http gateway",
            planp::apps::http::HTTP_GATEWAY_ASP,
            Policy::strict(),
        ),
        (
            "mpeg monitor",
            planp::apps::mpeg::MPEG_MONITOR_ASP,
            Policy::no_delivery(),
        ),
        (
            "mpeg capture",
            planp::apps::mpeg::MPEG_CAPTURE_ASP,
            Policy::no_delivery(),
        ),
    ];
    for (name, src, policy) in programs {
        let lp = load(src, policy).unwrap_or_else(|e| panic!("{name} failed to load: {e}"));
        assert!(lp.report.accepted(), "{name} not accepted");
        assert!(lp.codegen.nodes > 20, "{name} produced too little code");
        assert!(lp.report.termination.is_proved(), "{name}: termination");
        assert!(lp.report.duplication.is_proved(), "{name}: duplication");
    }
}

struct Collector {
    got: Rc<RefCell<Vec<Packet>>>,
}
impl App for Collector {
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, pkt: Packet) {
        self.got.borrow_mut().push(pkt);
    }
}

struct Burst {
    dst: u32,
    n: usize,
}
impl App for Burst {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for i in 0..self.n {
            api.send(Packet::udp(
                api.addr(),
                self.dst,
                1,
                2,
                Bytes::from(vec![i as u8; 16]),
            ));
        }
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
}

/// The same program run by the JIT and the interpreter layer-side must
/// produce identical network-visible behavior.
#[test]
fn jit_and_interp_layers_agree_end_to_end() {
    let src = r#"
val seven : int = 7
fun weight(b : blob) : int = blobLen(b) + seven

channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob)
initstate mkTable(16) is
  let
    val k : host = ipSrc(#1 p)
    val n : int = (tblGet(ss, k) handle NotFound => 0) + weight(#3 p)
  in
    (tblSet(ss, k, n);
     println(n);
     if n mod 2 = 0 then OnRemote(network, p)
     else OnRemote(network, (ipDestSet(#1 p, ipDst(#1 p)), #2 p, #3 p));
     (ps + 1, ss))
  end
"#;
    let run = |engine: Engine| -> (usize, String) {
        let image = load(src, Policy::no_delivery()).expect("loads");
        let mut sim = Sim::new(9);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
        sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
        sim.compute_routes();
        let handle = install_planp(
            &mut sim,
            r,
            &image,
            LayerConfig {
                engine,
                ..LayerConfig::default()
            },
        )
        .expect("install");
        let got = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(b, Box::new(Collector { got: got.clone() }));
        sim.add_app(
            a,
            Box::new(Burst {
                dst: addr(10, 0, 1, 1),
                n: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let n = got.borrow().len();
        let out = handle.output.borrow().clone();
        (n, out)
    };
    let (n_jit, out_jit) = run(Engine::Jit);
    let (n_interp, out_interp) = run(Engine::Interp);
    assert_eq!(n_jit, 10);
    assert_eq!(n_jit, n_interp);
    assert_eq!(out_jit, out_interp);
    assert!(!out_jit.is_empty());
}

/// ASPs on several hops compose: a tagger on the first router and a
/// filter on the second.
#[test]
fn asps_compose_across_hops() {
    let tagger = r#"
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let val out : blob = blobSetByte(#3 p, 0, ps mod 200) handle _ => #3 p in
    (OnRemote(network, (#1 p, #2 p, out)); (ps + 1, ss))
  end
"#;
    let filter = r#"
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  if (blobByte(#3 p, 0) handle _ => 1) mod 2 = 0 then
    (OnRemote(network, p); (ps, ss))
  else (ps, ss)
"#;
    let t_img = load(tagger, Policy::strict()).expect("tagger verifies");
    let f_img = load(filter, Policy::no_delivery()).expect("filter loads");

    let mut sim = Sim::new(4);
    let a = sim.add_host("a", addr(10, 0, 0, 1));
    let r1 = sim.add_router("r1", addr(10, 0, 0, 254));
    let r2 = sim.add_router("r2", addr(10, 0, 1, 254));
    let b = sim.add_host("b", addr(10, 0, 2, 1));
    sim.add_link(LinkSpec::ethernet_10(), &[a, r1]);
    sim.add_link(LinkSpec::ethernet_10(), &[r1, r2]);
    sim.add_link(LinkSpec::ethernet_10(), &[r2, b]);
    sim.compute_routes();
    install_planp(&mut sim, r1, &t_img, LayerConfig::default()).expect("install tagger");
    install_planp(&mut sim, r2, &f_img, LayerConfig::default()).expect("install filter");

    let got = Rc::new(RefCell::new(Vec::new()));
    sim.add_app(b, Box::new(Collector { got: got.clone() }));
    sim.add_app(
        a,
        Box::new(Burst {
            dst: addr(10, 0, 2, 1),
            n: 10,
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    // Tagger stamps 0..9; filter keeps even stamps: 5 packets.
    assert_eq!(got.borrow().len(), 5);
    for pkt in got.borrow().iter() {
        assert_eq!(pkt.payload[0] % 2, 0);
    }
}

/// Rejected programs never reach the network.
#[test]
fn rejected_program_cannot_be_installed() {
    let bouncer = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p)); (ps, ss))";
    assert!(load(bouncer, Policy::strict()).is_err());
    // …but an authenticated download is the operator's responsibility.
    assert!(load(bouncer, Policy::authenticated()).is_ok());
}

/// The figure 2 program from the paper parses, checks, and runs.
#[test]
fn paper_figure2_fragment_end_to_end() {
    let src = r#"
channel relay(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(relay, p); (ps, ss))

channel network(ps : int, ss : ((host*int), host) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
  in
    if tcpDst(tcph) = 80 then
      if tblHas(ss, (ipSrc(iph), tcpSrc(tcph))) then
        let val s : host = tblGet(ss, (ipSrc(iph), tcpSrc(tcph))) handle NotFound => 10.0.1.1 in
          (OnRemote(relay, (ipDestSet(iph, s), tcph, #3 p)); (ps, ss))
        end
      else
        let val s : host = if ps mod 2 = 0 then 10.0.1.1 else 10.0.2.1 in
          (tblSet(ss, (ipSrc(iph), tcpSrc(tcph)), s);
           OnRemote(relay, (ipDestSet(iph, s), tcph, #3 p));
           (ps + 1, ss))
        end
    else
      (OnRemote(network, p); (ps, ss))
  end
"#;
    let lp = load(src, Policy::strict()).expect("figure-2-style gateway verifies");
    assert_eq!(lp.prog.channels.len(), 2);
}

/// Overloaded channels (figure 4) dispatch by payload type end to end.
#[test]
fn paper_figure4_overloads_end_to_end() {
    let src = r#"
val CmdA : int = 65
val CmdB : int = 66

channel network(ps : unit, ss : unit, p : ip*udp*char*int) is
  (if charPos(#3 p) = CmdA then (print("CmdA: "); println(#4 p); ()) else ();
   deliver(p); (ps, ss))

channel network(ps : unit, ss : unit, p : ip*udp*char*bool) is
  (if charPos(#3 p) = CmdB then (print("CmdB: "); println(#4 p); ()) else ();
   deliver(p); (ps, ss))
"#;
    let image = load(src, Policy::no_delivery()).expect("loads");
    let mut sim = Sim::new(2);
    let a = sim.add_host("a", addr(10, 0, 0, 1));
    let b = sim.add_host("b", addr(10, 0, 0, 2));
    sim.add_link(LinkSpec::ethernet_10(), &[a, b]);
    sim.compute_routes();
    let handle = install_planp(&mut sim, b, &image, LayerConfig::default()).expect("install");

    struct TwoKinds {
        dst: u32,
    }
    impl App for TwoKinds {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            let mut p1 = vec![b'A'];
            p1.extend_from_slice(&123i64.to_be_bytes());
            api.send(Packet::udp(api.addr(), self.dst, 1, 2, Bytes::from(p1)));
            api.send(Packet::udp(
                api.addr(),
                self.dst,
                1,
                2,
                Bytes::from(vec![b'B', 1u8]),
            ));
        }
        fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    }
    sim.add_app(
        a,
        Box::new(TwoKinds {
            dst: addr(10, 0, 0, 2),
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(&*handle.output.borrow(), "CmdA: 123\nCmdB: true\n");
}

/// The pretty-printer round-trips every shipped ASP: the printed form
/// reparses, type checks, and produces the same channel signatures.
#[test]
fn shipped_asps_round_trip_through_the_pretty_printer() {
    let sources = [
        planp::apps::audio::AUDIO_ROUTER_ASP,
        planp::apps::audio::AUDIO_CLIENT_ASP,
        planp::apps::audio::AUDIO_ROUTER_HYSTERESIS_ASP,
        planp::apps::audio::AUDIO_ROUTER_QUEUE_ASP,
        planp::apps::http::HTTP_GATEWAY_ASP,
        planp::apps::http::HTTP_GATEWAY_3SRV_ASP,
        planp::apps::http::HTTP_GATEWAY_RANDOM_ASP,
        planp::apps::http::HTTP_GATEWAY_PORTHASH_ASP,
        planp::apps::http::HTTP_GATEWAY_FAILOVER_ASP,
        planp::apps::mpeg::MPEG_MONITOR_ASP,
        planp::apps::mpeg::MPEG_CAPTURE_ASP,
    ];
    for src in sources {
        let ast = planp::lang::parse_program(src).expect("parses");
        let printed = planp::lang::pretty::program(&ast);
        let reparsed = planp::lang::parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Printing is a fixed point.
        assert_eq!(printed, planp::lang::pretty::program(&reparsed));
        // And the reprinted program still type checks to the same shape.
        let t1 = planp::lang::typecheck(&ast).expect("original checks");
        let t2 = planp::lang::typecheck(&reparsed).expect("round-tripped checks");
        assert_eq!(t1.channels.len(), t2.channels.len());
        for (a, b) in t1.channels.iter().zip(t2.channels.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.pkt_ty, b.pkt_ty);
            assert_eq!(a.ss_ty, b.ss_ty);
        }
        assert_eq!(t1.exns, t2.exns);
    }
}

/// In-band deployment installs a working program through the network
/// (section 5's "protocol management" future work, implemented).
#[test]
fn in_band_deployment_end_to_end() {
    use planp::runtime::{deploy_packets, DeployService};

    let mut sim = Sim::new(6);
    let op = sim.add_host("operator", addr(10, 0, 0, 1));
    let r = sim.add_router("r", addr(10, 0, 0, 254));
    let b = sim.add_host("b", addr(10, 0, 1, 1));
    sim.add_link(LinkSpec::ethernet_10(), &[op, r]);
    sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
    sim.compute_routes();
    let svc = DeployService::new(Policy::strict(), LayerConfig::default());
    let log = svc.log.clone();
    sim.add_app(r, Box::new(svc));

    struct Op {
        packets: Vec<Packet>,
    }
    impl App for Op {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            for p in self.packets.drain(..) {
                api.send(p);
            }
        }
        fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    }
    let asp = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
               (OnRemote(network, p); (ps + 1, ss))";
    sim.add_app(
        op,
        Box::new(Op {
            packets: deploy_packets(addr(10, 0, 0, 1), addr(10, 0, 0, 254), 1, asp),
        }),
    );
    sim.run_until(SimTime::from_ms(200));
    assert_eq!(log.borrow().installed, 1);

    // Traffic now flows through the deployed program.
    let got = Rc::new(RefCell::new(Vec::new()));
    sim.add_app(b, Box::new(Collector { got: got.clone() }));
    sim.add_app(
        op,
        Box::new(Burst {
            dst: addr(10, 0, 1, 1),
            n: 7,
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(got.borrow().len(), 7);
    let handle = log.borrow().handle.clone().expect("handle");
    assert_eq!(handle.stats.borrow().matched, 7);
}

/// The `.planp` files shipped in `asps/` stay in sync with the embedded
/// sources (regenerate with `cargo run --example dump_asps`).
#[test]
fn asp_files_match_embedded_sources() {
    let progs: &[(&str, &str)] = &[
        ("audio_router", planp::apps::audio::AUDIO_ROUTER_ASP),
        ("audio_client", planp::apps::audio::AUDIO_CLIENT_ASP),
        (
            "audio_router_hysteresis",
            planp::apps::audio::AUDIO_ROUTER_HYSTERESIS_ASP,
        ),
        (
            "audio_router_queue",
            planp::apps::audio::AUDIO_ROUTER_QUEUE_ASP,
        ),
        ("http_gateway", planp::apps::http::HTTP_GATEWAY_ASP),
        (
            "http_gateway_3srv",
            planp::apps::http::HTTP_GATEWAY_3SRV_ASP,
        ),
        (
            "http_gateway_random",
            planp::apps::http::HTTP_GATEWAY_RANDOM_ASP,
        ),
        (
            "http_gateway_porthash",
            planp::apps::http::HTTP_GATEWAY_PORTHASH_ASP,
        ),
        (
            "http_gateway_failover",
            planp::apps::http::HTTP_GATEWAY_FAILOVER_ASP,
        ),
        ("mpeg_monitor", planp::apps::mpeg::MPEG_MONITOR_ASP),
        ("mpeg_capture", planp::apps::mpeg::MPEG_CAPTURE_ASP),
        ("reliable_relay", planp::apps::chaos::RELIABLE_RELAY_ASP),
        ("buggy/fragile_relay", planp::apps::chaos::FRAGILE_RELAY_ASP),
        (
            "audio_router_chaos",
            planp::apps::chaos::AUDIO_ROUTER_CHAOS_ASP,
        ),
    ];
    let root = env!("CARGO_MANIFEST_DIR");
    for (name, src) in progs {
        let path = format!("{root}/asps/{name}.planp");
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (run `cargo run --example dump_asps`)"));
        assert_eq!(
            on_disk,
            src.trim_start(),
            "{path} out of sync; run `cargo run --example dump_asps`"
        );
    }
}

/// One compiled image installed on several nodes keeps independent
/// state per node (the paper's image is downloaded to many routers;
/// sharing compiled code must not share tables or counters).
#[test]
fn shared_image_has_independent_state_per_node() {
    let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
               (println(ps); OnRemote(network, p); (ps + 1, ss))";
    let image = load(src, Policy::strict()).expect("loads");

    let mut sim = Sim::new(5);
    let a = sim.add_host("a", addr(10, 0, 0, 1));
    let r1 = sim.add_router("r1", addr(10, 0, 0, 254));
    let r2 = sim.add_router("r2", addr(10, 0, 1, 254));
    let b = sim.add_host("b", addr(10, 0, 2, 1));
    sim.add_link(LinkSpec::ethernet_10(), &[a, r1]);
    sim.add_link(LinkSpec::ethernet_10(), &[r1, r2]);
    sim.add_link(LinkSpec::ethernet_10(), &[r2, b]);
    sim.compute_routes();
    let h1 = install_planp(&mut sim, r1, &image, LayerConfig::default()).unwrap();
    let h2 = install_planp(&mut sim, r2, &image, LayerConfig::default()).unwrap();

    sim.add_app(
        a,
        Box::new(Burst {
            dst: addr(10, 0, 2, 1),
            n: 3,
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    // Each layer counted its own packets from its own zero.
    assert_eq!(&*h1.output.borrow(), "0\n1\n2\n");
    assert_eq!(&*h2.output.borrow(), "0\n1\n2\n");
    assert_eq!(h1.stats.borrow().matched, 3);
    assert_eq!(h2.stats.borrow().matched, 3);
}

/// The [36] bridge claim at system level: a node running a forwarder
/// ASP moves exactly the traffic a plain router (or a native no-op
/// hook) moves — same deliveries, no drops introduced by the ASP.
#[test]
fn asp_bridge_equivalent_to_builtin_forwarding() {
    struct NativeNoop;
    impl planp::netsim::PacketHook for NativeNoop {
        fn on_packet(
            &mut self,
            _api: &mut NodeApi<'_>,
            pkt: Packet,
            _meta: &planp::netsim::ArrivalMeta,
        ) -> planp::netsim::HookVerdict {
            planp::netsim::HookVerdict::Pass(pkt)
        }
    }

    let forwarder = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
                     (OnRemote(network, p); (ps, ss))";
    let run = |mode: u8| -> u64 {
        let mut sim = Sim::new(11);
        let a = sim.add_host("a", addr(10, 0, 0, 1));
        let bridge = sim.add_router("bridge", addr(10, 0, 0, 254));
        let b = sim.add_host("b", addr(10, 0, 1, 1));
        sim.add_link(LinkSpec::ethernet_10(), &[a, bridge]);
        sim.add_link(LinkSpec::ethernet_10(), &[bridge, b]);
        sim.compute_routes();
        match mode {
            0 => {}
            1 => {
                let image = load(forwarder, Policy::strict()).unwrap();
                install_planp(&mut sim, bridge, &image, LayerConfig::default()).unwrap();
            }
            _ => sim.install_hook(bridge, Box::new(NativeNoop)),
        }
        sim.add_app(
            a,
            Box::new(Burst {
                dst: addr(10, 0, 1, 1),
                n: 50,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        sim.node(b).delivered
    };
    let plain = run(0);
    let asp = run(1);
    let native = run(2);
    assert_eq!(plain, 50);
    assert_eq!(asp, plain, "ASP bridge must not lose or duplicate traffic");
    assert_eq!(native, plain);
}

/// The run-time backstop behind the static proof (§2.1): a verified
/// program never needs the TTL safety net, while an authenticated
/// bouncer ping-pongs until the TTL kills the packet — the network
/// survives, the packet does not.
#[test]
fn ttl_backstop_catches_authenticated_bouncers() {
    // Two routers, each redirecting every UDP packet at the *other*
    // end's host: the packet ping-pongs between them forever — except
    // for the TTL.
    let to_b = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                (OnRemote(network, (ipDestSet(#1 p, 10.0.1.1), #2 p, #3 p)); (ps + 1, ss))";
    let to_a = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps + 1, ss))";
    let img_b = load(to_b, Policy::authenticated()).expect("authenticated download");
    let img_a = load(to_a, Policy::authenticated()).expect("authenticated download");
    assert!(
        !img_b.report.termination.is_proved(),
        "correctly unprovable"
    );

    let mut sim = Sim::new(2);
    let a = sim.add_host("a", addr(10, 0, 0, 1));
    let r1 = sim.add_router("r1", addr(10, 0, 0, 254));
    let r2 = sim.add_router("r2", addr(10, 0, 2, 254));
    let b = sim.add_host("b", addr(10, 0, 1, 1));
    sim.add_link(LinkSpec::ethernet_10(), &[a, r1]);
    sim.add_link(LinkSpec::ethernet_10(), &[r1, r2]);
    sim.add_link(LinkSpec::ethernet_10(), &[r2, b]);
    sim.compute_routes();
    let h1 = install_planp(&mut sim, r1, &img_b, LayerConfig::default()).unwrap();
    let h2 = install_planp(&mut sim, r2, &img_a, LayerConfig::default()).unwrap();

    let got = Rc::new(RefCell::new(Vec::new()));
    sim.add_app(b, Box::new(Collector { got: got.clone() }));
    sim.add_app(
        a,
        Box::new(Burst {
            dst: addr(10, 0, 1, 1),
            n: 1,
        }),
    );
    // The simulation must terminate (the bouncers cannot loop forever).
    sim.run_until(SimTime::from_secs(5));

    assert_eq!(
        got.borrow().len(),
        0,
        "the packet died of TTL, not delivery"
    );
    let bounces = h1.stats.borrow().matched + h2.stats.borrow().matched;
    assert!(
        (30..=64).contains(&bounces),
        "the packet should bounce ~TTL times, got {bounces}"
    );
    // A verified forwarder on the same topology delivers with TTL to spare.
    let fwd = load(
        "channel network(ps : unit, ss : unit, p : ip*udp*blob) is (OnRemote(network, p); (ps, ss))",
        Policy::strict(),
    )
    .unwrap();
    let mut sim = Sim::new(2);
    let a = sim.add_host("a", addr(10, 0, 0, 1));
    let r = sim.add_router("r", addr(10, 0, 0, 254));
    let b = sim.add_host("b", addr(10, 0, 1, 1));
    sim.add_link(LinkSpec::ethernet_10(), &[a, r]);
    sim.add_link(LinkSpec::ethernet_10(), &[r, b]);
    sim.compute_routes();
    install_planp(&mut sim, r, &fwd, LayerConfig::default()).unwrap();
    let got = Rc::new(RefCell::new(Vec::new()));
    sim.add_app(b, Box::new(Collector { got: got.clone() }));
    sim.add_app(
        a,
        Box::new(Burst {
            dst: addr(10, 0, 1, 1),
            n: 1,
        }),
    );
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(got.borrow().len(), 1);
    assert!(
        got.borrow()[0].ip.ttl > 60,
        "one hop consumed, TTL nearly full"
    );
}
