//! Integration tests asserting the *shape* of each reproduced
//! experiment at reduced scale: who wins, by roughly what factor, and
//! where the crossovers fall — the claims EXPERIMENTS.md documents.

use planp::apps::audio::{run_audio, Adaptation, AudioConfig, LoadPhase};
use planp::apps::http::{run_http, ClusterMode, HttpConfig};
use planp::apps::mpeg::{run_mpeg, MpegConfig};

/// Figure 6 shape at reduced horizon: the three-level staircase
/// 176 → 44 → 88 kb/s, reacting within a couple of measurement windows
/// (no end-to-end feedback).
#[test]
fn fig6_shape_bandwidth_staircase() {
    let cfg = AudioConfig {
        adaptation: Adaptation::AspJit,
        phases: vec![
            LoadPhase {
                from_s: 20.0,
                to_s: 45.0,
                kbps: 9450,
            },
            LoadPhase {
                from_s: 45.0,
                to_s: 70.0,
                kbps: 6200,
            },
        ],
        jitter_pct: 0,
        duration_s: 90,
        seed: 7,
        router_src: None,
        dual_segment: false,
        segment_faults: None,
    };
    let r = run_audio(&cfg);
    let quiet = r.avg_kbps(5.0, 20.0);
    let large = r.avg_kbps(25.0, 45.0);
    let small = r.avg_kbps(50.0, 70.0);
    let recovered = r.avg_kbps(78.0, 90.0);
    assert!(quiet > 160.0, "quiet {quiet}");
    assert!(large < 60.0, "large-load {large}");
    assert!((70.0..110.0).contains(&small), "small-load {small}");
    assert!(recovered > 160.0, "recovered {recovered}");
    // Reaction is fast: within 3 s of load onset, the rate already fell.
    let onset = r.avg_kbps(21.0, 24.0);
    assert!(
        onset < 120.0,
        "reaction too slow: {onset} kb/s right after onset"
    );
}

/// Figure 7 shape: under the overload level, adaptation eliminates
/// nearly all silent periods; without it the stream is choppy.
#[test]
fn fig7_shape_gaps_reduced_by_adaptation() {
    let mk = |adaptation| {
        run_audio(&AudioConfig {
            adaptation,
            phases: vec![LoadPhase {
                from_s: 5.0,
                to_s: 60.0,
                kbps: 9560,
            }],
            jitter_pct: 0,
            duration_s: 60,
            seed: 7,
            router_src: None,
            dual_segment: false,
            segment_faults: None,
        })
    };
    let asp = mk(Adaptation::AspJit);
    let native = mk(Adaptation::Native);
    let off = mk(Adaptation::Off);
    assert!(
        off.stats.gaps >= 20,
        "no-adaptation gaps {}",
        off.stats.gaps
    );
    assert!(
        asp.stats.gaps * 5 < off.stats.gaps,
        "asp {} vs off {}",
        asp.stats.gaps,
        off.stats.gaps
    );
    // The ASP and the built-in C adaptation behave alike.
    let diff = asp.stats.gaps.abs_diff(native.stats.gaps);
    assert!(
        diff <= off.stats.gaps / 5,
        "asp {} native {}",
        asp.stats.gaps,
        native.stats.gaps
    );
}

/// Figure 8 shape: ASP gateway == built-in gateway; the cluster beats
/// one server by well over 1.5x and lands within 80-95% of the
/// two-server upper bound.
#[test]
fn fig8_shape_cluster_throughput() {
    let quick = |mode| {
        let mut cfg = HttpConfig::new(mode, 16);
        cfg.duration_s = 15;
        cfg.warmup_s = 5.0;
        run_http(&cfg).req_per_sec
    };
    let single = quick(ClusterMode::Single);
    let asp = quick(ClusterMode::AspGateway);
    let native = quick(ClusterMode::NativeGateway);
    let disjoint = quick(ClusterMode::Disjoint);

    assert!(
        (asp - native).abs() / native < 0.08,
        "asp {asp} vs native {native}"
    );
    let speedup = asp / single;
    assert!((1.4..2.0).contains(&speedup), "cluster speedup {speedup}");
    let efficiency = asp / disjoint;
    assert!(
        (0.75..0.97).contains(&efficiency),
        "gateway efficiency {efficiency}"
    );
}

/// Section 3.3 shape: server egress is flat in viewers with ASPs and
/// linear without.
#[test]
fn mpeg_shape_server_egress() {
    let shared2 = run_mpeg(&MpegConfig::new(2, true));
    let shared4 = run_mpeg(&MpegConfig::new(4, true));
    let direct2 = run_mpeg(&MpegConfig::new(2, false));
    let direct4 = run_mpeg(&MpegConfig::new(4, false));

    // Flat vs linear.
    let flat = shared4.server.video_bytes as f64 / shared2.server.video_bytes as f64;
    let linear = direct4.server.video_bytes as f64 / direct2.server.video_bytes as f64;
    assert!(flat < 1.15, "ASP egress should be flat, grew {flat}x");
    assert!(linear > 1.7, "direct egress should scale, grew {linear}x");

    // Everyone still watches.
    for c in shared4.clients.iter() {
        assert!(c.frames > 150, "viewer starved: {c:?}");
    }
    assert_eq!(shared4.server.streams, 1);
    assert_eq!(direct4.server.streams, 4);
}

/// The reproduction is deterministic: the same seed gives the same
/// figures.
#[test]
fn experiments_are_reproducible() {
    let a = run_mpeg(&MpegConfig::new(2, true));
    let b = run_mpeg(&MpegConfig::new(2, true));
    assert_eq!(a.server.video_bytes, b.server.video_bytes);
    assert_eq!(
        a.clients.iter().map(|c| c.frames).collect::<Vec<_>>(),
        b.clients.iter().map(|c| c.frames).collect::<Vec<_>>()
    );

    let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
    cfg.duration_s = 8;
    let x = run_http(&cfg);
    let y = run_http(&cfg);
    assert_eq!(x.completed, y.completed);
}
