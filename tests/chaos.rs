//! Integration tests for the fault-injection subsystem: the
//! drop-accounting identity across every traced scenario, the policy
//! split between the reliable and fragile relays, and end-to-end
//! determinism of chaos runs.

use planp::analysis::Policy;
use planp::apps::audio::{run_audio_traced, Adaptation, AudioConfig};
use planp::apps::chaos::{
    run_relay_chaos, RelayChaosConfig, RelayKind, FRAGILE_RELAY_ASP, RELIABLE_RELAY_ASP,
};
use planp::apps::http::{run_http_traced, ClusterMode, HttpConfig, HTTP_GATEWAY_FAILOVER_ASP};
use planp::apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp::netsim::LinkFaults;
use planp::runtime::load;
use planp::telemetry::{MetricsSnapshot, TraceConfig};

/// `sim.link_drops_total` must equal the sum of per-link congestion
/// drops plus per-link fault drops — every lost packet is attributed to
/// exactly one link and exactly one cause.
fn assert_drop_identity(label: &str, snap: &MetricsSnapshot) {
    let total = snap.counters["sim.link_drops_total"];
    let mut congestion = 0;
    let mut faults = 0;
    for (key, v) in snap.counters.iter() {
        if !key.starts_with("link") {
            continue;
        }
        if key.ends_with(".fault_drops") {
            faults += v;
        } else if key.ends_with(".drops") {
            congestion += v;
        }
    }
    assert_eq!(
        total,
        congestion + faults,
        "{label}: sim.link_drops_total {total} != congestion {congestion} + fault {faults}"
    );
    // When faults were enabled, the simulator-wide loss counter must
    // also agree with the per-link attribution (loss is the only fault
    // kind these scenarios drop packets with at the link layer, plus
    // whatever a downed link refused to enqueue).
    if let Some(loss) = snap.counters.get("sim.fault_loss_drops") {
        let down = snap.counters.get("sim.fault_link_down_drops").unwrap_or(&0);
        let partition = snap.counters.get("sim.fault_partition_drops").unwrap_or(&0);
        assert_eq!(
            faults,
            loss + down + partition,
            "{label}: per-link fault drops disagree with the fault-kind counters"
        );
    }
}

/// The identity holds across all three section 3 applications under
/// injected loss, and in the relay chain with loss + duplication +
/// a crash schedule — congestion and fault losses never cross-count.
#[test]
fn drop_accounting_identity_across_scenarios() {
    let mut audio = AudioConfig::constant_load(Adaptation::AspJit, 1000, 15);
    audio.segment_faults = Some((1.0, LinkFaults::loss(0.08)));
    let (_, _, snap) = run_audio_traced(&audio, TraceConfig::default());
    assert_drop_identity("audio", &snap);
    assert!(
        snap.counters["sim.fault_loss_drops"] > 0,
        "audio: loss was configured but never fired"
    );

    let mut http = HttpConfig::new(ClusterMode::AspGateway, 8);
    http.duration_s = 10;
    http.gateway_src = Some(HTTP_GATEWAY_FAILOVER_ASP);
    http.crash_server1_at_s = Some(4.0);
    let (_, _, snap) = run_http_traced(&http, TraceConfig::default());
    assert_drop_identity("http", &snap);

    let mut mpeg = MpegConfig::new(3, true);
    mpeg.segment_faults = Some((1.0, LinkFaults::loss(0.05)));
    let (_, _, snap) = run_mpeg_traced(&mpeg, TraceConfig::default());
    assert_drop_identity("mpeg", &snap);

    let mut relay = RelayChaosConfig::new(
        RelayKind::Reliable,
        LinkFaults {
            loss: 0.05,
            duplicate: 0.05,
            corrupt: 0.01,
            ..LinkFaults::default()
        },
    );
    relay.crash_relay = Some((0.25, 0.55));
    let res = run_relay_chaos(&relay);
    assert_drop_identity("relay", &res.snapshot);
    assert!(res.drop_identity_holds(), "relay: result-level identity");
}

/// A clean run keeps the identity trivially (no fault counters at all)
/// — the accounting does not depend on faults being enabled.
#[test]
fn drop_accounting_identity_without_faults() {
    let audio = AudioConfig::constant_load(Adaptation::AspJit, 1000, 15);
    let (_, _, snap) = run_audio_traced(&audio, TraceConfig::default());
    assert_drop_identity("audio clean", &snap);
    assert!(
        !snap.counters.contains_key("sim.fault_loss_drops"),
        "fault counters must not appear in a fault-free run"
    );
}

/// The verifier's policy split for the relay pair: the reliable relay's
/// retransmission cycle is unprovable, so it needs an authenticated
/// download; the fragile relay proves everything — and still collapses
/// under loss. Verification and robustness are orthogonal.
#[test]
fn relay_policies_match_their_documentation() {
    assert!(
        load(RELIABLE_RELAY_ASP, Policy::strict()).is_err(),
        "reliable relay must not pass the strict policy"
    );
    let lp = load(RELIABLE_RELAY_ASP, Policy::authenticated())
        .expect("reliable relay loads when authenticated");
    assert!(
        !lp.report.termination.is_proved(),
        "the NACK/retransmit cycle is correctly unprovable"
    );

    let lp = load(FRAGILE_RELAY_ASP, Policy::no_delivery()).expect("fragile relay loads");
    assert!(lp.report.accepted());
    assert!(lp.report.termination.is_proved());
    assert!(lp.report.duplication.is_proved());
}

/// Chaos runs are seeded end to end: identical configs give identical
/// results, and changing the seed actually changes the fault schedule.
#[test]
fn chaos_runs_are_seeded() {
    let cfg = RelayChaosConfig::loss(RelayKind::Fragile, 0.10);
    let a = run_relay_chaos(&cfg);
    let b = run_relay_chaos(&cfg);
    assert_eq!(a.unique, b.unique);
    assert_eq!(a.fault.loss_drops, b.fault.loss_drops);
    assert_eq!(a.snapshot.render_table(), b.snapshot.render_table());

    let mut other = RelayChaosConfig::loss(RelayKind::Fragile, 0.10);
    other.seed = cfg.seed + 1;
    let c = run_relay_chaos(&other);
    assert_ne!(
        a.fault.loss_drops, c.fault.loss_drops,
        "a different seed must reshuffle the Bernoulli trials"
    );
}
