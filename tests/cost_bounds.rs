//! Soundness of the static per-packet cost bounds (PR: static analysis).
//!
//! The verifier claims that no packet can charge more VM steps than the
//! structural worst-case bound of the channel that handles it, on either
//! engine. Two independent checks:
//!
//! * **Scenario telemetry** — across the three traced paper scenarios,
//!   the runtime layer's `cost_bound_exceeded` counters must stay absent
//!   (the layer only bumps them on a violation) and the aggregate
//!   `vm_steps` of every channel must fit inside
//!   `dispatch × static_bound_steps`.
//! * **Seeded property test** — random packets through the bundled
//!   forwarder and HTTP gateway ASPs, run under both the interpreter and
//!   the JIT, must each stay within the per-packet bound for steps *and*
//!   send effects, and the JIT (which constant-folds) must never charge
//!   more than the interpreter.

use planp::analysis::cost_bounds;
use planp::lang::compile_front;
use planp::vm::env::{Effect, MockEnv};
use planp::vm::interp::Interp;
use planp::vm::jit;
use planp::vm::pkthdr::{addr, IpHdr, TcpHdr, UdpHdr};
use planp::vm::value::Value;
use planp_apps::audio::{run_audio_traced, Adaptation, AudioConfig};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig};
use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_telemetry::{MetricsSnapshot, TraceConfig};

/// Asserts the layer's static-bound cross-check held for a whole run.
fn assert_bounds_hold(m: &MetricsSnapshot, scenario: &str) {
    for (k, v) in &m.counters {
        assert!(
            !k.ends_with(".cost_bound_exceeded") || *v == 0,
            "{scenario}: {k} = {v} (static bound violated at runtime)"
        );
    }
    let mut checked = 0;
    for (k, steps) in &m.counters {
        let Some(prefix) = k.strip_suffix(".vm_steps") else {
            continue;
        };
        let dispatch = m
            .counters
            .get(&format!("{prefix}.dispatch"))
            .copied()
            .unwrap_or(0);
        let bound = m
            .counters
            .get(&format!("{prefix}.static_bound_steps"))
            .copied()
            .unwrap_or_else(|| panic!("{scenario}: no static bound recorded for {prefix}"));
        assert!(
            *steps <= dispatch.saturating_mul(bound),
            "{scenario}: {prefix} charged {steps} steps over {dispatch} dispatches, \
             bound {bound}/packet"
        );
        checked += 1;
    }
    assert!(checked > 0, "{scenario}: no per-channel vm_steps recorded");
}

#[test]
fn audio_scenario_stays_within_static_bounds() {
    let cfg = AudioConfig::constant_load(Adaptation::AspJit, 9450, 10);
    let (_, _, m) = run_audio_traced(&cfg, TraceConfig::default());
    assert_bounds_hold(&m, "audio");
}

#[test]
fn http_scenario_stays_within_static_bounds() {
    let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
    cfg.duration_s = 10;
    let (_, _, m) = run_http_traced(&cfg, TraceConfig::default());
    assert_bounds_hold(&m, "http");
}

#[test]
fn mpeg_scenario_stays_within_static_bounds() {
    let cfg = MpegConfig::new(2, true);
    let (_, _, m) = run_mpeg_traced(&cfg, TraceConfig::default());
    assert_bounds_hold(&m, "mpeg");
}

/// SplitMix64 — a tiny deterministic generator for the property tests.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One engine's threaded execution state during the property test.
struct Run {
    env: MockEnv,
    ps: Value,
    ss: Value,
}

/// A channel run on either engine: (env, ps, ss, pkt) → (ps', ss').
type ChanExec<'a> = dyn Fn(&mut MockEnv, Value, Value, Value) -> Result<(Value, Value), planp::vm::value::VmError>
    + 'a;

/// Engine-specific state initialization: globals, proto state, channel state.
type InitFn<'a> = dyn Fn(&mut MockEnv) -> (Vec<Value>, Value, Value) + 'a;

/// Runs one packet, returning (steps charged, send effects performed).
fn step(run: &mut Run, exec: &ChanExec<'_>, pkt: Value) -> (u64, u64) {
    let steps_before = run.env.steps;
    let effects_before = run.env.effects.len();
    let (ps, ss) = exec(&mut run.env, run.ps.clone(), run.ss.clone(), pkt).expect("channel run");
    run.ps = ps;
    run.ss = ss;
    let sends = run.env.effects[effects_before..]
        .iter()
        .filter(|e| matches!(e, Effect::Remote { .. } | Effect::Neighbor { .. }))
        .count() as u64;
    (run.env.steps - steps_before, sends)
}

/// Property: for `packets` random packets on channel `idx` of `src`, the
/// observed per-packet steps and sends never exceed the static bound, on
/// either engine, and JIT steps never exceed interpreter steps.
fn check_soundness(src: &str, idx: usize, mut make_pkt: impl FnMut(&mut SplitMix64) -> Value) {
    let prog = std::rc::Rc::new(compile_front(src).expect("front end"));
    let bound = cost_bounds(&prog).bound_for(idx);
    let (compiled, _) = jit::compile(prog.clone());
    let interp = Interp::new(&prog);

    let setup = |init: &InitFn<'_>| {
        let mut env = MockEnv::new(addr(10, 0, 0, 254));
        let (globals, ps, ss) = init(&mut env);
        env.steps = 0;
        env.effects.clear();
        (globals, Run { env, ps, ss })
    };
    let (ig, mut irun) = setup(&|env| {
        let g = interp.eval_globals(env).unwrap();
        let ps = interp.init_proto(&g, env).unwrap();
        let ss = interp.init_channel_state(idx, &g, env).unwrap();
        (g, ps, ss)
    });
    let (jg, mut jrun) = setup(&|env| {
        let g = compiled.eval_globals(env).unwrap();
        let ps = compiled.init_proto(&g, env).unwrap();
        let ss = compiled.init_channel_state(idx, &g, env).unwrap();
        (g, ps, ss)
    });

    let mut rng = SplitMix64(0x0C05_7B07);
    for i in 0..200 {
        let pkt = make_pkt(&mut rng);
        let (isteps, isends) = step(
            &mut irun,
            &|env, ps, ss, p| interp.run_channel(idx, &ig, ps, ss, p, env),
            pkt.clone(),
        );
        let (jsteps, jsends) = step(
            &mut jrun,
            &|env, ps, ss, p| compiled.run_channel(idx, &jg, ps, ss, p, env),
            pkt,
        );
        assert!(
            isteps <= bound.steps,
            "packet {i}: interpreter charged {isteps} > bound {}",
            bound.steps
        );
        assert!(
            jsteps <= isteps,
            "packet {i}: JIT charged {jsteps} > interpreter {isteps}"
        );
        assert!(
            isends <= bound.sends && jsends <= bound.sends,
            "packet {i}: sends {isends}/{jsends} > bound {}",
            bound.sends
        );
    }
}

fn random_blob(rng: &mut SplitMix64) -> Value {
    let r = rng.next();
    let len = (r % 48) as usize;
    Value::Blob(bytes::Bytes::from(vec![(r >> 32) as u8; len]))
}

#[test]
fn forwarder_random_packets_within_bound() {
    let src = std::fs::read_to_string("asps/forwarder.planp").expect("asp source");
    check_soundness(&src, 0, |rng| {
        let r = rng.next();
        let blob = random_blob(rng);
        Value::tuple(vec![
            Value::Ip(IpHdr::new(
                addr(10, 0, 0, (r % 200) as u8 + 1),
                addr(10, 0, 1, ((r >> 8) % 200) as u8 + 1),
                IpHdr::PROTO_UDP,
            )),
            Value::Udp(UdpHdr::new((r >> 16) as u16, (r >> 32) as u16)),
            blob,
        ])
    });
}

#[test]
fn http_gateway_random_packets_within_bound() {
    let src = std::fs::read_to_string("asps/http_gateway.planp").expect("asp source");
    let prog = compile_front(&src).expect("front end");
    let network = prog.chan_groups["network"][0];
    let (srv0, srv1, virt) = (addr(10, 0, 2, 1), addr(10, 0, 3, 1), addr(10, 9, 9, 9));
    check_soundness(&src, network, move |rng| {
        let r = rng.next();
        // Mix request, result, and pass-through traffic to cover every
        // branch of the gateway.
        let (sip, dip, sport, dport) = match r % 4 {
            0 => (
                addr(10, 0, 0, (r >> 8) as u8 % 8 + 1),
                virt,
                1024 + (r >> 16) as u16 % 64,
                80,
            ),
            1 => (srv0, addr(10, 0, 0, 5), 80, 5000),
            2 => (srv1, addr(10, 0, 0, 6), 80, 6000),
            _ => (
                addr(10, 0, 0, 7),
                addr(10, 0, 1, 7),
                (r >> 16) as u16,
                (r >> 24) as u16,
            ),
        };
        let blob = random_blob(rng);
        Value::tuple(vec![
            Value::Ip(IpHdr::new(sip, dip, IpHdr::PROTO_TCP)),
            Value::Tcp(TcpHdr::data(sport, dport, (r >> 40) as u32)),
            blob,
        ])
    });
}
