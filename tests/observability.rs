//! The scale-ready telemetry contract: deterministic whole-lineage
//! head sampling (same seed + rate ⇒ byte-identical exports; rate 1/1
//! ⇒ identical to the unsampled path; kept traces always complete),
//! the ≥ 8× overhead cut of 1/16 sampling on the 1k-node grid, the
//! deterministic budget downgrade path, and the live SLO health
//! monitor catching the chaos delivery-floor breach, the recovery
//! window, and the crashed relay's flight-recorder dump.

use planp::apps::audio::{run_audio_traced, Adaptation, AudioConfig};
use planp::apps::chaos::{run_relay_chaos, RelayChaosConfig, RelayKind};
use planp::apps::obs::{run_obs_grid, ObsGridConfig};
use planp::telemetry::{chrome_trace, prometheus, Category, TraceConfig, TraceForest};

fn audio_cfg() -> AudioConfig {
    AudioConfig::constant_load(Adaptation::AspJit, 9450, 10)
}

fn roomy(sample_n: u32) -> TraceConfig {
    TraceConfig {
        capacity: 1 << 19,
        ..TraceConfig::sampled(sample_n)
    }
}

// ---- sampler determinism ----------------------------------------------

/// Same seed + same rate ⇒ byte-identical JSONL, Chrome, and
/// Prometheus exports across two independent runs.
#[test]
fn sampled_exports_are_byte_stable_across_same_seed_runs() {
    let run = || {
        let (_, t, m) = run_audio_traced(&audio_cfg(), roomy(8));
        let forest = TraceForest::from_log(&t.trace);
        (
            t.trace.to_jsonl(),
            chrome_trace(&forest, &t.nodes),
            prometheus(&m),
        )
    };
    let (jsonl_a, chrome_a, prom_a) = run();
    let (jsonl_b, chrome_b, prom_b) = run();
    assert_eq!(jsonl_a, jsonl_b, "sampled JSONL must be deterministic");
    assert_eq!(chrome_a, chrome_b);
    assert_eq!(prom_a, prom_b);
}

/// Rate 1/1 must take the identical code path as no sampling at all:
/// the recorded event stream is byte-for-byte the unsampled one.
#[test]
fn rate_one_is_byte_identical_to_unsampled() {
    let (_, unsampled, _) = run_audio_traced(
        &audio_cfg(),
        TraceConfig {
            capacity: 1 << 19,
            ..TraceConfig::all()
        },
    );
    let (_, rate_one, _) = run_audio_traced(&audio_cfg(), roomy(1));
    assert_eq!(unsampled.trace.to_jsonl(), rate_one.trace.to_jsonl());
    assert_eq!(rate_one.trace.sampled_out(), 0);
}

/// Whole-lineage sampling: whatever the rate, a kept trace keeps every
/// span — the forest has no orphans, and every root is an ingress.
#[test]
fn sampled_forests_have_no_orphans() {
    for n in [2, 8, 32] {
        let (_, t, _) = run_audio_traced(&audio_cfg(), roomy(n));
        assert_eq!(t.trace.evicted(), 0);
        let forest = TraceForest::from_log(&t.trace);
        assert_eq!(
            forest.orphans().len(),
            0,
            "1/{n}: sampling must keep whole lineages"
        );
        assert!(t.trace.sampled_out() > 0, "1/{n}: the sampler must bite");
    }
}

// ---- overhead at scale -------------------------------------------------

fn grid(trace: TraceConfig) -> ObsGridConfig {
    ObsGridConfig::new(TraceConfig {
        capacity: 1 << 17,
        ..trace
    })
}

/// The acceptance headline: on the 1024-node grid, 1/16 sampling cuts
/// recorded trace events ≥ 8× against full tracing, while every
/// retained trace still reconstructs a complete span tree and the
/// simulation itself is untouched.
#[test]
fn grid_sampling_cuts_overhead_eightfold_with_complete_trees() {
    let full = run_obs_grid(&grid(TraceConfig::all()));
    let s16 = run_obs_grid(&grid(TraceConfig::sampled(16)));
    assert!(full.nodes >= 1000, "grid is {} nodes", full.nodes);
    for (label, r) in [("full", &full), ("1/16", &s16)] {
        assert_eq!(r.unique, r.expected, "{label}: every datagram delivered");
        assert_eq!(r.overhead.evicted, 0, "{label}");
        assert_eq!(r.orphans, 0, "{label}: kept traces stay complete");
    }
    assert!(
        full.overhead.kept >= 8 * s16.overhead.kept,
        "1/16 sampling kept {} of {} events (< 8x cut)",
        s16.overhead.kept,
        full.overhead.kept
    );
    assert!(s16.overhead.sampled_out > 0);
    // The sampled snapshot self-accounts: the overhead counters are in.
    assert_eq!(
        s16.snapshot.counters["sim.trace_sample_n"], 16,
        "snapshot must carry the sampling rate"
    );
    assert_eq!(
        s16.snapshot.counters["sim.trace_sampled_out"],
        s16.overhead.sampled_out
    );
}

/// The kept-event budget deterministically steps the sampling rate
/// down (doubling `sample_n`, one `sample_downgrade` event per step),
/// and two same-seed budget runs are byte-identical.
#[test]
fn budget_downgrade_is_deterministic() {
    let cfg = grid(TraceConfig {
        budget: 4_000,
        ..TraceConfig::all()
    });
    let a = run_obs_grid(&cfg);
    let b = run_obs_grid(&cfg);
    assert!(
        a.overhead.downgrades >= 1,
        "budget must bite: {:?}",
        a.overhead
    );
    assert!(a.overhead.sample_n > 1, "rate stepped down");
    assert_eq!(
        a.overhead, b.overhead,
        "downgrade schedule is deterministic"
    );
    assert_eq!(a.telemetry.trace.to_jsonl(), b.telemetry.trace.to_jsonl());
    assert_eq!(a.orphans, 0, "downgrades never orphan kept lineages");
    let downgrade_events = a
        .telemetry
        .trace
        .events()
        .filter(|e| e.category() == Category::META)
        .count() as u32;
    assert_eq!(downgrade_events, a.overhead.downgrades);
    assert_eq!(
        a.snapshot.counters["sim.trace_downgrades"],
        u64::from(a.overhead.downgrades)
    );
}

// ---- live SLO health monitoring ---------------------------------------

fn monitored(mut cfg: RelayChaosConfig) -> RelayChaosConfig {
    cfg.monitor_ms = Some(250);
    cfg
}

/// The monitor catches the PR 5 chaos SLO breach: the fragile relay at
/// 10% per-link loss violates the windowed 95% delivery floor, and the
/// first breach freezes the middle relay's flight-recorder window.
#[test]
fn health_monitor_detects_fragile_delivery_breach() {
    let res = run_relay_chaos(&monitored(RelayChaosConfig::loss(RelayKind::Fragile, 0.10)));
    let h = res.health.expect("monitored run");
    assert!(h.delivery_breaches >= 1, "{}", h.report);
    assert!(h.report.contains("BREACH"));
    assert!(
        h.flight.contains("node=r3") && h.flight.contains("cause=delivery_floor"),
        "breach must freeze the middle relay's window:\n{}",
        h.flight
    );
}

/// The reliable relay under the same monitor holds every delivery
/// window above the floor — the recovery side of the acceptance
/// criterion — and the report is byte-stable across same-seed runs.
#[test]
fn health_monitor_reliable_recovery_and_byte_stability() {
    let cfg = monitored(RelayChaosConfig::loss(RelayKind::Reliable, 0.05));
    let a = run_relay_chaos(&cfg);
    let b = run_relay_chaos(&cfg);
    let (ha, hb) = (a.health.expect("monitored"), b.health.expect("monitored"));
    assert_eq!(ha.delivery_breaches, 0, "{}", ha.report);
    assert_eq!(ha.delivery_recovered, Some(true));
    assert_eq!(ha.report, hb.report, "health report must be byte-stable");
    assert_eq!(ha.flight, hb.flight);
}

/// A crash mid-stream: the outage windows breach, the post-restart
/// windows recover, and the byte-stable report carries the crashed
/// node's flight-recorder window with the crash itself in it.
#[test]
fn health_monitor_crash_flight_recorder_dump() {
    let mut cfg = RelayChaosConfig::loss(RelayKind::Reliable, 0.02);
    cfg.crash_relay = Some((0.25, 0.55));
    let cfg = monitored(cfg);
    let a = run_relay_chaos(&cfg);
    let h = a.health.as_ref().expect("monitored");
    assert!(
        h.delivery_breaches >= 1,
        "outage windows breach: {}",
        h.report
    );
    assert_eq!(h.delivery_recovered, Some(true), "{}", h.report);
    assert!(
        h.flight.contains("node=r3") && h.flight.contains("cause=crash"),
        "crash dump missing:\n{}",
        h.flight
    );
    assert!(a.delivery_ratio >= 0.99, "NACK repair covers the outage");
    let b = run_relay_chaos(&cfg);
    let hb = b.health.expect("monitored");
    assert_eq!(h.report, hb.report);
    assert_eq!(h.flight, hb.flight);
}
