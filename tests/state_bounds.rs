//! Soundness of the static state-growth bounds (PR: state analysis).
//!
//! The state analysis claims two runtime facts per channel: no dispatch
//! performs more fresh `tblSet` inserts than the static per-dispatch
//! insert bound, and a program with a finite composed entry bound never
//! holds more live table entries than that bound. Three independent
//! checks:
//!
//! * **Scenario telemetry** — across the traced HTTP and MPEG paper
//!   scenarios (clean *and* under the seeded chaos fault plans: 10%
//!   loss + 10% duplication on the MPEG viewer segment, a server crash
//!   in the HTTP cluster), every `state_bound_exceeded` counter must
//!   stay absent and aggregate `state_inserts` must fit inside
//!   `dispatch × static_state_bound`.
//! * **Seeded property test** — random packets through the bounded
//!   HTTP gateway, run under both the interpreter and the JIT, must
//!   stay within the per-dispatch insert bound and the 256-entry table
//!   bound, and both engines must produce the identical table-write
//!   trail.
//! * **Verdict pins** — the bundled `state_leak` negative control is
//!   rejected with `E009` under a bounded-state policy, and the
//!   evicting gateway variant verifies with a finite bound.

use netsim::LinkFaults;
use planp::analysis::{summarize, verify, Policy};
use planp::lang::compile_front;
use planp::vm::env::MockEnv;
use planp::vm::interp::Interp;
use planp::vm::jit;
use planp::vm::pkthdr::{addr, tcp_flags, IpHdr, TcpHdr};
use planp::vm::value::Value;
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig};
use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_telemetry::{MetricsSnapshot, TraceConfig};

/// Asserts the layer's static state cross-check held for a whole run.
fn assert_state_bounds_hold(m: &MetricsSnapshot, scenario: &str) {
    for (k, v) in &m.counters {
        assert!(
            !k.ends_with(".state_bound_exceeded") || *v == 0,
            "{scenario}: {k} = {v} (static state bound violated at runtime)"
        );
    }
    let mut checked = 0;
    for (k, inserts) in &m.counters {
        let Some(prefix) = k.strip_suffix(".state_inserts") else {
            continue;
        };
        let dispatch = m
            .counters
            .get(&format!("{prefix}.dispatch"))
            .copied()
            .unwrap_or(0);
        let bound = m
            .counters
            .get(&format!("{prefix}.static_state_bound"))
            .copied()
            .unwrap_or_else(|| panic!("{scenario}: no static state bound recorded for {prefix}"));
        assert!(
            *inserts <= dispatch.saturating_mul(bound),
            "{scenario}: {prefix} performed {inserts} fresh inserts over {dispatch} \
             dispatches, bound {bound}/packet"
        );
        checked += 1;
    }
    assert!(
        checked > 0,
        "{scenario}: no per-channel state_inserts recorded"
    );
    // Where the program's composed entry bound is finite, the live-entry
    // peak the layer published must sit inside it.
    for (k, bound) in &m.counters {
        let Some(prefix) = k.strip_suffix(".planp.static_state_entries") else {
            continue;
        };
        let peak = m
            .counters
            .get(&format!("{prefix}.planp.state_entries"))
            .copied()
            .unwrap_or(0);
        assert!(
            peak <= *bound,
            "{scenario}: {prefix} peaked at {peak} live entries, static bound {bound}"
        );
    }
}

#[test]
fn http_scenario_state_stays_within_static_bounds() {
    let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
    cfg.duration_s = 10;
    let (_, _, m) = run_http_traced(&cfg, TraceConfig::default());
    assert_state_bounds_hold(&m, "http");
}

#[test]
fn http_scenario_state_holds_under_server_crash() {
    let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
    cfg.duration_s = 10;
    cfg.crash_server1_at_s = Some(6.0);
    let (_, _, m) = run_http_traced(&cfg, TraceConfig::default());
    assert!(
        m.counters.get("sim.fault_crashes").copied().unwrap_or(0) > 0,
        "http-crash: the fault plan never fired"
    );
    assert_state_bounds_hold(&m, "http-crash");
}

#[test]
fn mpeg_scenario_state_stays_within_static_bounds() {
    let cfg = MpegConfig::new(2, true);
    let (_, _, m) = run_mpeg_traced(&cfg, TraceConfig::default());
    assert_state_bounds_hold(&m, "mpeg");
}

#[test]
fn mpeg_scenario_state_holds_under_chaos_loss_and_duplication() {
    let mut cfg = MpegConfig::new(2, true);
    cfg.segment_faults = Some((
        2.0,
        LinkFaults {
            loss: 0.1,
            duplicate: 0.1,
            ..LinkFaults::default()
        },
    ));
    let (_, _, m) = run_mpeg_traced(&cfg, TraceConfig::default());
    let lost = m.counters.get("sim.fault_loss_drops").copied().unwrap_or(0);
    let duped = m.counters.get("sim.fault_duplicated").copied().unwrap_or(0);
    assert!(
        lost > 0 && duped > 0,
        "mpeg-chaos: impairments never fired (lost {lost}, duplicated {duped})"
    );
    assert_state_bounds_hold(&m, "mpeg-chaos");
}

/// SplitMix64 — a tiny deterministic generator for the property test.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One engine's threaded execution state during the property test.
struct Run {
    env: MockEnv,
    ps: Value,
    ss: Value,
}

/// Property: for random packets through the bounded gateway's `network`
/// channel — mixing fresh connections, repeat traffic, FIN/RST
/// evictions, result rewrites, and pass-through — the observed fresh
/// inserts per dispatch never exceed the static per-dispatch bound, the
/// live entry count never exceeds the 256-entry table bound, and both
/// engines record the identical table-write trail.
#[test]
fn bounded_gateway_random_packets_within_state_bound() {
    let src = std::fs::read_to_string("asps/http_gateway_bounded.planp").expect("asp source");
    let prog = std::rc::Rc::new(compile_front(&src).expect("front end"));
    let idx = prog.chan_groups["network"][0];
    let state = summarize(&prog).state;
    let insert_bound = state.inserts_for(idx);
    let entry_bound = state
        .entry_bound()
        .expect("bounded gateway has a finite bound");
    assert_eq!(entry_bound, 256);

    let (compiled, _) = jit::compile(prog.clone());
    let interp = Interp::new(&prog);

    let mut irun = {
        let mut env = MockEnv::new(addr(10, 0, 0, 254));
        let g = interp.eval_globals(&mut env).unwrap();
        let ps = interp.init_proto(&g, &mut env).unwrap();
        let ss = interp.init_channel_state(idx, &g, &mut env).unwrap();
        env.table_writes.clear();
        (g, Run { env, ps, ss })
    };
    let mut jrun = {
        let mut env = MockEnv::new(addr(10, 0, 0, 254));
        let g = compiled.eval_globals(&mut env).unwrap();
        let ps = compiled.init_proto(&g, &mut env).unwrap();
        let ss = compiled.init_channel_state(idx, &g, &mut env).unwrap();
        env.table_writes.clear();
        (g, Run { env, ps, ss })
    };

    let (srv0, srv1, virt) = (addr(10, 0, 2, 1), addr(10, 0, 3, 1), addr(10, 9, 9, 9));
    let mut rng = SplitMix64(0x57A7_EB0C);
    let mut live: i64 = 0;
    for i in 0..300 {
        let r = rng.next();
        // A small pool of client endpoints so repeat traffic hits the
        // connection table and FIN/RST segments actually evict.
        let client = addr(10, 0, 0, (r >> 4) as u8 % 12 + 1);
        let cport = 1024 + (r >> 8) as u16 % 4;
        let pkt = match r % 8 {
            // New-or-known connection traffic toward the virtual server.
            0..=3 => {
                let mut tcph = TcpHdr::data(cport, 80, (r >> 16) as u32);
                if r % 8 == 3 {
                    tcph.flags |= if r & 1 == 0 {
                        tcp_flags::FIN
                    } else {
                        tcp_flags::RST
                    };
                }
                Value::tuple(vec![
                    Value::Ip(IpHdr::new(client, virt, IpHdr::PROTO_TCP)),
                    Value::Tcp(tcph),
                    Value::Blob(bytes::Bytes::from_static(b"req")),
                ])
            }
            // Result traffic from either physical server.
            4 | 5 => Value::tuple(vec![
                Value::Ip(IpHdr::new(
                    if r.is_multiple_of(2) { srv0 } else { srv1 },
                    client,
                    IpHdr::PROTO_TCP,
                )),
                Value::Tcp(TcpHdr::data(80, cport, (r >> 16) as u32)),
                Value::Blob(bytes::Bytes::from_static(b"resp")),
            ]),
            // Unrelated pass-through traffic.
            _ => Value::tuple(vec![
                Value::Ip(IpHdr::new(client, addr(10, 0, 1, 7), IpHdr::PROTO_TCP)),
                Value::Tcp(TcpHdr::data((r >> 16) as u16, (r >> 24) as u16, 0)),
                Value::Blob(bytes::Bytes::from_static(b"other")),
            ]),
        };

        let before = irun.1.env.table_writes.len();
        let (ps, ss) = interp
            .run_channel(
                idx,
                &irun.0,
                irun.1.ps.clone(),
                irun.1.ss.clone(),
                pkt.clone(),
                &mut irun.1.env,
            )
            .expect("interp run");
        irun.1.ps = ps;
        irun.1.ss = ss;
        let (ps, ss) = compiled
            .run_channel(
                idx,
                &jrun.0,
                jrun.1.ps.clone(),
                jrun.1.ss.clone(),
                pkt,
                &mut jrun.1.env,
            )
            .expect("jit run");
        jrun.1.ps = ps;
        jrun.1.ss = ss;

        let writes = &irun.1.env.table_writes[before..];
        let fresh: u64 = writes.iter().map(|(ins, _)| (*ins).max(0) as u64).sum();
        assert!(
            fresh <= insert_bound,
            "packet {i}: {fresh} fresh inserts > static bound {insert_bound}"
        );
        for (ins, entries) in writes {
            live += ins;
            assert_eq!(
                live as u64, *entries,
                "packet {i}: live-entry bookkeeping drifted"
            );
            assert!(
                *entries <= entry_bound,
                "packet {i}: table grew to {entries} entries > bound {entry_bound}"
            );
        }
    }
    assert_eq!(
        irun.1.env.table_writes, jrun.1.env.table_writes,
        "engines disagree on the table-write trail"
    );
    assert!(
        irun.1.env.insert_count() > 0 && live < irun.1.env.insert_count() as i64,
        "trace never exercised both insertion and eviction \
         (inserted {}, live {live})",
        irun.1.env.insert_count()
    );
}

#[test]
fn state_leak_rejected_and_bounded_gateway_accepted() {
    let leak = std::fs::read_to_string("asps/buggy/state_leak.planp").expect("asp source");
    let prog = compile_front(&leak).expect("front end");
    let r = verify(&prog, Policy::strict().with_bounded_state());
    assert!(!r.accepted(), "state_leak must fail a bounded-state policy");
    assert!(
        r.diagnostics.iter().any(|d| d.code == "E009"),
        "expected E009, got {:?}",
        r.diagnostics.iter().map(|d| &d.code).collect::<Vec<_>>()
    );

    let ok = std::fs::read_to_string("asps/http_gateway_bounded.planp").expect("asp source");
    let prog = compile_front(&ok).expect("front end");
    let r = verify(&prog, Policy::strict().with_bounded_state());
    assert!(
        r.accepted(),
        "bounded gateway must verify: {:?}",
        r.diagnostics
    );
    assert_eq!(r.state_bound, Some(256));
}
